#!/usr/bin/env python3
"""Injects the recorded experiment outputs into EXPERIMENTS.md placeholders."""
import re, pathlib

root = pathlib.Path("/root/repo")
md = (root / "EXPERIMENTS.md").read_text()

def final_table(name):
    p = root / f"{name}_output.txt"
    if not p.exists():
        return f"*(run `cargo run --release -p nb-bench --bin {name}` to regenerate; not recorded)*"
    text = p.read_text()
    # take everything after the last line *starting with* 'Final'
    m = None
    for match in re.finditer(r"^Final .*$", text, re.M):
        m = match
    idx = m.start() if m else -1
    if idx == -1:
        # partial run: take last rendered table block
        lines = [l for l in text.splitlines() if l.startswith("|")]
        if not lines:
            return "*(run incomplete)*"
        return "```\n" + "\n".join(lines) + "\n```"
    block = text[idx:].strip()
    return "```\n" + block + "\n```"

for tag, name in [("FIG1A","fig1a"),("FIG1B","fig1b"),("TABLE1","table1"),
                  ("TABLE2","table2"),("TABLE3","table3"),("TABLE4","table4"),
                  ("TABLE5","table5"),("TABLE6","table6"),
                  ("ABLATION_PLT","ablation_plt")]:
    md = md.replace(f"<!-- {tag} -->", final_table(name))

(root / "EXPERIMENTS.md").write_text(md)
print("EXPERIMENTS.md filled")
