#!/bin/bash
# Runs every experiment binary sequentially at the scale given by NB_SCALE
# (default bench), recording stdout to <name>_output.txt at the repo root.
set -u
cd "$(dirname "$0")/.."
cargo build --release -p nb-bench
for exp in fig1a fig1b table1 table2 table3 table4 table5 table6 ablation_plt; do
  echo "=== $exp ==="
  ./target/release/$exp | tee ${exp}_output.txt
done
