#!/usr/bin/env bash
# Warms the shape-keyed autotune cache, then re-times the kernels with the
# tuned schedules.
#
# Pass 1 runs bench_kernels with NB_AUTOTUNE=on: every GEMM shape the
# kernels hit micro-benchmarks its candidate schedules once and persists
# the winners to the JSON cache ($NB_AUTOTUNE_CACHE, falling back to
# ~/.cache/nb-autotune.json). Pass 2 re-runs with the cache in read-only
# mode, so the recorded numbers reflect tuned steady-state rather than
# tuning overhead. The report lands next to the default one so the two can
# be diffed against BENCH_kernels.json.
#
# Every blocked schedule of a shape produces bitwise-identical results (the
# k-panel depth is never tuned), so tuning only ever changes speed — CI
# still runs with NB_AUTOTUNE=off (see scripts/ci.sh).
#
# Usage: scripts/autotune.sh [output.json]   (default BENCH_kernels_tuned.json)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_kernels_tuned.json}"
cache="${NB_AUTOTUNE_CACHE:-$HOME/.cache/nb-autotune.json}"

echo "== pass 1: tuning (NB_AUTOTUNE=on, cache: $cache) =="
NB_AUTOTUNE=on NB_AUTOTUNE_CACHE="$cache" \
    cargo run --release -q -p nb-bench --bin bench_kernels -- --no-gate "$out" >/dev/null

echo "== pass 2: timing with the warmed cache =="
NB_AUTOTUNE_CACHE="$cache" \
    cargo run --release -q -p nb-bench --bin bench_kernels -- --no-gate "$out"

echo "tuned report: $out (cache: $cache)"
