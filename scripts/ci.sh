#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== verify_all (fast mode, NB_AUTOTUNE=off) =="
# differential kernel oracles, contraction exactness audits, three-executor
# parity (taped vs grad-free vs compiled plan: bitwise with folding off,
# ULP-bounded with folding on), seed sweep; exits non-zero and prints
# per-case / per-layer tables on any divergence. NB_AUTOTUNE=off pins the
# deterministic default schedules so CI never depends on a host's tuning
# cache (the +implicit suite separately proves every schedule agrees
# bitwise; scripts/autotune.sh is the opt-in tuning entry point).
NB_AUTOTUNE=off cargo run --release -q -p nb-verify --bin verify_all -- --fast

echo "== bench_infer (smoke) =="
# sanity-checks the eval executors: the grad-free path must retain less
# activation memory than the tape, and the compiled plan must be no slower
# than InferCtx with no higher peak bytes (exits non-zero otherwise)
mkdir -p target
cargo run --release -q -p nb-bench --bin bench_infer -- --smoke target/BENCH_infer_smoke.json >/dev/null

echo "CI OK"
