#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== verify_all (fast mode, NB_AUTOTUNE=off) =="
# differential kernel oracles, contraction exactness audits, three-executor
# parity (taped vs grad-free vs compiled plan: bitwise with folding off,
# ULP-bounded with folding on), concurrent Arc-shared plan replay parity,
# data-parallel trainer parity (fit_parallel vs fit, bitwise, worker-count
# invariant), seed sweep; exits non-zero and prints per-case tables on any
# divergence. NB_AUTOTUNE=off pins the deterministic default schedules so
# CI never depends on a host's tuning cache (the +implicit suite separately
# proves every schedule agrees bitwise; scripts/autotune.sh is the opt-in
# tuning entry point).
NB_AUTOTUNE=off cargo run --release -q -p nb-verify --bin verify_all -- --fast

echo "== verify_all (quant smoke, NB_AUTOTUNE=off) =="
# the int8 column alone: compiles the quantized inverted-residual tinynet
# plan (compile_quantized, Auto mixed-precision policy — the suite pins
# that the depthwise stages actually quantize) and holds it to the top-1
# accuracy-drop budget plus zero-graph-node replay, thread-width bitwise
# invariance, and fused-vs-unfused bitwise parity of the quantized chain
# executor — a fast standalone stage so a quant regression is named
# directly instead of surfacing as a generic verify_all failure
NB_AUTOTUNE=off cargo run --release -q -p nb-verify --bin verify_all -- --quant-smoke

echo "== bench_infer (smoke) =="
# sanity-checks the eval executors: the grad-free path must retain less
# activation memory than the tape, and the compiled plan must be no slower
# than InferCtx with no higher peak bytes (exits non-zero otherwise)
mkdir -p target
cargo run --release -q -p nb-bench --bin bench_infer -- --smoke target/BENCH_infer_smoke.json >/dev/null

echo "== bench_train (smoke, NB_AUTOTUNE=off) =="
# exercises the data-parallel trainer end to end (streaming loader, shard
# dispatch, deterministic tree-reduce, BN replay) at 1 and 2 shards; smoke
# mode checks completion and finite throughput only — the dp(max)-vs-dp(1)
# throughput gate runs in the full-mode binary that produces the checked-in
# BENCH_train.json
NB_AUTOTUNE=off cargo run --release -q -p nb-bench --bin bench_train -- --smoke target/BENCH_train_smoke.json >/dev/null

echo "== bench_serve (smoke, NB_AUTOTUNE=off) =="
# drives the multi-tenant server with a fixed-seed open-loop trace and
# gates on the drain contract (accepted == completed) and on tail latency
# (per-model p99 <= max(50 x p50, 10 ms)); NB_AUTOTUNE=off for the same
# schedule determinism as verify_all, the traffic seed is baked into the
# binary
NB_AUTOTUNE=off cargo run --release -q -p nb-serve --bin bench_serve -- --smoke target/BENCH_serve_smoke.json >/dev/null

echo "CI OK"
