#!/usr/bin/env bash
# One entry point for every benchmark binary, in full (non-smoke) mode:
# refreshes all four checked-in BENCH_*.json files at the repo root and
# exits non-zero if any binary's perf gate fails (each gates its own
# claims — kernel ns/op regressions, plan-vs-InferCtx time and peak bytes,
# the 2x int8 gate on GEMM-bound rows, serve tail latency and drain,
# dp(max)-vs-dp(1) training throughput).
#
# Run it before and after a perf-relevant change and diff the JSON files.
# Pin the pool width with NB_NUM_THREADS for stable numbers; full runs
# take several minutes.
#
# Usage: scripts/bench_all.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench_kernels =="
cargo run --release -q -p nb-bench --bin bench_kernels -- BENCH_kernels.json

echo "== bench_infer =="
cargo run --release -q -p nb-bench --bin bench_infer -- BENCH_infer.json >/dev/null

echo "== bench_train =="
cargo run --release -q -p nb-bench --bin bench_train -- BENCH_train.json >/dev/null

echo "== bench_serve =="
cargo run --release -q -p nb-serve --bin bench_serve -- BENCH_serve.json >/dev/null

echo "bench_all OK — refreshed BENCH_kernels.json BENCH_infer.json BENCH_train.json BENCH_serve.json"
