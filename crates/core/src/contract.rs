//! Expanded-block contraction (paper Sec. III-D, Eq. 3–4).
//!
//! Once PLT has decayed every activation inside an inserted block to the
//! identity, the block is an affine map and collapses back into a single
//! convolution:
//!
//! 1. each unit's batch norm (in eval form) folds into its convolution;
//! 2. a depthwise 1x1 middle layer becomes a diagonal dense 1x1;
//! 3. consecutive convolutions merge by kernel composition (Eq. 3–4):
//!    kernel sizes add as `k = k1 + k2 - 1`, biases propagate through the
//!    second kernel's mass;
//! 4. a skip connection adds a Dirac (identity) kernel.
//!
//! For the paper's inverted-residual inserted blocks every kernel is 1x1,
//! so contraction is *exact everywhere*. For the basic/bottleneck ablation
//! blocks (3x3 kernels), bias propagation through zero padding makes the
//! merged layer exact in the interior and approximate within `k-1` pixels
//! of the border — one of the reasons the paper rejects those blocks.

use nb_models::{InsertedBlock, InsertedConv, PwSlot, TinyNet};
use nb_nn::layers::Conv2d;
use nb_tensor::{ConvGeometry, Tensor};

// Batch-norm folding moved to `nb_nn::fold` so the eval-time compile pass
// (`nb_nn::plan`) can use it without a dependency cycle; re-exported here to
// keep the contraction API surface intact.
pub use nb_nn::fold_bn;

/// Converts a depthwise `[c, kh, kw]` weight into the equivalent dense
/// block-diagonal `[c, c, kh, kw]` weight.
pub fn depthwise_to_dense(weight: &Tensor) -> Tensor {
    let d = weight.dims().to_vec();
    assert_eq!(d.len(), 3, "depthwise weight is [c,kh,kw]");
    let (c, kh, kw) = (d[0], d[1], d[2]);
    let ws = weight.as_slice();
    let mut out = Tensor::zeros([c, c, kh, kw]);
    {
        let os = out.as_mut_slice();
        for ci in 0..c {
            let src = &ws[ci * kh * kw..(ci + 1) * kh * kw];
            let dst = ((ci * c) + ci) * kh * kw;
            os[dst..dst + kh * kw].copy_from_slice(src);
        }
    }
    out
}

/// Composes two stride-1 convolutions into one (paper Eq. 3–4).
///
/// `k1` is `[c2, c1, kh1, kw1]` (applied first), `k2` is
/// `[c3, c2, kh2, kw2]`. The result is `[c3, c1, kh1+kh2-1, kw1+kw2-1]`
/// with bias `b[o] = b2[o] + sum_c2 b1[c2] * sum_{s,t} k2[o,c2,s,t]`.
///
/// # Panics
///
/// Panics on channel mismatches.
pub fn compose_convs(k1: &Tensor, b1: &Tensor, k2: &Tensor, b2: &Tensor) -> (Tensor, Tensor) {
    let d1 = k1.dims().to_vec();
    let d2 = k2.dims().to_vec();
    assert_eq!(d1.len(), 4, "k1 rank");
    assert_eq!(d2.len(), 4, "k2 rank");
    let (c2, c1, kh1, kw1) = (d1[0], d1[1], d1[2], d1[3]);
    let (c3, c2b, kh2, kw2) = (d2[0], d2[1], d2[2], d2[3]);
    assert_eq!(c2, c2b, "intermediate channels");
    assert_eq!(b1.dims(), &[c2], "b1 length");
    assert_eq!(b2.dims(), &[c3], "b2 length");
    let (kh, kw) = (kh1 + kh2 - 1, kw1 + kw2 - 1);
    let k1s = k1.as_slice();
    let k2s = k2.as_slice();
    let mut out = Tensor::zeros([c3, c1, kh, kw]);
    {
        let os = out.as_mut_slice();
        for o in 0..c3 {
            for m in 0..c1 {
                for i in 0..kh {
                    for j in 0..kw {
                        let mut acc = 0.0f32;
                        let s_lo = i.saturating_sub(kh1 - 1);
                        let s_hi = (kh2 - 1).min(i);
                        let t_lo = j.saturating_sub(kw1 - 1);
                        let t_hi = (kw2 - 1).min(j);
                        for s in s_lo..=s_hi {
                            for t in t_lo..=t_hi {
                                for n in 0..c2 {
                                    acc += k1s[((n * c1 + m) * kh1 + (i - s)) * kw1 + (j - t)]
                                        * k2s[((o * c2 + n) * kh2 + s) * kw2 + t];
                                }
                            }
                        }
                        os[((o * c1 + m) * kh + i) * kw + j] = acc;
                    }
                }
            }
        }
    }
    let bias = Tensor::from_fn([c3], |o| {
        let mut acc = b2.as_slice()[o];
        for n in 0..c2 {
            let mut mass = 0.0;
            for s in 0..kh2 {
                for t in 0..kw2 {
                    mass += k2s[((o * c2 + n) * kh2 + s) * kw2 + t];
                }
            }
            acc += b1.as_slice()[n] * mass;
        }
        acc
    });
    (out, bias)
}

/// Adds the identity (Dirac) kernel to a merged weight — the residual merge.
///
/// # Panics
///
/// Panics unless the weight is square-channel (`out == in`) with odd kernel.
pub fn add_identity(weight: &mut Tensor) {
    let d = weight.dims().to_vec();
    assert_eq!(d.len(), 4, "identity merge expects dense weight");
    assert_eq!(d[0], d[1], "residual requires matching channels");
    assert!(
        d[2] % 2 == 1 && d[3] % 2 == 1,
        "odd kernel for centered Dirac"
    );
    let (c, kh, kw) = (d[0], d[2], d[3]);
    let (ch, cw) = (kh / 2, kw / 2);
    for o in 0..c {
        weight.as_mut_slice()[((o * c + o) * kh + ch) * kw + cw] += 1.0;
    }
}

/// The affine form `(weight, bias)` of one inserted unit: conv with its BN
/// folded in, dense-ified if depthwise.
fn unit_affine(unit: &nb_models::InsertedUnit) -> (Tensor, Tensor, usize) {
    match &unit.conv {
        InsertedConv::Dense(c) => {
            let bias = c.bias().map(|b| b.value());
            let (w, b) = fold_bn(&c.weight().value(), bias.as_ref(), &unit.bn);
            (w, b, c.geom().kh)
        }
        InsertedConv::Depthwise(c) => {
            let dense = depthwise_to_dense(&c.weight().value());
            let bias = c.bias().map(|b| b.value());
            let (w, b) = fold_bn(&dense, bias.as_ref(), &unit.bn);
            (w, b, c.geom().kh)
        }
    }
}

/// Contracts a linearized inserted block into a single convolution (with
/// bias, absorbing the folded batch norms).
///
/// # Panics
///
/// Panics if the block still has non-linear activations.
pub fn contract_inserted_block(block: &InsertedBlock) -> Conv2d {
    assert!(
        block.is_linearized(),
        "contract requires fully decayed activations (run PLT to completion)"
    );
    let mut units = block.units.iter();
    let first = units.next().expect("inserted block has units");
    let (mut w, mut b, _) = unit_affine(first);
    for unit in units {
        let (w2, b2, _) = unit_affine(unit);
        let (wn, bn) = compose_convs(&w, &b, &w2, &b2);
        w = wn;
        b = bn;
    }
    if block.residual {
        add_identity(&mut w);
    }
    let k = w.dims()[2];
    let geom = ConvGeometry::square(k, 1, (k - 1) / 2);
    Conv2d::from_weights(w, Some(b), geom)
}

/// Contracts every linearized expanded slot in the model back to a single
/// convolution (the final step of NetBooster). Returns how many blocks were
/// contracted.
///
/// # Panics
///
/// Panics if an expanded block has not been fully linearized.
pub fn contract_model(model: &mut TinyNet) -> usize {
    let mut contracted = 0;
    for block in &mut model.blocks {
        if let Some(slot) = &mut block.expand {
            if let PwSlot::Expanded(ib) = slot {
                let conv = contract_inserted_block(ib);
                *slot = PwSlot::Plain(conv);
                contracted += 1;
            }
        }
    }
    contracted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{build_inserted_block, BlockKind};
    use nb_models::InsertedUnit;
    use nb_nn::layers::{BatchNorm2d, DepthwiseConv2d};
    use nb_nn::{Module, Session};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randomize_bn(bn: &BatchNorm2d, rng: &mut StdRng) {
        let c = bn.channels();
        bn.gamma()
            .set_value(Tensor::rand_uniform([c], 0.5, 1.5, rng));
        bn.beta().set_value(Tensor::randn([c], rng).scale(0.3));
        bn.set_running_stats(
            Tensor::randn([c], rng).scale(0.2),
            Tensor::rand_uniform([c], 0.5, 2.0, rng),
        );
    }

    fn eval_forward(m: &impl Module, x: &Tensor) -> Tensor {
        let mut s = Session::new(false);
        let xin = s.input(x.clone());
        let y = m.forward(&mut s, xin);
        s.value(y).clone()
    }

    #[test]
    fn fold_bn_matches_conv_then_bn() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 5, ConvGeometry::same(3, 1), false, &mut rng);
        let bn = BatchNorm2d::new(5);
        randomize_bn(&bn, &mut rng);
        let x = Tensor::randn([2, 3, 6, 6], &mut rng);
        // reference: conv -> bn (eval)
        let mut s = Session::new(false);
        let xin = s.input(x.clone());
        let y = conv.forward(&mut s, xin);
        let y = bn.forward(&mut s, y);
        let want = s.value(y).clone();
        // folded single conv
        let (w, b) = fold_bn(&conv.weight().value(), None, &bn);
        let folded = Conv2d::from_weights(w, Some(b), conv.geom());
        let got = eval_forward(&folded, &x);
        assert!(
            got.allclose(&want, 1e-4),
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn depthwise_to_dense_equivalent() {
        let mut rng = StdRng::seed_from_u64(1);
        let dw = DepthwiseConv2d::new(4, ConvGeometry::pointwise(), false, &mut rng);
        let dense = depthwise_to_dense(&dw.weight().value());
        let x = Tensor::randn([1, 4, 5, 5], &mut rng);
        let a = nb_tensor::depthwise_conv2d(&x, &dw.weight().value(), None, dw.geom());
        let b = nb_tensor::conv2d(&x, &dense, None, dw.geom());
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn compose_1x1_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let k1 = Tensor::randn([6, 3, 1, 1], &mut rng);
        let b1 = Tensor::randn([6], &mut rng);
        let k2 = Tensor::randn([4, 6, 1, 1], &mut rng);
        let b2 = Tensor::randn([4], &mut rng);
        let (k, b) = compose_convs(&k1, &b1, &k2, &b2);
        assert_eq!(k.dims(), &[4, 3, 1, 1]);
        let x = Tensor::randn([2, 3, 5, 5], &mut rng);
        let geom = ConvGeometry::pointwise();
        let want = nb_tensor::conv2d(
            &nb_tensor::conv2d(&x, &k1, Some(&b1), geom),
            &k2,
            Some(&b2),
            geom,
        );
        let got = nb_tensor::conv2d(&x, &k, Some(&b), geom);
        assert!(
            got.allclose(&want, 1e-3),
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn compose_3x3_exact_in_interior() {
        let mut rng = StdRng::seed_from_u64(3);
        let k1 = Tensor::randn([4, 2, 3, 3], &mut rng).scale(0.5);
        let b1 = Tensor::randn([4], &mut rng);
        let k2 = Tensor::randn([3, 4, 3, 3], &mut rng).scale(0.5);
        let b2 = Tensor::randn([3], &mut rng);
        let (k, b) = compose_convs(&k1, &b1, &k2, &b2);
        assert_eq!(k.dims(), &[3, 2, 5, 5]);
        let x = Tensor::randn([1, 2, 12, 12], &mut rng);
        let want = nb_tensor::conv2d(
            &nb_tensor::conv2d(&x, &k1, Some(&b1), ConvGeometry::same(3, 1)),
            &k2,
            Some(&b2),
            ConvGeometry::same(3, 1),
        );
        let got = nb_tensor::conv2d(&x, &k, Some(&b), ConvGeometry::square(5, 1, 2));
        // compare interior (2 pixels in from each border)
        let mut max_diff = 0.0f32;
        for c in 0..3 {
            for y in 2..10 {
                for xx in 2..10 {
                    max_diff = max_diff.max((got.at4(0, c, y, xx) - want.at4(0, c, y, xx)).abs());
                }
            }
        }
        assert!(max_diff < 1e-3, "interior diff {max_diff}");
    }

    #[test]
    fn compose_no_bias_3x3_exact_unpadded() {
        // with *valid* (unpadded) convolutions the composition is exact
        // everywhere: no zero-padding semantics to disagree about
        let mut rng = StdRng::seed_from_u64(4);
        let k1 = Tensor::randn([4, 2, 3, 3], &mut rng).scale(0.5);
        let k2 = Tensor::randn([3, 4, 3, 3], &mut rng).scale(0.5);
        let z1 = Tensor::zeros([4]);
        let z2 = Tensor::zeros([3]);
        let (k, b) = compose_convs(&k1, &z1, &k2, &z2);
        assert!(b.abs_sum() < 1e-6);
        let x = Tensor::randn([1, 2, 10, 10], &mut rng);
        let want = nb_tensor::conv2d(
            &nb_tensor::conv2d(&x, &k1, None, ConvGeometry::square(3, 1, 0)),
            &k2,
            None,
            ConvGeometry::square(3, 1, 0),
        );
        let got = nb_tensor::conv2d(&x, &k, None, ConvGeometry::square(5, 1, 0));
        assert!(
            got.allclose(&want, 1e-3),
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn add_identity_is_residual() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut k = Tensor::randn([3, 3, 1, 1], &mut rng);
        let orig = k.clone();
        add_identity(&mut k);
        let x = Tensor::randn([1, 3, 4, 4], &mut rng);
        let geom = ConvGeometry::pointwise();
        let want = nb_tensor::conv2d(&x, &orig, None, geom).add(&x);
        let got = nb_tensor::conv2d(&x, &k, None, geom);
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn contract_inverted_residual_block_exact() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = build_inserted_block(BlockKind::InvertedResidual, 6, 10, 4, &mut rng);
        for u in &block.units {
            randomize_bn(&u.bn, &mut rng);
        }
        for s in block.slopes() {
            s.set(1.0);
        }
        let x = Tensor::randn([2, 6, 5, 5], &mut rng);
        let want = eval_forward(&block, &x);
        let conv = contract_inserted_block(&block);
        assert_eq!(conv.geom(), ConvGeometry::pointwise());
        let got = eval_forward(&conv, &x);
        assert!(
            got.allclose(&want, 1e-3),
            "contracted vs linearized giant: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn contract_residual_inverted_block_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let block = build_inserted_block(BlockKind::InvertedResidual, 8, 8, 6, &mut rng);
        assert!(block.residual);
        for u in &block.units {
            randomize_bn(&u.bn, &mut rng);
        }
        for s in block.slopes() {
            s.set(1.0);
        }
        let x = Tensor::randn([1, 8, 4, 4], &mut rng);
        let want = eval_forward(&block, &x);
        let conv = contract_inserted_block(&block);
        let got = eval_forward(&conv, &x);
        assert!(
            got.allclose(&want, 1e-3),
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    #[should_panic(expected = "fully decayed")]
    fn contract_refuses_nonlinear_block() {
        let mut rng = StdRng::seed_from_u64(8);
        let block = build_inserted_block(BlockKind::InvertedResidual, 4, 8, 6, &mut rng);
        // slopes left at 0
        let _ = contract_inserted_block(&block);
    }

    #[test]
    fn contract_bottleneck_produces_3x3() {
        let mut rng = StdRng::seed_from_u64(9);
        let block = build_inserted_block(BlockKind::Bottleneck, 6, 8, 6, &mut rng);
        for s in block.slopes() {
            s.set(1.0);
        }
        let conv = contract_inserted_block(&block);
        assert_eq!(conv.geom(), ConvGeometry::square(3, 1, 1));
    }

    #[test]
    fn contract_basic_produces_5x5() {
        let mut rng = StdRng::seed_from_u64(10);
        let block = build_inserted_block(BlockKind::Basic, 6, 8, 6, &mut rng);
        for s in block.slopes() {
            s.set(1.0);
        }
        let conv = contract_inserted_block(&block);
        assert_eq!(conv.geom(), ConvGeometry::square(5, 1, 2));
    }

    #[test]
    fn contract_model_end_to_end_preserves_eval_logits() {
        use crate::expansion::{expand, ExpansionPlan};
        use nb_models::{mobilenet_v2_tiny, TinyNet};
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = TinyNet::new(mobilenet_v2_tiny(6), &mut rng);
        let handle = expand(&mut net, &ExpansionPlan::paper_default(), &mut rng);
        // give the BNs non-trivial running stats by running a train step
        let mut s = Session::new(true);
        let xb = Tensor::randn([4, 3, 16, 16], &mut rng);
        let xv = s.input(xb.clone());
        let y = net.forward(&mut s, xv);
        let loss = s.graph.softmax_cross_entropy(y, &[0, 1, 2, 3], 0.0);
        s.backward(loss);
        // linearize and contract
        for sl in &handle.slopes {
            sl.set(1.0);
        }
        let probe = Tensor::randn([2, 3, 16, 16], &mut rng);
        let before = net.logits_eval(&probe);
        let n = contract_model(&mut net);
        assert_eq!(n, handle.expanded_blocks.len());
        assert_eq!(net.expanded_count(), 0);
        let after = net.logits_eval(&probe);
        assert!(
            after.allclose(&before, 1e-2),
            "logits drift {}",
            after.max_abs_diff(&before)
        );
        // FLOPs returned to the (near-)original budget: pointwise slots are
        // 1x1 convs again
        for block in &net.blocks {
            if let Some(PwSlot::Plain(c)) = &block.expand {
                assert_eq!(c.geom().kh, 1);
            }
        }
    }

    #[test]
    fn contraction_cost_independent_of_ratio() {
        // paper remark: expansion ratio does not change post-contraction cost
        let mut rng = StdRng::seed_from_u64(12);
        let mut convs = Vec::new();
        for ratio in [2usize, 8] {
            let block = build_inserted_block(BlockKind::InvertedResidual, 6, 10, ratio, &mut rng);
            for s in block.slopes() {
                s.set(1.0);
            }
            convs.push(contract_inserted_block(&block));
        }
        assert_eq!(convs[0].flops(8, 8), convs[1].flops(8, 8));
        assert_eq!(
            convs[0].weight().value().shape(),
            convs[1].weight().value().shape()
        );
    }

    #[test]
    fn unit_affine_respects_existing_bias() {
        let mut rng = StdRng::seed_from_u64(13);
        let conv = Conv2d::new(3, 4, ConvGeometry::pointwise(), true, &mut rng);
        conv.bias().unwrap().set_value(Tensor::randn([4], &mut rng));
        let bn = BatchNorm2d::new(4);
        randomize_bn(&bn, &mut rng);
        let unit = InsertedUnit {
            conv: InsertedConv::Dense(conv),
            bn,
            act: None,
        };
        let block = InsertedBlock {
            units: vec![unit],
            residual: false,
        };
        let x = Tensor::randn([1, 3, 4, 4], &mut rng);
        let want = eval_forward(&block, &x);
        let got = eval_forward(&contract_inserted_block(&block), &x);
        assert!(got.allclose(&want, 1e-3));
    }
}
