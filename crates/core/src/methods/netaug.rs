//! The NetAug baseline (Cai et al., 2021): width-only augmentation.
//!
//! NetAug embeds the tiny network in a wider supernet; every step trains the
//! base sub-network's loss plus an auxiliary loss through the full width.
//! At the end the augmented channels are *dropped* (the base slice is
//! extracted) — exactly the "directly remove the supernet" behaviour the
//! NetBooster paper contrasts with its contraction.

use crate::trainer::{fit, History, NoHooks, TrainConfig};
use nb_data::SyntheticVision;
use nb_models::{TinyNet, TnnConfig};
use nb_nn::{CompiledPlan, Module, Session};
use rand::Rng;

/// NetAug hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetAugConfig {
    /// Supernet width multiplier over the base network.
    pub width_factor: f32,
    /// Weight of the auxiliary (full-width) loss.
    pub aux_weight: f32,
}

impl Default for NetAugConfig {
    fn default() -> Self {
        // aux weight 0.5 converges noticeably faster than 1.0 at the short
        // CPU budgets this reproduction runs (the base loss stays primary)
        NetAugConfig {
            width_factor: 1.5,
            aux_weight: 0.5,
        }
    }
}

/// Trains `base_cfg` with NetAug and returns the extracted base network
/// plus its history.
pub fn train_netaug(
    base_cfg: &TnnConfig,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    na: &NetAugConfig,
    rng: &mut impl Rng,
) -> (TinyNet, History) {
    let super_cfg = base_cfg
        .width_scaled(na.width_factor)
        .with_classes(base_cfg.classes);
    let supernet = TinyNet::new(super_cfg, rng);
    let mut loss_fn = |s: &mut Session, batch: &nb_data::Batch| {
        let x = s.input(batch.images.clone());
        let base_logits = supernet.forward_subnet(s, x, base_cfg);
        // the auxiliary full-width forward must not pollute the running
        // statistics the deployed sub-network evaluates with
        s.update_bn_stats = false;
        let full_logits = supernet.forward(s, x);
        s.update_bn_stats = true;
        let base_ce =
            s.graph
                .softmax_cross_entropy(base_logits, &batch.labels, cfg.label_smoothing);
        let aux_ce = s
            .graph
            .softmax_cross_entropy(full_logits, &batch.labels, cfg.label_smoothing);
        let aux = s.graph.scale(aux_ce, na.aux_weight);
        s.graph.add(base_ce, aux)
    };
    // Compiled fresh per eval batch: the plan snapshots weights and running
    // statistics, which keep moving between epochs during training. The
    // compile step re-slices the base-subnet weights, which the InferCtx
    // path also paid per call.
    let eval = |imgs: &nb_tensor::Tensor| {
        CompiledPlan::compile(imgs.dims(), |f, x| supernet.forward_subnet(f, x, base_cfg)).run(imgs)
    };
    let history = fit(
        supernet.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &eval,
        &mut NoHooks,
    );
    let base = supernet.extract_subnet(base_cfg, rng);
    (base, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::evaluate;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::{Augment, Split};
    use nb_models::mobilenet_v2_tiny;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn netaug_trains_and_extracted_model_matches_subnet_eval() {
        let mut rng = StdRng::seed_from_u64(0);
        let mk = |split| {
            SyntheticVision::new("n", Family::Objects, 2, 12, 16, Nuisance::easy(), 6, split)
        };
        let (train, val) = (mk(Split::Train), mk(Split::Val));
        let mut base = mobilenet_v2_tiny(2);
        base.blocks.truncate(2);
        base.head_c = 12;
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let (extracted, h) = train_netaug(
            &base,
            &train,
            &val,
            &cfg,
            &NetAugConfig::default(),
            &mut rng,
        );
        assert_eq!(h.val_acc.len(), 2);
        // extracted standalone accuracy equals the subnet-eval accuracy of
        // the final supernet state
        let acc = evaluate(&|imgs| extracted.logits_eval(imgs), &val, 8);
        assert!(
            (acc - h.final_val_acc()).abs() < 1e-3,
            "{acc} vs {}",
            h.final_val_acc()
        );
        assert_eq!(extracted.config.blocks, base.blocks);
    }
}
