//! The NetBooster training pipeline (the paper's contribution): expand,
//! train the deep giant, progressively linearize, contract, finetune.

use crate::contract::contract_model;
use crate::expansion::{expand, ExpansionHandle, ExpansionPlan};
use crate::plt::{DecayCurve, PltDriver};
use crate::trainer::{ce_loss_fn, evaluate, fit, History, NoHooks, TrainConfig, TrainHooks};
use nb_data::{DataLoader, SyntheticVision};
use nb_models::{TinyNet, TnnConfig};
use nb_nn::Module;
use rand::Rng;

/// Hyperparameters of the full NetBooster pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetBoosterConfig {
    /// The expansion plan (Q1/Q2/Q3).
    pub plan: ExpansionPlan,
    /// Epochs of deep-giant training before PLT (paper: 160 on ImageNet).
    pub giant_epochs: usize,
    /// PLT decay epochs `E_d` (paper: 40 on ImageNet, 20% of tuning epochs
    /// downstream).
    pub plt_epochs: usize,
    /// Finetuning epochs after contraction (paper: 110 on ImageNet).
    pub finetune_epochs: usize,
    /// Decay trajectory for PLT (linear in the paper; the alternatives are
    /// reproduction extensions ablated by `ablation_plt`).
    pub plt_curve: DecayCurve,
    /// Shared optimizer/data hyperparameters.
    pub train: TrainConfig,
}

impl NetBoosterConfig {
    /// A scaled-down analogue of the paper's ImageNet recipe with the given
    /// per-phase epoch counts.
    pub fn with_epochs(giant: usize, plt: usize, finetune: usize, train: TrainConfig) -> Self {
        NetBoosterConfig {
            plan: ExpansionPlan::paper_default(),
            giant_epochs: giant,
            plt_epochs: plt,
            finetune_epochs: finetune,
            plt_curve: DecayCurve::Linear,
            train,
        }
    }
}

/// Everything the pipeline produces.
#[derive(Debug)]
pub struct NetBoosterOutcome {
    /// The contracted model (original TNN structure, boosted weights).
    pub model: TinyNet,
    /// Concatenated training history over all three phases.
    pub history: History,
    /// Validation accuracy of the expanded deep giant (for Tables IV/V:
    /// "Expanded Acc.").
    pub expanded_acc: f32,
    /// Final validation accuracy after contraction and finetuning.
    pub final_acc: f32,
}

struct PltHook {
    driver: PltDriver,
}

impl TrainHooks for PltHook {
    fn on_step(&mut self, _step: usize) {
        self.driver.step();
    }
}

/// Phase 1: expands a fresh model into its deep giant and trains it.
pub fn train_giant(
    cfg_model: &TnnConfig,
    plan: &ExpansionPlan,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    epochs: usize,
    rng: &mut impl Rng,
) -> (TinyNet, ExpansionHandle, History) {
    let mut model = TinyNet::new(cfg_model.clone(), rng);
    let handle = expand(&mut model, plan, rng);
    let phase_cfg = TrainConfig { epochs, ..*cfg };
    let history = {
        let mut loss_fn = ce_loss_fn(&model, cfg.label_smoothing);
        fit(
            model.parameters(),
            train,
            val,
            &phase_cfg,
            &mut loss_fn,
            &|imgs| model.logits_eval(imgs),
            &mut NoHooks,
        )
    };
    (model, handle, history)
}

/// Phase 1 on the data-parallel trainer: builds the same expanded deep
/// giant as [`train_giant`] — all init randomness drawn from a fresh
/// `StdRng` seeded with `init_seed`, so shard replicas can rebuild it
/// bitwise — and trains it with [`fit_parallel`](crate::fit_parallel).
/// With `pcfg.grain == 0` (one slice per batch) the result is
/// bitwise-identical to `train_giant` called with
/// `StdRng::seed_from_u64(init_seed)`.
#[allow(clippy::too_many_arguments)]
pub fn train_giant_parallel(
    cfg_model: &TnnConfig,
    plan: &ExpansionPlan,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    epochs: usize,
    init_seed: u64,
    pcfg: &crate::ParallelConfig,
) -> (TinyNet, ExpansionHandle, History) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let build = || {
        let mut rng = StdRng::seed_from_u64(init_seed);
        let mut model = TinyNet::new(cfg_model.clone(), &mut rng);
        let handle = expand(&mut model, plan, &mut rng);
        (model, handle)
    };
    let (model, handle) = build();
    let phase_cfg = TrainConfig { epochs, ..*cfg };
    let history = crate::fit_parallel(
        model.parameters(),
        || {
            let (replica, _handle) = build();
            crate::ShardModel::classifier(replica, cfg.label_smoothing)
        },
        train,
        val,
        &phase_cfg,
        pcfg,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    );
    (model, handle, history)
}

/// Phase 2+3 with a custom per-batch loss: runs PLT on a (pre-trained)
/// deep giant — decaying the inserted non-linearities over `plt_epochs`
/// while tuning — then contracts the model and finetunes for
/// `finetune_epochs`. The model is transformed in place. `loss_for` builds
/// the scalar loss for one batch given the *current* model (which changes
/// structure at contraction). Returns the combined history.
#[allow(clippy::too_many_arguments)]
pub fn plt_and_contract_with<F>(
    model: &mut TinyNet,
    handle: &ExpansionHandle,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    plt_epochs: usize,
    finetune_epochs: usize,
    curve: DecayCurve,
    mut loss_for: F,
) -> History
where
    F: FnMut(&TinyNet, &mut nb_nn::Session, &nb_data::Batch) -> nb_autograd::Value,
{
    let mut history = History::default();
    if plt_epochs > 0 && !handle.slopes.is_empty() {
        let steps_per_epoch = DataLoader::new(train, cfg.batch_size).batches_per_epoch();
        let mut hook = PltHook {
            driver: PltDriver::over_epochs(handle.slopes.clone(), plt_epochs, steps_per_epoch)
                .with_curve(curve),
        };
        let phase_cfg = TrainConfig {
            epochs: plt_epochs,
            // gentle rate while the non-linearities decay: restarting the
            // cosine schedule at the full peak rate wipes out the giant's
            // learned features
            lr: cfg.lr * 0.3,
            seed: cfg.seed.wrapping_add(7),
            ..*cfg
        };
        let model_ref = &*model;
        let mut loss_fn =
            |s: &mut nb_nn::Session, batch: &nb_data::Batch| loss_for(model_ref, s, batch);
        let h = fit(
            model_ref.parameters(),
            train,
            val,
            &phase_cfg,
            &mut loss_fn,
            &|imgs| model_ref.logits_eval(imgs),
            &mut hook,
        );
        history.extend(h);
        hook.driver.finish();
    } else {
        for s in &handle.slopes {
            s.set(1.0);
        }
    }
    contract_model(model);
    if finetune_epochs > 0 {
        let phase_cfg = TrainConfig {
            epochs: finetune_epochs,
            lr: cfg.lr * 0.5, // finetune at a reduced peak rate
            seed: cfg.seed.wrapping_add(13),
            ..*cfg
        };
        let model_ref = &*model;
        let mut loss_fn =
            |s: &mut nb_nn::Session, batch: &nb_data::Batch| loss_for(model_ref, s, batch);
        let h = fit(
            model_ref.parameters(),
            train,
            val,
            &phase_cfg,
            &mut loss_fn,
            &|imgs| model_ref.logits_eval(imgs),
            &mut NoHooks,
        );
        history.extend(h);
    }
    history
}

/// Phase 2+3 with the standard cross-entropy loss. See
/// [`plt_and_contract_with`].
pub fn plt_and_contract(
    model: &mut TinyNet,
    handle: &ExpansionHandle,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    plt_epochs: usize,
    finetune_epochs: usize,
) -> History {
    let smoothing = cfg.label_smoothing;
    plt_and_contract_with(
        model,
        handle,
        train,
        val,
        cfg,
        plt_epochs,
        finetune_epochs,
        DecayCurve::Linear,
        move |m, s, batch| {
            let x = s.input(batch.images.clone());
            let logits = m.forward(s, x);
            s.graph
                .softmax_cross_entropy(logits, &batch.labels, smoothing)
        },
    )
}

/// The full NetBooster pipeline on one dataset (the paper's ImageNet
/// setting): expand → train giant → PLT → contract → finetune.
pub fn netbooster_train(
    cfg_model: &TnnConfig,
    train: &SyntheticVision,
    val: &SyntheticVision,
    nb: &NetBoosterConfig,
    rng: &mut impl Rng,
) -> NetBoosterOutcome {
    let (mut model, handle, mut history) = train_giant(
        cfg_model,
        &nb.plan,
        train,
        val,
        &nb.train,
        nb.giant_epochs,
        rng,
    );
    let expanded_acc = evaluate(&|imgs| model.logits_eval(imgs), val, nb.train.eval_batch);
    let smoothing = nb.train.label_smoothing;
    let h = plt_and_contract_with(
        &mut model,
        &handle,
        train,
        val,
        &nb.train,
        nb.plt_epochs,
        nb.finetune_epochs,
        nb.plt_curve,
        move |m, s, batch| {
            let x = s.input(batch.images.clone());
            let logits = m.forward(s, x);
            s.graph
                .softmax_cross_entropy(logits, &batch.labels, smoothing)
        },
    );
    history.extend(h);
    let final_acc = evaluate(&|imgs| model.logits_eval(imgs), val, nb.train.eval_batch);
    NetBoosterOutcome {
        model,
        history,
        expanded_acc,
        final_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::{Augment, Split};
    use nb_models::mobilenet_v2_tiny;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (SyntheticVision, SyntheticVision) {
        let mk = |split| {
            SyntheticVision::new("nb", Family::Objects, 2, 12, 24, Nuisance::easy(), 8, split)
        };
        (mk(Split::Train), mk(Split::Val))
    }

    #[test]
    fn full_pipeline_contracts_back_to_original_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let (train, val) = data();
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(3);
        cfg_model.head_c = 12;
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let nb = NetBoosterConfig::with_epochs(1, 1, 1, cfg);
        let reference = TinyNet::new(cfg_model.clone(), &mut rng);
        let ref_profile = reference.profile(12);
        let out = netbooster_train(&cfg_model, &train, &val, &nb, &mut rng);
        assert_eq!(out.model.expanded_count(), 0, "all blocks contracted");
        let got = out.model.profile(12);
        assert_eq!(got.flops, ref_profile.flops, "inference cost preserved");
        assert!(out.final_acc > 0.0);
        assert!(out.expanded_acc > 0.0);
        assert!(out.history.epoch_loss.len() == 3);
        assert!(out.history.epoch_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn parallel_giant_training_matches_sequential_bitwise() {
        // one slice per batch on two workers must reproduce the legacy
        // train_giant run exactly — params and loss curve
        let (train, val) = data();
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(2);
        cfg_model.head_c = 12;
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let plan = ExpansionPlan::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let (seq_model, _, seq_hist) =
            train_giant(&cfg_model, &plan, &train, &val, &cfg, 1, &mut rng);
        let pcfg = crate::ParallelConfig {
            workers: 2,
            grain: 0,
        };
        let (par_model, _, par_hist) =
            train_giant_parallel(&cfg_model, &plan, &train, &val, &cfg, 1, 5, &pcfg);
        let (sp, pp) = (seq_model.parameters(), par_model.parameters());
        assert_eq!(sp.len(), pp.len());
        for (a, b) in sp.iter().zip(&pp) {
            let (av, bv) = (a.value(), b.value());
            assert!(
                av.as_slice()
                    .iter()
                    .zip(bv.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "giant params diverged between sequential and parallel training"
            );
        }
        assert_eq!(seq_hist.epoch_loss.len(), par_hist.epoch_loss.len());
        for (a, b) in seq_hist.epoch_loss.iter().zip(&par_hist.epoch_loss) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn contraction_at_plt_end_is_lossless_on_eval() {
        // after the PLT phase the slopes are 1; contraction must not change
        // eval logits. plt_and_contract internally contracts; verify via
        // the accuracy right before finetune == accuracy of contracted net
        // by running plt with finetune_epochs = 0.
        let mut rng = StdRng::seed_from_u64(1);
        let (train, val) = data();
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(2);
        cfg_model.head_c = 12;
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let (mut model, handle, _) = train_giant(
            &cfg_model,
            &ExpansionPlan::paper_default(),
            &train,
            &val,
            &cfg,
            1,
            &mut rng,
        );
        // drive slopes to 1 manually (PLT with 1 epoch)
        let h = plt_and_contract(&mut model, &handle, &train, &val, &cfg, 1, 0);
        // the last recorded accuracy was measured on the *linearized giant*
        // (end of PLT epoch); the contracted model must reproduce it
        let after = evaluate(&|imgs| model.logits_eval(imgs), &val, 16);
        assert!(
            (after - h.final_val_acc()).abs() < 1e-3,
            "contraction preserved accuracy: {} vs {}",
            after,
            h.final_val_acc()
        );
    }
}
