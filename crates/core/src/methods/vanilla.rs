//! The vanilla-training baseline: plain cross-entropy SGD.

use crate::trainer::{ce_loss_fn, fit, History, NoHooks, TrainConfig};
use nb_data::SyntheticVision;
use nb_models::TinyNet;
use nb_nn::Module;

use crate::sweep::{parallel_classifier_sweep, ClassifierRun, SweepCriterion, SweepReport};
use crate::trainer::ParallelConfig;
use nb_data::recipe::{Family, Nuisance};
use nb_data::Split;
use nb_models::mobilenet_v2_tiny;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains a model with plain cross-entropy (the paper's "Vanilla" rows).
pub fn train_vanilla(
    model: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
) -> History {
    let mut loss_fn = ce_loss_fn(model, cfg.label_smoothing);
    fit(
        model.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    )
}

/// Builds the 2-class easy-task training problem for `seed` — a pure
/// function of the seed, so the data-parallel sweep can rebuild identical
/// shard replicas from it.
fn easy_task_run(seed: u64) -> ClassifierRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mk =
        |split| SyntheticVision::new("e", Family::Objects, 2, 12, 32, Nuisance::easy(), 9, split);
    let (train, val) = (mk(Split::Train), mk(Split::Val));
    let mut cfg_model = mobilenet_v2_tiny(2);
    cfg_model.blocks.truncate(3);
    cfg_model.head_c = 16;
    let model = TinyNet::new(cfg_model, &mut rng);
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 8,
        lr: 0.08,
        seed,
        augment: nb_data::Augment::none(),
        ..TrainConfig::default()
    };
    ClassifierRun {
        model,
        train,
        val,
        cfg,
    }
}

/// One vanilla run on the 2-class easy task: returns the best validation
/// accuracy for `seed`, which drives both the model init and the shuffle
/// order. The shared single-run closure behind
/// [`vanilla_easy_task_sweep`].
pub fn vanilla_easy_task_metric(seed: u64) -> f32 {
    let run = easy_task_run(seed);
    train_vanilla(&run.model, &run.train, &run.val, &run.cfg).best_val_acc()
}

/// The deflaked form of the old single-seed `vanilla_learns_an_easy_task`
/// check: sweeps the easy task over `seeds` on the data-parallel sweep
/// harness and judges the 75% accuracy bar statistically (≥ 80% of seeds
/// must clear it). Used by both the unit test and `nb-verify`'s
/// `verify_all`. The default [`ParallelConfig`] keeps one slice per batch,
/// which is bitwise-identical to the legacy [`fit`]-based metric
/// ([`vanilla_easy_task_metric`]), so the criterion is unchanged by the
/// migration.
pub fn vanilla_easy_task_sweep(seeds: &[u64]) -> SweepReport {
    parallel_classifier_sweep(
        seeds,
        SweepCriterion::majority(75.0),
        &ParallelConfig::default(),
        easy_task_run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_metric_matches_legacy_fit_bitwise() {
        // one slice per batch: the migrated harness must reproduce the
        // legacy single-trainer metric exactly
        let legacy = vanilla_easy_task_metric(3);
        let swept = vanilla_easy_task_sweep(&[3]).runs[0].metric;
        assert_eq!(legacy.to_bits(), swept.to_bits());
    }

    #[test]
    fn vanilla_learns_an_easy_task() {
        // statistical criterion across seeds instead of a single-seed
        // threshold — any one seed may land an unlucky init (see sweep.rs)
        let report = vanilla_easy_task_sweep(&[0, 1, 2, 3, 4]);
        assert!(
            report.passes(),
            "2-class easy task should be learnable on most seeds:\n{}",
            report.summary()
        );
    }
}
