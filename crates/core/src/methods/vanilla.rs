//! The vanilla-training baseline: plain cross-entropy SGD.

use crate::trainer::{ce_loss_fn, fit, History, NoHooks, TrainConfig};
use nb_data::SyntheticVision;
use nb_models::TinyNet;
use nb_nn::Module;

/// Trains a model with plain cross-entropy (the paper's "Vanilla" rows).
pub fn train_vanilla(
    model: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
) -> History {
    let mut loss_fn = ce_loss_fn(model, cfg.label_smoothing);
    fit(
        model.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::Split;
    use nb_models::mobilenet_v2_tiny;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vanilla_learns_an_easy_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let mk = |split| {
            SyntheticVision::new("e", Family::Objects, 2, 12, 32, Nuisance::easy(), 9, split)
        };
        let (train, val) = (mk(Split::Train), mk(Split::Val));
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(3);
        cfg_model.head_c = 16;
        let model = TinyNet::new(cfg_model, &mut rng);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.08,
            augment: nb_data::Augment::none(),
            ..TrainConfig::default()
        };
        let h = train_vanilla(&model, &train, &val, &cfg);
        assert!(
            h.best_val_acc() >= 75.0,
            "2-class easy task should be learnable: {:?}",
            h.val_acc
        );
    }
}
