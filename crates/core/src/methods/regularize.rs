//! DropBlock-style feature regularization — the technique Fig. 1(a) shows
//! *hurting* tiny networks (Constraint 1: TNNs under-fit, so regularizing
//! them further lowers accuracy).

use crate::trainer::{fit, History, NoHooks, TrainConfig};
use nb_data::SyntheticVision;
use nb_models::TinyNet;
use nb_nn::{Module, Session};
use nb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DropBlock-like configuration: with probability `drop_prob` per sample, a
/// `block_size x block_size` spatial region of the final feature map is
/// zeroed across all channels (with the usual `1/keep` rescale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureDropConfig {
    /// Per-sample probability that a block is dropped.
    pub drop_prob: f32,
    /// Side length of the dropped square (in feature-map cells).
    pub block_size: usize,
}

impl Default for FeatureDropConfig {
    fn default() -> Self {
        FeatureDropConfig {
            drop_prob: 0.5,
            block_size: 2,
        }
    }
}

/// Builds the `[n, c, h, w]` multiplicative mask for one batch.
fn drop_mask(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    cfg: &FeatureDropConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let mut mask = Tensor::ones([n, c, h, w]);
    let b = cfg.block_size.min(h).min(w);
    for ni in 0..n {
        if rng.gen::<f32>() >= cfg.drop_prob {
            continue;
        }
        let y0 = rng.gen_range(0..=h - b);
        let x0 = rng.gen_range(0..=w - b);
        let kept = (h * w - b * b) as f32;
        let scale = if kept > 0.0 {
            (h * w) as f32 / kept
        } else {
            1.0
        };
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let inside = y >= y0 && y < y0 + b && x >= x0 && x < x0 + b;
                    *mask.at4_mut(ni, ci, y, x) = if inside { 0.0 } else { scale };
                }
            }
        }
    }
    mask
}

/// Vanilla training plus DropBlock-style regularization on the final
/// feature map.
pub fn train_with_feature_drop(
    model: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    drop: &FeatureDropConfig,
) -> History {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xd20b));
    let mut loss_fn = |s: &mut Session, batch: &nb_data::Batch| {
        let x = s.input(batch.images.clone());
        let fm = model.forward_conv_features(s, x);
        let dims = s.value(fm).dims().to_vec();
        let mask = drop_mask(dims[0], dims[1], dims[2], dims[3], drop, &mut rng);
        let mask = s.input(mask);
        let fm = s.graph.mul(fm, mask);
        let pooled = s.graph.global_avg_pool(fm);
        let logits = model.classifier.forward(s, pooled);
        s.graph
            .softmax_cross_entropy(logits, &batch.labels, cfg.label_smoothing)
    };
    fit(
        model.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::{Augment, Split, SyntheticVision};
    use nb_models::mobilenet_v2_tiny;

    #[test]
    fn mask_zeroes_one_block_and_rescales() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = FeatureDropConfig {
            drop_prob: 1.0,
            block_size: 2,
        };
        let m = drop_mask(1, 3, 4, 4, &cfg, &mut rng);
        let zeros = m.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 3 * 4, "2x2 block zeroed in all 3 channels");
        let kept: f32 = m.as_slice().iter().sum();
        // total mass preserved: (h*w - b*b) * scale = h*w per channel
        assert!((kept - 3.0 * 16.0).abs() < 1e-3);
    }

    #[test]
    fn no_drop_leaves_ones() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FeatureDropConfig {
            drop_prob: 0.0,
            block_size: 2,
        };
        let m = drop_mask(2, 2, 3, 3, &cfg, &mut rng);
        assert!(m.allclose(&Tensor::ones([2, 2, 3, 3]), 1e-7));
    }

    #[test]
    fn regularized_training_runs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mk = |split| {
            SyntheticVision::new("r", Family::Objects, 2, 12, 16, Nuisance::easy(), 2, split)
        };
        let (train, val) = (mk(Split::Train), mk(Split::Val));
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(2);
        let model = TinyNet::new(cfg_model, &mut rng);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let h = train_with_feature_drop(&model, &train, &val, &cfg, &FeatureDropConfig::default());
        assert_eq!(h.val_acc.len(), 2);
        assert!(h.epoch_loss.iter().all(|l| l.is_finite()));
    }
}
