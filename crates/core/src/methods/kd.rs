//! Knowledge-distillation baselines: classic Hinton KD, teacher-free KD
//! (tf-KD), route-constrained optimization (RCO-KD), and Rocket Launching.
//!
//! These are the comparison rows of paper Table I. All four share the
//! engine in [`crate::trainer`]; they differ only in how the per-batch loss
//! is assembled.

use crate::trainer::{fit, History, NoHooks, TrainConfig};
use nb_autograd::softmax_rows;
use nb_data::SyntheticVision;
use nb_models::{teacher, TinyNet};
use nb_nn::{Module, StateDict};
use nb_tensor::Tensor;
use rand::Rng;

/// Hyperparameters shared by the distillation methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdConfig {
    /// Softmax temperature.
    pub temperature: f32,
    /// Weight of the distillation term (the CE term gets `1 - alpha`).
    pub alpha: f32,
}

impl Default for KdConfig {
    fn default() -> Self {
        KdConfig {
            temperature: 4.0,
            alpha: 0.5,
        }
    }
}

/// Trains the stand-in teacher network (see DESIGN.md: replaces
/// Assemble-ResNet50).
pub fn train_teacher(
    classes: usize,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> (TinyNet, History) {
    let model = TinyNet::new(teacher(classes), rng);
    let history = super::vanilla::train_vanilla(&model, train, val, cfg);
    (model, history)
}

fn teacher_probs(teacher: &TinyNet, images: &Tensor, temperature: f32) -> Tensor {
    softmax_rows(&teacher.logits_eval(images).scale(1.0 / temperature))
}

/// Classic KD (Hinton et al.): `(1-a) * CE + a * T^2 KL(teacher || student)`.
pub fn train_kd(
    student: &TinyNet,
    teacher: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    kd: &KdConfig,
) -> History {
    let mut loss_fn = |s: &mut nb_nn::Session, batch: &nb_data::Batch| {
        let probs = teacher_probs(teacher, &batch.images, kd.temperature);
        let x = s.input(batch.images.clone());
        let logits = student.forward(s, x);
        let ce = s
            .graph
            .softmax_cross_entropy(logits, &batch.labels, cfg.label_smoothing);
        let kl = s.graph.kd_kl_loss(logits, &probs, kd.temperature);
        let ce_w = s.graph.scale(ce, 1.0 - kd.alpha);
        let kl_w = s.graph.scale(kl, kd.alpha);
        s.graph.add(ce_w, kl_w)
    };
    fit(
        student.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| student.logits_eval(imgs),
        &mut NoHooks,
    )
}

/// Teacher-free KD (tf-KD, Yuan et al.): distills from a *virtual* teacher
/// that puts `correct_prob` mass on the true label and spreads the rest
/// uniformly — no teacher network needed.
pub fn train_tf_kd(
    student: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    kd: &KdConfig,
    correct_prob: f32,
) -> History {
    let classes = student.config.classes;
    let mut loss_fn = |s: &mut nb_nn::Session, batch: &nb_data::Batch| {
        let n = batch.labels.len();
        let off = (1.0 - correct_prob) / (classes.saturating_sub(1)).max(1) as f32;
        let probs = Tensor::from_fn([n, classes], |i| {
            if i % classes == batch.labels[i / classes] {
                correct_prob
            } else {
                off
            }
        });
        let x = s.input(batch.images.clone());
        let logits = student.forward(s, x);
        let ce = s
            .graph
            .softmax_cross_entropy(logits, &batch.labels, cfg.label_smoothing);
        let kl = s.graph.kd_kl_loss(logits, &probs, kd.temperature);
        let ce_w = s.graph.scale(ce, 1.0 - kd.alpha);
        let kl_w = s.graph.scale(kl, kd.alpha);
        s.graph.add(ce_w, kl_w)
    };
    fit(
        student.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| student.logits_eval(imgs),
        &mut NoHooks,
    )
}

/// Route-constrained optimization (RCO-KD, Jin et al.): the student distills
/// from a *sequence* of teacher checkpoints taken along the teacher's own
/// training route, easing the capacity gap early in training.
///
/// `checkpoints` must be snapshots of `teacher_model`'s parameters ordered
/// from early to late training; student epochs are split evenly across
/// them. The teacher model is mutated (each checkpoint is loaded in turn).
///
/// # Panics
///
/// Panics if `checkpoints` is empty or a checkpoint fails to load.
pub fn train_rco_kd(
    student: &TinyNet,
    teacher_model: &TinyNet,
    checkpoints: &[StateDict],
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    kd: &KdConfig,
) -> History {
    assert!(!checkpoints.is_empty(), "RCO needs at least one checkpoint");
    let mut history = History::default();
    let phases = checkpoints.len();
    let per_phase = (cfg.epochs / phases).max(1);
    for (pi, ckpt) in checkpoints.iter().enumerate() {
        ckpt.load_into(teacher_model)
            .expect("checkpoint matches teacher architecture");
        let remaining = if pi == phases - 1 {
            cfg.epochs.saturating_sub(per_phase * (phases - 1)).max(1)
        } else {
            per_phase
        };
        let phase_cfg = TrainConfig {
            epochs: remaining,
            // continue the schedule: scale the lr down through phases
            lr: cfg.lr * (1.0 - pi as f32 / phases as f32),
            seed: cfg.seed.wrapping_add(pi as u64),
            ..*cfg
        };
        let h = train_kd(student, teacher_model, train, val, &phase_cfg, kd);
        history.extend(h);
    }
    history
}

/// Trains a teacher while snapshotting evenly spaced checkpoints for
/// RCO-KD. Returns the trained teacher and `k` checkpoints (the last one is
/// the final teacher).
pub fn train_teacher_with_route(
    classes: usize,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    k: usize,
    rng: &mut impl Rng,
) -> (TinyNet, Vec<StateDict>) {
    assert!(k >= 1, "need at least one checkpoint");
    let model = TinyNet::new(teacher(classes), rng);
    let mut checkpoints = Vec::new();
    let per = (cfg.epochs / k).max(1);
    let mut done = 0;
    for i in 0..k {
        let epochs = if i == k - 1 {
            cfg.epochs.saturating_sub(done).max(1)
        } else {
            per
        };
        let phase_cfg = TrainConfig {
            epochs,
            lr: cfg.lr * (1.0 - done as f32 / cfg.epochs.max(1) as f32),
            seed: cfg.seed.wrapping_add(i as u64 * 131),
            ..*cfg
        };
        super::vanilla::train_vanilla(&model, train, val, &phase_cfg);
        checkpoints.push(StateDict::from_module(&model));
        done += epochs;
    }
    (model, checkpoints)
}

/// Rocket Launching (Zhou et al.): the light net and a wider booster net
/// train *jointly*; a hint loss pulls the light net's logits toward the
/// booster's throughout training. Returns the light net's history (the
/// booster is discarded, as in the paper).
pub fn train_rocket_launch(
    light: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    hint_weight: f32,
    rng: &mut impl Rng,
) -> History {
    let booster_cfg = light
        .config
        .width_scaled(2.0)
        .with_classes(light.config.classes);
    let booster = TinyNet::new(booster_cfg, rng);
    let mut params = light.parameters();
    params.extend(booster.parameters());
    let mut loss_fn = |s: &mut nb_nn::Session, batch: &nb_data::Batch| {
        let x = s.input(batch.images.clone());
        let logits_l = light.forward(s, x);
        let logits_b = booster.forward(s, x);
        let ce_l = s.graph.softmax_cross_entropy(logits_l, &batch.labels, 0.0);
        let ce_b = s.graph.softmax_cross_entropy(logits_b, &batch.labels, 0.0);
        let hint = s.graph.mse_between(logits_l, logits_b);
        let hint_w = s.graph.scale(hint, hint_weight);
        let sum = s.graph.add(ce_l, ce_b);
        s.graph.add(sum, hint_w)
    };
    fit(
        params,
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| light.logits_eval(imgs),
        &mut NoHooks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::{Augment, Split};
    use nb_models::mobilenet_v2_tiny;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (SyntheticVision, SyntheticVision) {
        let mk = |split| {
            SyntheticVision::new("k", Family::Objects, 2, 12, 16, Nuisance::easy(), 4, split)
        };
        (mk(Split::Train), mk(Split::Val))
    }

    fn small_model(rng: &mut StdRng) -> TinyNet {
        let mut cfg = mobilenet_v2_tiny(2);
        cfg.blocks.truncate(2);
        cfg.head_c = 12;
        TinyNet::new(cfg, rng)
    }

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn kd_runs_and_reports() {
        let mut rng = StdRng::seed_from_u64(0);
        let (train, val) = data();
        let student = small_model(&mut rng);
        let teacher = small_model(&mut rng);
        let h = train_kd(
            &student,
            &teacher,
            &train,
            &val,
            &quick_cfg(2),
            &KdConfig::default(),
        );
        assert_eq!(h.val_acc.len(), 2);
        assert!(h.epoch_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn tf_kd_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, val) = data();
        let student = small_model(&mut rng);
        let h = train_tf_kd(
            &student,
            &train,
            &val,
            &quick_cfg(2),
            &KdConfig::default(),
            0.9,
        );
        assert_eq!(h.val_acc.len(), 2);
    }

    #[test]
    fn rco_kd_walks_checkpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, val) = data();
        let student = small_model(&mut rng);
        let teacher = small_model(&mut rng);
        let c1 = StateDict::from_module(&teacher);
        // perturb to create a distinct second checkpoint
        teacher
            .classifier
            .weight()
            .set_value(teacher.classifier.weight().value().scale(0.5));
        let c2 = StateDict::from_module(&teacher);
        let h = train_rco_kd(
            &student,
            &teacher,
            &[c1, c2],
            &train,
            &val,
            &quick_cfg(2),
            &KdConfig::default(),
        );
        assert_eq!(h.val_acc.len(), 2);
    }

    #[test]
    fn rocket_launch_trains_both_nets() {
        let mut rng = StdRng::seed_from_u64(3);
        let (train, val) = data();
        let light = small_model(&mut rng);
        let h = train_rocket_launch(&light, &train, &val, &quick_cfg(2), 0.5, &mut rng);
        assert_eq!(h.val_acc.len(), 2);
        assert!(h.epoch_loss[1] <= h.epoch_loss[0] * 1.5, "joint loss sane");
    }

    #[test]
    fn teacher_route_produces_k_checkpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let (train, val) = data();
        let (_, ckpts) = train_teacher_with_route(2, &train, &val, &quick_cfg(2), 2, &mut rng);
        assert_eq!(ckpts.len(), 2);
        assert!(ckpts[0] != ckpts[1], "checkpoints differ");
    }
}
