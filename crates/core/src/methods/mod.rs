//! Training methods: the NetBooster pipeline and every baseline the paper
//! compares against.

pub mod kd;
pub mod netaug;
pub mod netbooster;
pub mod regularize;
pub mod vanilla;
