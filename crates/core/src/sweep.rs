//! Seed-sweep harness for statistical training tests.
//!
//! Single-seed accuracy thresholds make training tests flaky: one unlucky
//! initialization or shuffle order drops a run below the bar even though the
//! method works. Instead of asserting on one seed, [`seed_sweep`] runs a
//! short training closure across N seeds and asserts a *statistical* pass
//! criterion — e.g. "at least 80% of seeds reach the accuracy bar". A method
//! that genuinely learns clears this easily; a regression that breaks
//! learning fails every seed.
//!
//! The report keeps every per-seed metric so a failure message shows the
//! whole distribution, not just a bare bool.

/// Pass criterion for a sweep: each seed must reach `bar`, and at least
/// `min_pass_fraction` of the seeds must do so.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCriterion {
    /// Metric threshold an individual seed must reach (e.g. val accuracy).
    pub bar: f32,
    /// Fraction of seeds (in `[0, 1]`) that must reach the bar for the
    /// sweep to pass.
    pub min_pass_fraction: f32,
}

impl SweepCriterion {
    /// The default criterion from DESIGN.md: ≥ 80% of seeds reach the bar.
    pub fn majority(bar: f32) -> Self {
        SweepCriterion {
            bar,
            min_pass_fraction: 0.8,
        }
    }
}

/// One seed's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedRun {
    /// The seed the closure ran with.
    pub seed: u64,
    /// The metric the closure returned (higher is better).
    pub metric: f32,
    /// Whether the metric reached the criterion's bar.
    pub passed: bool,
}

/// Full sweep outcome: the criterion plus every per-seed run.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The criterion the sweep was judged against.
    pub criterion: SweepCriterion,
    /// Per-seed outcomes, in the order the seeds were given.
    pub runs: Vec<SeedRun>,
}

impl SweepReport {
    /// Fraction of seeds that reached the bar.
    pub fn pass_fraction(&self) -> f32 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.passed).count() as f32 / self.runs.len() as f32
    }

    /// Mean metric across seeds.
    pub fn mean_metric(&self) -> f32 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.metric).sum::<f32>() / self.runs.len() as f32
    }

    /// Worst metric across seeds.
    pub fn min_metric(&self) -> f32 {
        self.runs
            .iter()
            .map(|r| r.metric)
            .fold(f32::INFINITY, f32::min)
    }

    /// True when enough seeds reached the bar.
    pub fn passes(&self) -> bool {
        self.pass_fraction() >= self.criterion.min_pass_fraction - 1e-6
    }

    /// A one-line-per-seed table for assertion messages and CI logs.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "seed sweep: {}/{} seeds reached bar {:.2} (need {:.0}%), mean {:.2}\n",
            self.runs.iter().filter(|r| r.passed).count(),
            self.runs.len(),
            self.criterion.bar,
            self.criterion.min_pass_fraction * 100.0,
            self.mean_metric(),
        );
        for r in &self.runs {
            out.push_str(&format!(
                "  seed {:>4}  metric {:>7.2}  {}\n",
                r.seed,
                r.metric,
                if r.passed { "pass" } else { "FAIL" }
            ));
        }
        out
    }
}

/// Runs `run` once per seed and judges the returned metrics against
/// `criterion`. The closure owns everything seed-dependent: model init,
/// data shuffling, augmentation.
pub fn seed_sweep(
    seeds: &[u64],
    criterion: SweepCriterion,
    mut run: impl FnMut(u64) -> f32,
) -> SweepReport {
    let runs = seeds
        .iter()
        .map(|&seed| {
            let metric = run(seed);
            SeedRun {
                seed,
                metric,
                passed: metric >= criterion.bar,
            }
        })
        .collect();
    SweepReport { criterion, runs }
}

/// One seed's classifier training problem for [`parallel_classifier_sweep`]:
/// everything [`fit_parallel`](crate::fit_parallel) needs, rebuilt
/// deterministically from the seed.
pub struct ClassifierRun {
    /// The freshly initialized model (seed-determined weights).
    pub model: nb_models::TinyNet,
    /// Training split.
    pub train: nb_data::SyntheticVision,
    /// Validation split.
    pub val: nb_data::SyntheticVision,
    /// Phase hyperparameters (typically with `seed` folded in).
    pub cfg: crate::TrainConfig,
}

/// Seed-sweeps a classifier on the data-parallel trainer: one
/// [`fit_parallel`](crate::fit_parallel) run per seed, judged like
/// [`seed_sweep`]. The metric is the run's best validation accuracy.
///
/// `setup` must be a *pure function of the seed* — it is called once on
/// the sweep thread for the master and once per shard thread for the
/// replicas, and every call must produce identical weights and data. With
/// the default [`ParallelConfig`](crate::ParallelConfig) (one slice per
/// batch) each run is bitwise-identical to the legacy [`fit`](crate::fit)
/// path, so migrating a sweep here cannot move its statistical criterion.
pub fn parallel_classifier_sweep(
    seeds: &[u64],
    criterion: SweepCriterion,
    pcfg: &crate::ParallelConfig,
    setup: impl Fn(u64) -> ClassifierRun + Sync,
) -> SweepReport {
    use nb_nn::Module;
    seed_sweep(seeds, criterion, |seed| {
        let run = setup(seed);
        let history = crate::fit_parallel(
            run.model.parameters(),
            || {
                let replica = setup(seed);
                crate::ShardModel::classifier(replica.model, replica.cfg.label_smoothing)
            },
            &run.train,
            &run.val,
            &run.cfg,
            pcfg,
            &|imgs| run.model.logits_eval(imgs),
            &mut crate::NoHooks,
        );
        history.best_val_acc()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_when_enough_seeds_clear_bar() {
        let metrics = [80.0, 90.0, 60.0, 85.0, 88.0];
        let rep = seed_sweep(&[0, 1, 2, 3, 4], SweepCriterion::majority(75.0), |s| {
            metrics[s as usize]
        });
        assert_eq!(rep.runs.len(), 5);
        assert!((rep.pass_fraction() - 0.8).abs() < 1e-6);
        assert!(rep.passes(), "{}", rep.summary());
        assert_eq!(rep.min_metric(), 60.0);
    }

    #[test]
    fn sweep_fails_when_too_few_seeds_clear_bar() {
        let rep = seed_sweep(&[0, 1, 2], SweepCriterion::majority(50.0), |s| {
            if s == 0 {
                60.0
            } else {
                40.0
            }
        });
        assert!(!rep.passes());
        assert!(rep.summary().contains("FAIL"));
        assert!(rep.summary().contains("1/3"));
    }

    #[test]
    fn empty_sweep_fails() {
        let rep = seed_sweep(&[], SweepCriterion::majority(0.0), |_| 100.0);
        assert!(!rep.passes());
        assert_eq!(rep.mean_metric(), 0.0);
    }

    #[test]
    fn closure_sees_each_seed_once() {
        let mut seen = Vec::new();
        seed_sweep(
            &[7, 11, 13],
            SweepCriterion {
                bar: 0.0,
                min_pass_fraction: 1.0,
            },
            |s| {
                seen.push(s);
                s as f32
            },
        );
        assert_eq!(seen, vec![7, 11, 13]);
    }
}
