//! Detection finetuning on the Pascal VOC stand-in (paper Table III):
//! train the YOLO-lite head (and backbone) on `SyntheticVoc`, score with
//! AP50, and support the NetBooster variant (PLT + contraction of an
//! expanded backbone during detection finetuning).

use crate::contract::contract_model;
use crate::expansion::ExpansionHandle;
use crate::plt::PltDriver;
use crate::trainer::TrainConfig;
use nb_data::{BoxAnnotation, SyntheticVoc};
use nb_metrics::{ap50, ScoredBox};
use nb_models::{detection_loss, encode_targets, DetectorNet};
use nb_nn::{Module, Session};
use nb_optim::{CosineAnneal, LrSchedule, Sgd, SgdConfig};
use nb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Detection-phase record.
#[derive(Debug, Clone, Default)]
pub struct DetHistory {
    /// Mean loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// AP50 after each epoch.
    pub ap50: Vec<f32>,
}

impl DetHistory {
    /// Final AP50.
    ///
    /// # Panics
    ///
    /// Panics if no epochs were recorded.
    pub fn final_ap50(&self) -> f32 {
        *self.ap50.last().expect("no epochs recorded")
    }
}

fn batch_images(data: &SyntheticVoc, indices: &[usize]) -> (Tensor, Vec<Vec<BoxAnnotation>>) {
    let s = data.image_size();
    let mut images = Tensor::zeros([indices.len(), 3, s, s]);
    let mut anns = Vec::with_capacity(indices.len());
    let plane = 3 * s * s;
    for (k, &i) in indices.iter().enumerate() {
        let (img, a) = data.get(i);
        images.as_mut_slice()[k * plane..(k + 1) * plane].copy_from_slice(img.as_slice());
        anns.push(a);
    }
    (images, anns)
}

/// AP50 of a detector over a detection dataset.
pub fn eval_detector(det: &DetectorNet, data: &SyntheticVoc, score_threshold: f32) -> f32 {
    let batch = 16;
    let mut preds = Vec::with_capacity(data.len());
    let mut gts = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let hi = (i + batch).min(data.len());
        let indices: Vec<usize> = (i..hi).collect();
        let (images, anns) = batch_images(data, &indices);
        let dets = det.detect(&images, score_threshold);
        for d in dets {
            preds.push(
                d.into_iter()
                    .map(|d| ScoredBox {
                        bbox: d.bbox,
                        score: d.score,
                    })
                    .collect::<Vec<_>>(),
            );
        }
        gts.extend(anns);
        i = hi;
    }
    ap50(&preds, &gts, det.num_classes())
}

/// Trains a detector with the combined grid loss. When `plt` is provided,
/// the backbone's inserted blocks are linearized over the first
/// `plt_epochs` and contracted afterwards (the NetBooster detection
/// pipeline); the head keeps training throughout.
pub fn train_detector(
    det: &mut DetectorNet,
    train: &SyntheticVoc,
    val: &SyntheticVoc,
    cfg: &TrainConfig,
    plt: Option<(&ExpansionHandle, usize)>,
) -> DetHistory {
    let batches_per_epoch = train.len().div_ceil(cfg.batch_size);
    let sched = CosineAnneal::new(cfg.lr, (cfg.epochs * batches_per_epoch).max(1));
    let mut opt = Sgd::new(
        det.parameters(),
        SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            nesterov: false,
        },
    );
    let mut driver = plt.map(|(handle, plt_epochs)| {
        PltDriver::over_epochs(handle.slopes.clone(), plt_epochs.max(1), batches_per_epoch)
    });
    let g = det.grid_size(train.image_size());
    let classes = det.num_classes();
    let mut history = DetHistory::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (images, anns) = batch_images(train, chunk);
            let targets = encode_targets(&anns, classes, g);
            let mut s = Session::new(true);
            let x = s.input(images);
            let grid = det.forward_grid(&mut s, x);
            let loss = detection_loss(&mut s, grid, &targets);
            loss_sum += s.value(loss).item() as f64;
            batches += 1;
            s.backward(loss);
            // release the tape before stepping so the optimizer's COW
            // parameter updates are in-place rather than copy-on-write
            drop(s);
            opt.clip_grad_norm(cfg.grad_clip);
            opt.step(sched.lr(step));
            step += 1;
            if let Some(d) = &mut driver {
                d.step();
                if d.is_done() && det.backbone.expanded_count() > 0 {
                    d.finish();
                    contract_model(&mut det.backbone);
                    // the optimizer must track the new (merged) parameters
                    opt = Sgd::new(
                        det.parameters(),
                        SgdConfig {
                            lr: cfg.lr,
                            momentum: cfg.momentum,
                            weight_decay: cfg.weight_decay,
                            nesterov: false,
                        },
                    );
                }
            }
        }
        history
            .epoch_loss
            .push((loss_sum / batches.max(1) as f64) as f32);
        // a low decode threshold: AP ranks detections by score, so weak
        // early-training confidences still register instead of scoring 0
        history.ap50.push(eval_detector(det, val, 0.05));
        let _ = epoch;
    }
    // safety: if PLT never completed (tiny epoch counts), contract now
    if let Some(d) = &mut driver {
        if det.backbone.expanded_count() > 0 {
            d.finish();
            contract_model(&mut det.backbone);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{expand, ExpansionPlan};
    use nb_data::Augment;
    use nb_models::{mobilenet_v2_tiny, TinyNet};

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            lr: 0.02,
            augment: Augment::none(),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn detector_trains_and_scores() {
        let mut rng = StdRng::seed_from_u64(0);
        let train = SyntheticVoc::new(3, 24, 16, 1);
        let val = SyntheticVoc::new(3, 24, 8, 2);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(3);
        let backbone = TinyNet::new(cfg_model, &mut rng);
        let mut det = DetectorNet::new(backbone, 3, &mut rng);
        let h = train_detector(&mut det, &train, &val, &quick_cfg(2), None);
        assert_eq!(h.ap50.len(), 2);
        assert!(h.epoch_loss.iter().all(|l| l.is_finite()));
        assert!(h.final_ap50() >= 0.0 && h.final_ap50() <= 100.0);
    }

    #[test]
    fn netbooster_detection_contracts_backbone() {
        let mut rng = StdRng::seed_from_u64(1);
        let train = SyntheticVoc::new(2, 24, 16, 3);
        let val = SyntheticVoc::new(2, 24, 8, 4);
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(3);
        let mut backbone = TinyNet::new(cfg_model, &mut rng);
        let handle = expand(&mut backbone, &ExpansionPlan::paper_default(), &mut rng);
        let mut det = DetectorNet::new(backbone, 2, &mut rng);
        assert!(det.backbone.expanded_count() > 0);
        let h = train_detector(&mut det, &train, &val, &quick_cfg(2), Some((&handle, 1)));
        assert_eq!(det.backbone.expanded_count(), 0, "backbone contracted");
        assert_eq!(h.ap50.len(), 2);
    }
}
