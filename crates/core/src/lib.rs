//! # netbooster-core
//!
//! The NetBooster training framework (DAC 2023) and its baselines:
//!
//! - **Expansion** ([`expansion`]): replace selected pointwise convolutions
//!   with multi-layer inserted blocks, building the "deep giant";
//! - **PLT** ([`plt`]): progressively decay the inserted non-linearities to
//!   the identity while tuning;
//! - **Contraction** ([`contract`]): merge each linearized block back into
//!   a single convolution (paper Eq. 3–4), preserving the learned features
//!   and the original inference cost;
//! - **Pipelines** ([`methods::netbooster`], [`transfer`], [`detection`]):
//!   large-scale pretraining, downstream classification transfer, and
//!   detection finetuning;
//! - **Baselines** ([`methods`]): vanilla, DropBlock-style regularization,
//!   NetAug, classic KD, tf-KD, RCO-KD, and Rocket Launching.
//!
//! ## Example
//!
//! ```no_run
//! use netbooster_core::{netbooster_train, NetBoosterConfig, TrainConfig};
//! use nb_data::{synthetic_imagenet, Scale};
//! use nb_models::mobilenet_v2_tiny;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = synthetic_imagenet(Scale::Smoke);
//! let cfg = NetBoosterConfig::with_epochs(2, 1, 1, TrainConfig::default());
//! let mut rng = StdRng::seed_from_u64(0);
//! let out = netbooster_train(
//!     &mobilenet_v2_tiny(nb_data::Dataset::num_classes(&data.train)),
//!     &data.train, &data.val, &cfg, &mut rng,
//! );
//! println!("expanded {:.1}% -> final {:.1}%", out.expanded_acc, out.final_acc);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod contract;
pub mod detection;
pub mod expansion;
pub mod methods;
pub mod plt;
pub mod sweep;
pub mod trainer;
pub mod transfer;

pub use analysis::{activation_stats, linearizability_summary, ActivationStats};
pub use contract::{
    add_identity, compose_convs, contract_inserted_block, contract_model, depthwise_to_dense,
    fold_bn,
};
pub use detection::{eval_detector, train_detector, DetHistory};
pub use expansion::{
    build_inserted_block, expand, BlockKind, ExpansionHandle, ExpansionPlan, Placement,
};
pub use methods::kd::{
    train_kd, train_rco_kd, train_rocket_launch, train_teacher, train_teacher_with_route,
    train_tf_kd, KdConfig,
};
pub use methods::netaug::{train_netaug, NetAugConfig};
pub use methods::netbooster::{
    netbooster_train, plt_and_contract, plt_and_contract_with, train_giant, train_giant_parallel,
    NetBoosterConfig, NetBoosterOutcome,
};
pub use methods::regularize::{train_with_feature_drop, FeatureDropConfig};
pub use methods::vanilla::{train_vanilla, vanilla_easy_task_metric, vanilla_easy_task_sweep};
pub use plt::{DecayCurve, PltDriver};
pub use sweep::{
    parallel_classifier_sweep, seed_sweep, ClassifierRun, SeedRun, SweepCriterion, SweepReport,
};
pub use trainer::{
    ce_loss_fn, evaluate, evaluate_confusion, fit, fit_parallel, shard_thread_caps, History,
    NoHooks, ParallelConfig, ShardModel, TrainConfig, TrainHooks,
};
pub use transfer::{
    linear_probe_transfer, netbooster_transfer, netbooster_transfer_kd, split_tuning_epochs,
    vanilla_transfer, vanilla_transfer_kd, PLT_EPOCH_FRACTION,
};
