//! Activation-linearity analysis.
//!
//! The paper's Step 2 rests on the observation (Jha et al., DeepReduce)
//! that much of a trained network's non-linearity is redundant. This module
//! quantifies that directly: for each decayable activation inside the
//! inserted blocks, it measures how often inputs fall in the region where
//! the activation actually bends (negative, or above 6 for ReLU6) on real
//! data. Low bend rates mean linearization will lose little — the
//! quantitative backbone of PLT.

use nb_data::Batch;
use nb_models::{InsertedConv, PwSlot, TinyNet};
use nb_nn::{Module, Session};

/// Non-linearity usage statistics for one inserted-block activation site.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationStats {
    /// Which model block the site lives in.
    pub block: usize,
    /// Unit index inside the inserted block.
    pub unit: usize,
    /// Fraction of inputs in the bent region (`x < 0` or `x > 6`).
    pub bend_fraction: f32,
    /// Mean pre-activation value.
    pub mean: f32,
    /// Current decay slope `alpha` of the site.
    pub alpha: f32,
}

/// Measures, for every decayable activation inside the model's expanded
/// blocks, how much of the batch actually exercises the non-linearity.
///
/// Runs one eval-mode forward per expanded block unit; the pre-activation
/// is reconstructed by re-running the block's prefix, so the cost is a few
/// forwards of the (small) blocks, not of the whole network.
pub fn activation_stats(model: &TinyNet, batch: &Batch) -> Vec<ActivationStats> {
    let mut out = Vec::new();
    // run the network up to each block, caching the block inputs
    let mut s = Session::new(false);
    let mut cur = s.input(batch.images.clone());
    cur = model.stem.forward(&mut s, cur);
    for (bi, block) in model.blocks.iter().enumerate() {
        let block_input = cur;
        if let Some(PwSlot::Expanded(ib)) = &block.expand {
            // walk the inserted block unit by unit, sampling pre-activations
            let mut inner = block_input;
            for (ui, unit) in ib.units.iter().enumerate() {
                inner = match &unit.conv {
                    InsertedConv::Dense(c) => c.forward(&mut s, inner),
                    InsertedConv::Depthwise(c) => c.forward(&mut s, inner),
                };
                inner = unit.bn.forward(&mut s, inner);
                if let Some(act) = &unit.act {
                    let pre = s.value(inner);
                    let n = pre.numel() as f32;
                    let bent = pre
                        .as_slice()
                        .iter()
                        .filter(|&&v| !(0.0..=6.0).contains(&v))
                        .count() as f32;
                    out.push(ActivationStats {
                        block: bi,
                        unit: ui,
                        bend_fraction: bent / n,
                        mean: pre.mean(),
                        alpha: act.slope().get(),
                    });
                    inner = act.forward(&mut s, inner);
                }
            }
        }
        cur = block.forward(&mut s, block_input);
    }
    out
}

/// Summary of [`activation_stats`]: the mean and max bend fraction over all
/// decayable sites (empty models report zeros).
pub fn linearizability_summary(stats: &[ActivationStats]) -> (f32, f32) {
    if stats.is_empty() {
        return (0.0, 0.0);
    }
    let mean = stats.iter().map(|s| s.bend_fraction).sum::<f32>() / stats.len() as f32;
    let max = stats.iter().map(|s| s.bend_fraction).fold(0.0, f32::max);
    (mean, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::{expand, ExpansionPlan};
    use nb_models::mobilenet_v2_tiny;
    use nb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(rng: &mut StdRng) -> Batch {
        Batch {
            images: Tensor::rand_uniform([4, 3, 16, 16], 0.0, 1.0, rng),
            labels: vec![0; 4],
        }
    }

    #[test]
    fn unexpanded_model_has_no_sites() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = TinyNet::new(mobilenet_v2_tiny(4), &mut rng);
        let stats = activation_stats(&net, &batch(&mut rng));
        assert!(stats.is_empty());
        assert_eq!(linearizability_summary(&stats), (0.0, 0.0));
    }

    #[test]
    fn expanded_model_reports_every_decayable_site() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = TinyNet::new(mobilenet_v2_tiny(4), &mut rng);
        let handle = expand(&mut net, &ExpansionPlan::paper_default(), &mut rng);
        let stats = activation_stats(&net, &batch(&mut rng));
        assert_eq!(stats.len(), handle.slopes.len());
        for s in &stats {
            assert!((0.0..=1.0).contains(&s.bend_fraction), "{s:?}");
            assert_eq!(s.alpha, 0.0);
            assert!(s.mean.is_finite());
        }
        let (mean, max) = linearizability_summary(&stats);
        assert!(mean <= max && max <= 1.0);
    }

    #[test]
    fn alpha_is_reported_after_decay() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = TinyNet::new(mobilenet_v2_tiny(4), &mut rng);
        let handle = expand(&mut net, &ExpansionPlan::paper_default(), &mut rng);
        for s in &handle.slopes {
            s.set(0.7);
        }
        let stats = activation_stats(&net, &batch(&mut rng));
        assert!(stats.iter().all(|s| (s.alpha - 0.7).abs() < 1e-6));
    }
}
