//! Downstream-transfer pipelines (paper Constraint 2 / Table II): finetune
//! an ImageNet-pretrained model — vanilla or NetBooster deep giant — on a
//! target dataset, optionally with knowledge distillation on top.

use crate::expansion::ExpansionHandle;
use crate::methods::kd::KdConfig;
use crate::methods::netbooster::plt_and_contract_with;
use crate::plt::DecayCurve;
use crate::trainer::{ce_loss_fn, fit, History, NoHooks, TrainConfig};
use nb_autograd::softmax_rows;
use nb_data::SyntheticVision;
use nb_models::TinyNet;
use nb_nn::Module;
use rand::Rng;

/// Fraction of the tuning epochs spent decaying (`E_d`); the paper uses 20%
/// for every downstream task.
pub const PLT_EPOCH_FRACTION: f32 = 0.2;

/// Splits a downstream tuning budget into `(plt, finetune)` epochs with the
/// paper's 20% rule (at least one epoch each when the budget allows).
pub fn split_tuning_epochs(total: usize) -> (usize, usize) {
    if total <= 1 {
        return (total, 0);
    }
    let plt = ((total as f32 * PLT_EPOCH_FRACTION).round() as usize).clamp(1, total - 1);
    (plt, total - plt)
}

/// Vanilla transfer: swap the classifier head and finetune everything.
pub fn vanilla_transfer(
    pretrained: &mut TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> History {
    pretrained.reset_classifier(train_classes(train), rng);
    let model = &*pretrained;
    let mut loss_fn = ce_loss_fn(model, cfg.label_smoothing);
    fit(
        model.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    )
}

/// Vanilla transfer with classic KD from a (downstream-trained) teacher.
pub fn vanilla_transfer_kd(
    pretrained: &mut TinyNet,
    teacher: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    kd: &KdConfig,
    rng: &mut impl Rng,
) -> History {
    pretrained.reset_classifier(train_classes(train), rng);
    let model = &*pretrained;
    let (temperature, alpha) = (kd.temperature, kd.alpha);
    let mut loss_fn = |s: &mut nb_nn::Session, batch: &nb_data::Batch| {
        let probs = softmax_rows(&teacher.logits_eval(&batch.images).scale(1.0 / temperature));
        let x = s.input(batch.images.clone());
        let logits = model.forward(s, x);
        let ce = s
            .graph
            .softmax_cross_entropy(logits, &batch.labels, cfg.label_smoothing);
        let kl = s.graph.kd_kl_loss(logits, &probs, temperature);
        let ce_w = s.graph.scale(ce, 1.0 - alpha);
        let kl_w = s.graph.scale(kl, alpha);
        s.graph.add(ce_w, kl_w)
    };
    fit(
        model.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    )
}

/// NetBooster transfer: start from the ImageNet-pretrained *deep giant*,
/// swap the head, run PLT over the first 20% of tuning epochs, contract,
/// and finetune for the rest.
pub fn netbooster_transfer(
    giant: &mut TinyNet,
    handle: &ExpansionHandle,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    total_epochs: usize,
    rng: &mut impl Rng,
) -> History {
    giant.reset_classifier(train_classes(train), rng);
    let (plt, finetune) = split_tuning_epochs(total_epochs);
    let smoothing = cfg.label_smoothing;
    plt_and_contract_with(
        giant,
        handle,
        train,
        val,
        cfg,
        plt,
        finetune,
        DecayCurve::Linear,
        move |m, s, batch| {
            let x = s.input(batch.images.clone());
            let logits = m.forward(s, x);
            s.graph
                .softmax_cross_entropy(logits, &batch.labels, smoothing)
        },
    )
}

/// NetBooster transfer with KD stacked on top (the "NetBooster + KD" rows
/// of Table II): the PLT/finetune loss gains a distillation term.
#[allow(clippy::too_many_arguments)]
pub fn netbooster_transfer_kd(
    giant: &mut TinyNet,
    handle: &ExpansionHandle,
    teacher: &TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    kd: &KdConfig,
    total_epochs: usize,
    rng: &mut impl Rng,
) -> History {
    giant.reset_classifier(train_classes(train), rng);
    let (plt, finetune) = split_tuning_epochs(total_epochs);
    let (temperature, alpha) = (kd.temperature, kd.alpha);
    let smoothing = cfg.label_smoothing;
    plt_and_contract_with(
        giant,
        handle,
        train,
        val,
        cfg,
        plt,
        finetune,
        DecayCurve::Linear,
        move |m, s, batch| {
            let probs = softmax_rows(&teacher.logits_eval(&batch.images).scale(1.0 / temperature));
            let x = s.input(batch.images.clone());
            let logits = m.forward(s, x);
            let ce = s
                .graph
                .softmax_cross_entropy(logits, &batch.labels, smoothing);
            let kl = s.graph.kd_kl_loss(logits, &probs, temperature);
            let ce_w = s.graph.scale(ce, 1.0 - alpha);
            let kl_w = s.graph.scale(kl, alpha);
            s.graph.add(ce_w, kl_w)
        },
    )
}

/// Linear-probe transfer: freeze the backbone, train only the fresh
/// classifier head. A cheap transfer baseline that isolates the quality of
/// the pretrained features (nothing else can adapt).
pub fn linear_probe_transfer(
    pretrained: &mut TinyNet,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> History {
    pretrained.reset_classifier(train_classes(train), rng);
    // freeze everything except the classifier
    let head_keys: std::collections::HashSet<usize> = pretrained
        .classifier
        .parameters()
        .iter()
        .map(|p| p.key())
        .collect();
    let frozen: Vec<_> = pretrained
        .parameters()
        .into_iter()
        .filter(|p| !head_keys.contains(&p.key()))
        .collect();
    for p in &frozen {
        p.set_trainable(false);
    }
    let model = &*pretrained;
    let mut loss_fn = ce_loss_fn(model, cfg.label_smoothing);
    let history = fit(
        model.classifier.parameters(),
        train,
        val,
        cfg,
        &mut loss_fn,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    );
    for p in &frozen {
        p.set_trainable(true);
    }
    history
}

fn train_classes(data: &SyntheticVision) -> usize {
    use nb_data::Dataset;
    data.num_classes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::ExpansionPlan;
    use crate::methods::netbooster::train_giant;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::{Augment, Split};
    use nb_models::mobilenet_v2_tiny;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(classes: usize, seed: u64) -> (SyntheticVision, SyntheticVision) {
        let mk = |split| {
            SyntheticVision::new(
                "d",
                Family::Radial,
                classes,
                12,
                16,
                Nuisance::easy(),
                seed,
                split,
            )
        };
        (mk(Split::Train), mk(Split::Val))
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn epoch_split_follows_20_percent_rule() {
        assert_eq!(split_tuning_epochs(10), (2, 8));
        assert_eq!(split_tuning_epochs(5), (1, 4));
        assert_eq!(split_tuning_epochs(2), (1, 1));
        assert_eq!(split_tuning_epochs(1), (1, 0));
        assert_eq!(split_tuning_epochs(0), (0, 0));
    }

    #[test]
    fn vanilla_transfer_swaps_head_and_trains() {
        let mut rng = StdRng::seed_from_u64(0);
        let (pre_train, pre_val) = data(2, 1);
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(2);
        let mut model = nb_models::TinyNet::new(cfg_model, &mut rng);
        crate::methods::vanilla::train_vanilla(&model, &pre_train, &pre_val, &quick_cfg());
        // transfer to a 3-class downstream dataset
        let (dtrain, dval) = data(3, 2);
        let h = vanilla_transfer(&mut model, &dtrain, &dval, &quick_cfg(), &mut rng);
        assert_eq!(model.config.classes, 3);
        assert_eq!(h.val_acc.len(), 2);
    }

    #[test]
    fn linear_probe_freezes_backbone() {
        let mut rng = StdRng::seed_from_u64(5);
        let (train, val) = data(3, 6);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(2);
        let mut model = nb_models::TinyNet::new(cfg_model, &mut rng);
        let stem_before = model.stem.conv.weight().value();
        let head_before = model.classifier.weight().value();
        let h = linear_probe_transfer(&mut model, &train, &val, &quick_cfg(), &mut rng);
        assert_eq!(h.val_acc.len(), 2);
        // backbone untouched, head moved
        assert_eq!(model.stem.conv.weight().value(), stem_before);
        assert!(model.classifier.weight().value().max_abs_diff(&head_before) >= 0.0);
        assert!(
            model.classifier.weight().grad().abs_sum() == 0.0,
            "grads cleared"
        );
        // everything unfrozen again afterwards
        let mut all_trainable = true;
        model.visit_params("", &mut |_, p| all_trainable &= p.trainable());
        assert!(all_trainable);
    }

    #[test]
    fn netbooster_transfer_contracts_on_downstream() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pre_train, pre_val) = data(2, 3);
        let mut cfg_model = mobilenet_v2_tiny(2);
        cfg_model.blocks.truncate(3);
        let (mut giant, handle, _) = train_giant(
            &cfg_model,
            &ExpansionPlan::paper_default(),
            &pre_train,
            &pre_val,
            &quick_cfg(),
            1,
            &mut rng,
        );
        assert!(giant.expanded_count() > 0);
        let (dtrain, dval) = data(4, 4);
        let h = netbooster_transfer(
            &mut giant,
            &handle,
            &dtrain,
            &dval,
            &quick_cfg(),
            2,
            &mut rng,
        );
        assert_eq!(giant.expanded_count(), 0, "contracted downstream");
        assert_eq!(giant.config.classes, 4);
        assert_eq!(h.val_acc.len(), 2);
    }
}
