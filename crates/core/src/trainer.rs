//! The shared training engine: epoch/step loop, cosine learning-rate
//! schedule, evaluation, and the hook points that NetBooster's PLT and the
//! baselines plug into.

use nb_autograd::Value;
use nb_data::{Augment, Batch, DataLoader, SyntheticVision};
use nb_metrics::Accuracy;
use nb_nn::{Module, Parameter, Session};
use nb_optim::{CosineAnneal, LrSchedule, Sgd, SgdConfig};
use nb_tensor::Tensor;

/// Hyperparameters of one training phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Peak learning rate (cosine-annealed to zero over the phase).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip applied before every optimizer step.
    pub grad_clip: f32,
    /// Label smoothing for the cross-entropy loss.
    pub label_smoothing: f32,
    /// Shuffling/augmentation seed.
    pub seed: u64,
    /// Augmentation policy for training batches.
    pub augment: Augment,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Evaluate on the validation set every `eval_every` epochs (the final
    /// epoch is always evaluated). 1 = every epoch.
    pub eval_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 4e-5,
            grad_clip: 10.0,
            label_smoothing: 0.0,
            seed: 0,
            augment: Augment::standard(),
            eval_batch: 64,
            eval_every: 1,
        }
    }
}

/// Per-phase training record.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Validation top-1 after each epoch.
    pub val_acc: Vec<f32>,
}

impl History {
    /// The last recorded validation accuracy.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation was recorded.
    pub fn final_val_acc(&self) -> f32 {
        *self.val_acc.last().expect("no evaluations recorded")
    }

    /// The best recorded validation accuracy.
    pub fn best_val_acc(&self) -> f32 {
        self.val_acc.iter().copied().fold(0.0, f32::max)
    }

    /// Appends another phase's history.
    pub fn extend(&mut self, other: History) {
        self.epoch_loss.extend(other.epoch_loss);
        self.val_acc.extend(other.val_acc);
    }
}

/// Hook points inside the training loop.
pub trait TrainHooks {
    /// Called before each epoch.
    fn on_epoch_start(&mut self, _epoch: usize) {}
    /// Called after each optimizer step.
    fn on_step(&mut self, _step: usize) {}
}

/// The no-op hook set.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl TrainHooks for NoHooks {}

/// Runs a training phase.
///
/// `loss_fn` records the forward pass and returns the scalar loss for one
/// batch; `eval_logits` produces eval-mode logits for a `[n,3,s,s]` image
/// tensor. The learning rate follows a cosine schedule over the whole
/// phase. Returns per-epoch loss and validation accuracy.
pub fn fit(
    params: Vec<Parameter>,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    loss_fn: &mut dyn FnMut(&mut Session, &Batch) -> Value,
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    hooks: &mut dyn TrainHooks,
) -> History {
    let loader = DataLoader::new(train, cfg.batch_size)
        .shuffled(cfg.seed)
        .with_augment(cfg.augment);
    let steps_per_epoch = loader.batches_per_epoch();
    let total_steps = (cfg.epochs * steps_per_epoch).max(1);
    // short linear warmup stabilizes deep fresh giants at the full peak rate
    let sched = CosineAnneal {
        base_lr: cfg.lr,
        min_lr: 0.0,
        total_steps,
        warmup_steps: (total_steps / 20).min(steps_per_epoch),
    };
    let mut opt = Sgd::new(
        params,
        SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            nesterov: false,
        },
    );
    let mut history = History::default();
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        hooks.on_epoch_start(epoch);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for batch in loader.epoch(epoch) {
            let mut s = Session::new(true);
            let loss = loss_fn(&mut s, &batch);
            loss_sum += s.value(loss).item() as f64;
            batches += 1;
            s.backward(loss);
            // release the tape before stepping so the optimizer's COW
            // parameter updates are in-place rather than copy-on-write
            drop(s);
            opt.clip_grad_norm(cfg.grad_clip);
            opt.step(sched.lr(step));
            step += 1;
            hooks.on_step(step);
        }
        history
            .epoch_loss
            .push((loss_sum / batches.max(1) as f64) as f32);
        let last = epoch + 1 == cfg.epochs;
        if last || (epoch + 1) % cfg.eval_every.max(1) == 0 {
            history
                .val_acc
                .push(evaluate(eval_logits, val, cfg.eval_batch));
        }
    }
    history
}

/// Top-1 accuracy of `eval_logits` over a dataset.
pub fn evaluate(
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    data: &SyntheticVision,
    batch: usize,
) -> f32 {
    let loader = DataLoader::new(data, batch);
    let mut acc = Accuracy::new();
    for b in loader.epoch(0) {
        acc.update(&eval_logits(&b.images), &b.labels);
    }
    acc.top1()
}

/// Per-class evaluation: returns top-1 accuracy and the full confusion
/// matrix over a dataset.
pub fn evaluate_confusion(
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    data: &SyntheticVision,
    batch: usize,
) -> (f32, nb_metrics::Confusion) {
    use nb_data::Dataset;
    let loader = DataLoader::new(data, batch);
    let mut acc = Accuracy::new();
    let mut confusion = nb_metrics::Confusion::new(data.num_classes());
    for b in loader.epoch(0) {
        let logits = eval_logits(&b.images);
        acc.update(&logits, &b.labels);
        for (pred, &truth) in logits.argmax_last().into_iter().zip(&b.labels) {
            confusion.record(truth, pred);
        }
    }
    (acc.top1(), confusion)
}

/// The standard cross-entropy step for a classifier module: forward +
/// (optionally smoothed) CE.
pub fn ce_loss_fn<'m, M: Module>(
    model: &'m M,
    smoothing: f32,
) -> impl FnMut(&mut Session, &Batch) -> Value + 'm {
    move |s, batch| {
        let x = s.input(batch.images.clone());
        let logits = model.forward(s, x);
        s.graph
            .softmax_cross_entropy(logits, &batch.labels, smoothing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_data::{Dataset, Scale, Split};
    use nb_models::{mobilenet_v2_tiny, TinyNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_pair() -> (SyntheticVision, SyntheticVision) {
        use nb_data::recipe::{Family, Nuisance};
        let mk = |split| {
            SyntheticVision::new("t", Family::Objects, 3, 12, 24, Nuisance::easy(), 3, split)
        };
        (mk(Split::Train), mk(Split::Val))
    }

    #[test]
    fn fit_reduces_loss_and_reports_history() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(3); // keep the test fast
        cfg_model.head_c = 16;
        let model = TinyNet::new(cfg_model, &mut rng);
        let (train, val) = tiny_pair();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let mut loss_fn = ce_loss_fn(&model, cfg.label_smoothing);
        let history = fit(
            model.parameters(),
            &train,
            &val,
            &cfg,
            &mut loss_fn,
            &|imgs| model.logits_eval(imgs),
            &mut NoHooks,
        );
        assert_eq!(history.epoch_loss.len(), 3);
        assert_eq!(history.val_acc.len(), 3);
        assert!(
            history.epoch_loss[2] < history.epoch_loss[0],
            "loss fell: {:?}",
            history.epoch_loss
        );
        let _ = history.final_val_acc();
    }

    #[test]
    fn hooks_called() {
        struct Counter {
            epochs: usize,
            steps: usize,
        }
        impl TrainHooks for Counter {
            fn on_epoch_start(&mut self, _e: usize) {
                self.epochs += 1;
            }
            fn on_step(&mut self, _s: usize) {
                self.steps += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(2);
        let model = TinyNet::new(cfg_model, &mut rng);
        let (train, val) = tiny_pair();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 12,
            ..TrainConfig::default()
        };
        let mut hooks = Counter {
            epochs: 0,
            steps: 0,
        };
        let mut loss_fn = ce_loss_fn(&model, 0.0);
        fit(
            model.parameters(),
            &train,
            &val,
            &cfg,
            &mut loss_fn,
            &|imgs| model.logits_eval(imgs),
            &mut hooks,
        );
        assert_eq!(hooks.epochs, 2);
        assert_eq!(hooks.steps, 2 * 2); // 24 samples / 12 per batch * 2 epochs
    }

    #[test]
    fn evaluate_on_untrained_model_is_near_chance() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = nb_data::synthetic_imagenet(Scale::Smoke);
        let model = TinyNet::new(mobilenet_v2_tiny(data.train.num_classes()), &mut rng);
        let acc = evaluate(&|imgs| model.logits_eval(imgs), &data.val, 16);
        assert!(acc <= 60.0, "untrained accuracy {acc}");
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::Split;

    #[test]
    fn confusion_totals_match_dataset() {
        let val = SyntheticVision::new(
            "c",
            Family::Objects,
            3,
            10,
            12,
            Nuisance::easy(),
            5,
            Split::Val,
        );
        // a fixed "classifier" that always predicts class 1
        let eval = |imgs: &Tensor| {
            let n = imgs.dims()[0];
            Tensor::from_fn([n, 3], |i| if i % 3 == 1 { 1.0 } else { 0.0 })
        };
        let (acc, confusion) = evaluate_confusion(&eval, &val, 4);
        // class 1 appears in 4 of 12 samples
        assert!((acc - 100.0 * 4.0 / 12.0).abs() < 1e-4);
        let mut total = 0;
        for truth in 0..3 {
            for pred in 0..3 {
                let c = confusion.get(truth, pred);
                if pred != 1 {
                    assert_eq!(c, 0, "everything predicted as 1");
                }
                total += c;
            }
        }
        assert_eq!(total, 12);
        assert_eq!(confusion.recall(1), Some(100.0));
        assert_eq!(confusion.recall(0), Some(0.0));
    }
}
