//! The shared training engine: epoch/step loop, cosine learning-rate
//! schedule, evaluation, the hook points that NetBooster's PLT and the
//! baselines plug into, and the data-parallel trainer.
//!
//! # The data-parallel bit contract
//!
//! [`fit_parallel`] replicates the model onto `workers` shard threads,
//! slices every batch into fixed `grain`-row slices, runs per-slice
//! forward/backward on taped sessions, and combines the slice gradients
//! with [`nb_autograd::tree_reduce`] before one optimizer step on the
//! master parameters. The gradient (and therefore the whole run) is a
//! pure function of `(batch, grain)` — **never** of the worker count:
//! slicing is by `grain`, the reduction order is fixed by slice index,
//! and batch-norm running statistics are replayed onto the master in
//! slice order through the same [`BnUpdate::apply`] the single trainer
//! uses. Consequences the nb-verify `[dp]` suite pins bitwise:
//!
//! - `dp(N) == dp(1)` for every `N` at a fixed grain, and
//! - `dp(anything)` with `grain == batch_size` (one slice per batch)
//!   `== fit()` exactly.

use nb_autograd::{tree_reduce, GradSet, Value};
use nb_data::{Augment, Batch, DataLoader, SyntheticVision};
use nb_metrics::Accuracy;
use nb_nn::layers::BnUpdate;
use nb_nn::{Module, Parameter, Session};
use nb_optim::{CosineAnneal, LrSchedule, Sgd, SgdConfig};
use nb_tensor::Tensor;
use std::collections::HashMap;
use std::sync::{mpsc, Arc};

/// Hyperparameters of one training phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Peak learning rate (cosine-annealed to zero over the phase).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip applied before every optimizer step.
    pub grad_clip: f32,
    /// Label smoothing for the cross-entropy loss.
    pub label_smoothing: f32,
    /// Shuffling/augmentation seed.
    pub seed: u64,
    /// Augmentation policy for training batches.
    pub augment: Augment,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Evaluate on the validation set every `eval_every` epochs (the final
    /// epoch is always evaluated). 1 = every epoch.
    pub eval_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 4e-5,
            grad_clip: 10.0,
            label_smoothing: 0.0,
            seed: 0,
            augment: Augment::standard(),
            eval_batch: 64,
            eval_every: 1,
        }
    }
}

/// Per-phase training record.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Validation top-1 after each epoch.
    pub val_acc: Vec<f32>,
}

impl History {
    /// The last recorded validation accuracy.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation was recorded.
    pub fn final_val_acc(&self) -> f32 {
        *self.val_acc.last().expect("no evaluations recorded")
    }

    /// The best recorded validation accuracy.
    pub fn best_val_acc(&self) -> f32 {
        self.val_acc.iter().copied().fold(0.0, f32::max)
    }

    /// Appends another phase's history.
    pub fn extend(&mut self, other: History) {
        self.epoch_loss.extend(other.epoch_loss);
        self.val_acc.extend(other.val_acc);
    }
}

/// Hook points inside the training loop.
pub trait TrainHooks {
    /// Called before each epoch.
    fn on_epoch_start(&mut self, _epoch: usize) {}
    /// Called after each optimizer step.
    fn on_step(&mut self, _step: usize) {}
}

/// The no-op hook set.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl TrainHooks for NoHooks {}

/// Runs a training phase.
///
/// `loss_fn` records the forward pass and returns the scalar loss for one
/// batch; `eval_logits` produces eval-mode logits for a `[n,3,s,s]` image
/// tensor. The learning rate follows a cosine schedule over the whole
/// phase. Returns per-epoch loss and validation accuracy.
pub fn fit(
    params: Vec<Parameter>,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    loss_fn: &mut dyn FnMut(&mut Session, &Batch) -> Value,
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    hooks: &mut dyn TrainHooks,
) -> History {
    let loader = DataLoader::new(train, cfg.batch_size)
        .shuffled(cfg.seed)
        .with_augment(cfg.augment);
    let steps_per_epoch = loader.batches_per_epoch();
    let total_steps = (cfg.epochs * steps_per_epoch).max(1);
    // short linear warmup stabilizes deep fresh giants at the full peak rate
    let sched = CosineAnneal {
        base_lr: cfg.lr,
        min_lr: 0.0,
        total_steps,
        warmup_steps: (total_steps / 20).min(steps_per_epoch),
    };
    let mut opt = Sgd::new(
        params,
        SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            nesterov: false,
        },
    );
    let mut history = History::default();
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        hooks.on_epoch_start(epoch);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for batch in loader.stream(epoch) {
            let mut s = Session::new(true);
            let loss = loss_fn(&mut s, &batch);
            loss_sum += s.value(loss).item() as f64;
            batches += 1;
            s.backward(loss);
            // release the tape before stepping so the optimizer's COW
            // parameter updates are in-place rather than copy-on-write
            drop(s);
            opt.clip_grad_norm(cfg.grad_clip);
            opt.step(sched.lr(step));
            step += 1;
            hooks.on_step(step);
        }
        history
            .epoch_loss
            .push((loss_sum / batches.max(1) as f64) as f32);
        let last = epoch + 1 == cfg.epochs;
        if last || (epoch + 1) % cfg.eval_every.max(1) == 0 {
            history
                .val_acc
                .push(evaluate(eval_logits, val, cfg.eval_batch));
        }
    }
    history
}

/// One shard's model replica: its parameters in canonical (visit) order
/// plus the loss closure that owns the replica's module tree.
///
/// Built *on* the shard thread by the factory passed to [`fit_parallel`]
/// (parameters are `Rc`-based and cannot cross threads); the replica's
/// initial weights are irrelevant because every step begins with a sync
/// from the master.
pub struct ShardModel {
    /// The replica's parameters, in the same canonical order as the
    /// master's (index `i` here corresponds to master index `i`).
    pub params: Vec<Parameter>,
    /// Records the forward pass for one batch slice and returns the
    /// scalar mean loss over that slice.
    pub loss_fn: SliceLossFn,
}

/// A boxed per-slice loss: records one batch slice's forward pass on the
/// shard's taped session and returns the scalar mean loss.
pub type SliceLossFn = Box<dyn FnMut(&mut Session, &Batch) -> Value>;

impl ShardModel {
    /// The standard classifier replica: cross-entropy over the module's
    /// logits, parameters in visit order.
    pub fn classifier<M: Module + 'static>(model: M, smoothing: f32) -> ShardModel {
        let params = model.parameters();
        ShardModel {
            params,
            loss_fn: Box::new(move |s, batch| {
                let x = s.input(batch.images.clone());
                let logits = model.forward(s, x);
                s.graph
                    .softmax_cross_entropy(logits, &batch.labels, smoothing)
            }),
        }
    }
}

/// Sharding configuration for [`fit_parallel`]. The default (all zeros)
/// is pool-width workers with one slice per batch — the configuration
/// that is bitwise-identical to the sequential [`fit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Shard threads (0 = the worker pool's width). The shards partition
    /// the pool via [`nb_tensor::with_thread_cap`], so kernel parallelism
    /// never oversubscribes it.
    pub workers: usize,
    /// Rows per batch slice (0 = the whole batch as one slice). The grain
    /// — not the worker count — determines the gradient bits; keep it
    /// fixed while varying `workers` and the run is bitwise reproducible.
    pub grain: usize,
}

impl ParallelConfig {
    /// Workers at the pool width, batch split into one slice per worker
    /// (rounded up). Note that tying the grain to the pool width makes the
    /// gradient bits machine-dependent; pass an explicit grain when runs
    /// must reproduce across machines.
    pub fn auto(batch_size: usize) -> Self {
        let workers = nb_tensor::num_threads().max(1);
        ParallelConfig {
            workers,
            grain: batch_size.div_ceil(workers),
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            nb_tensor::num_threads().max(1)
        } else {
            self.workers
        }
    }
}

/// Partitions a worker pool of `width` threads among `workers` shards:
/// shard `s` gets `width / workers`, plus one of the `width % workers`
/// leftovers, never less than 1. When `workers <= width` the caps sum to
/// exactly `width`, so concurrent shard kernels cannot oversubscribe the
/// pool; extra shards beyond `width` all run their kernels inline (cap 1).
pub fn shard_thread_caps(width: usize, workers: usize) -> Vec<usize> {
    assert!(workers > 0, "at least one shard");
    let width = width.max(1);
    (0..workers)
        .map(|s| (width / workers + usize::from(s < width % workers)).max(1))
        .collect()
}

/// A shard's work queue: sync replica weights, or run one batch slice.
enum ShardCmd {
    /// Master parameter values (canonical order) to load into the replica.
    Sync(Arc<Vec<Tensor>>),
    /// Forward/backward one slice and report gradients.
    Run { slice_idx: usize, batch: Batch },
}

/// One slice's contribution, sent back to the reducer.
struct SliceResult {
    slice_idx: usize,
    /// Mean loss over the slice's rows.
    loss: f32,
    /// Per-parameter gradients, canonical order.
    grads: GradSet,
    /// Deferred batch-norm updates as `(mean_idx, var_idx, update)` into
    /// the canonical parameter list, in forward-encounter order.
    bn: Vec<(usize, usize, BnUpdate)>,
}

/// Runs a training phase data-parallel across shard threads.
///
/// `master` holds the authoritative parameters (canonical order);
/// `factory` builds one replica per shard *on the shard's thread* —
/// replica parameter order must match the master's. Each step
/// broadcasts the master weights, slices the batch into `grain`-row
/// slices, fans the slices out round-robin, tree-reduces the slice
/// gradients in fixed order, replays batch-norm statistics in slice
/// order, and takes one optimizer step. See the module docs for the
/// bitwise contract; schedule, hooks, history, and evaluation cadence
/// are identical to [`fit`].
#[allow(clippy::too_many_arguments)]
pub fn fit_parallel<F>(
    master: Vec<Parameter>,
    factory: F,
    train: &SyntheticVision,
    val: &SyntheticVision,
    cfg: &TrainConfig,
    pcfg: &ParallelConfig,
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    hooks: &mut dyn TrainHooks,
) -> History
where
    F: Fn() -> ShardModel + Sync,
{
    let workers = pcfg.effective_workers();
    let caps = shard_thread_caps(nb_tensor::num_threads(), workers);
    let loader = DataLoader::shared(Arc::new(train.clone()), cfg.batch_size)
        .shuffled(cfg.seed)
        .with_augment(cfg.augment);
    let steps_per_epoch = loader.batches_per_epoch();
    let total_steps = (cfg.epochs * steps_per_epoch).max(1);
    let sched = CosineAnneal {
        base_lr: cfg.lr,
        min_lr: 0.0,
        total_steps,
        warmup_steps: (total_steps / 20).min(steps_per_epoch),
    };
    let mut opt = Sgd::new(
        master.clone(),
        SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            nesterov: false,
        },
    );

    std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel::<SliceResult>();
        let mut cmd_txs = Vec::with_capacity(workers);
        for &cap in caps.iter().take(workers) {
            let (tx, rx) = mpsc::channel::<ShardCmd>();
            cmd_txs.push(tx);
            let res_tx = res_tx.clone();
            let factory = &factory;
            scope.spawn(move || {
                nb_tensor::with_thread_cap(cap, || {
                    let mut shard = factory();
                    let index_of: HashMap<usize, usize> = shard
                        .params
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (p.key(), i))
                        .collect();
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            ShardCmd::Sync(values) => {
                                assert_eq!(
                                    values.len(),
                                    shard.params.len(),
                                    "replica parameter count differs from master"
                                );
                                for (p, v) in shard.params.iter().zip(values.iter()) {
                                    p.set_value(v.clone());
                                }
                            }
                            ShardCmd::Run { slice_idx, batch } => {
                                for p in &shard.params {
                                    p.zero_grad();
                                }
                                let mut s = Session::new(true);
                                s.record_bn_updates();
                                let loss = (shard.loss_fn)(&mut s, &batch);
                                let loss_val = s.value(loss).item();
                                s.backward(loss);
                                let bn = s
                                    .take_bn_records()
                                    .into_iter()
                                    .map(|r| {
                                        let mi = *index_of
                                            .get(&r.mean.key())
                                            .expect("BN running mean not among shard params");
                                        let vi = *index_of
                                            .get(&r.var.key())
                                            .expect("BN running var not among shard params");
                                        (mi, vi, r.update)
                                    })
                                    .collect();
                                drop(s);
                                let grads = shard.params.iter().map(|p| p.grad()).collect();
                                if res_tx
                                    .send(SliceResult {
                                        slice_idx,
                                        loss: loss_val,
                                        grads,
                                        bn,
                                    })
                                    .is_err()
                                {
                                    break; // trainer gone
                                }
                            }
                        }
                    }
                });
            });
        }
        drop(res_tx);

        let mut history = History::default();
        let mut step = 0usize;
        for epoch in 0..cfg.epochs {
            hooks.on_epoch_start(epoch);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for batch in loader.stream(epoch) {
                let snapshot: Arc<Vec<Tensor>> =
                    Arc::new(master.iter().map(|p| p.value()).collect());
                for tx in &cmd_txs {
                    tx.send(ShardCmd::Sync(Arc::clone(&snapshot)))
                        .expect("shard thread died");
                }
                let n = batch.len();
                let grain = if pcfg.grain == 0 {
                    n
                } else {
                    pcfg.grain.min(n)
                };
                let num_slices = n.div_ceil(grain);
                let mut weights = Vec::with_capacity(num_slices);
                for s in 0..num_slices {
                    let start = s * grain;
                    let len = (n - start).min(grain);
                    weights.push(len as f32 / n as f32);
                    cmd_txs[s % workers]
                        .send(ShardCmd::Run {
                            slice_idx: s,
                            batch: batch.slice(start, len),
                        })
                        .expect("shard thread died");
                }
                let mut results: Vec<SliceResult> = (0..num_slices)
                    .map(|_| res_rx.recv().expect("shard thread died mid-step"))
                    .collect();
                results.sort_unstable_by_key(|r| r.slice_idx);

                // Replay batch-norm running statistics onto the master in
                // slice order — the same EMA chain a sequential pass over
                // the slices would have produced.
                for r in &results {
                    for (mi, vi, update) in &r.bn {
                        update.apply(&master[*mi], &master[*vi]);
                    }
                }
                // Batch mean loss: exact pass-through for a single slice,
                // row-weighted sum otherwise.
                if num_slices == 1 {
                    loss_sum += results[0].loss as f64;
                } else {
                    for (r, &w) in results.iter().zip(&weights) {
                        loss_sum += w as f64 * r.loss as f64;
                    }
                }
                batches += 1;

                let parts: Vec<(usize, GradSet)> = results
                    .into_iter()
                    .map(|r| (r.slice_idx, r.grads))
                    .collect();
                let reduced = tree_reduce(parts, &weights);
                opt.assign_grads(&reduced);
                opt.clip_grad_norm(cfg.grad_clip);
                opt.step(sched.lr(step));
                step += 1;
                hooks.on_step(step);
            }
            history
                .epoch_loss
                .push((loss_sum / batches.max(1) as f64) as f32);
            let last = epoch + 1 == cfg.epochs;
            if last || (epoch + 1) % cfg.eval_every.max(1) == 0 {
                history
                    .val_acc
                    .push(evaluate(eval_logits, val, cfg.eval_batch));
            }
        }
        drop(cmd_txs); // shard queues close; threads exit at scope join
        history
    })
}

/// Top-1 accuracy of `eval_logits` over a dataset.
pub fn evaluate(
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    data: &SyntheticVision,
    batch: usize,
) -> f32 {
    let loader = DataLoader::new(data, batch);
    let mut acc = Accuracy::new();
    for b in loader.epoch(0) {
        acc.update(&eval_logits(&b.images), &b.labels);
    }
    acc.top1()
}

/// Per-class evaluation: returns top-1 accuracy and the full confusion
/// matrix over a dataset.
pub fn evaluate_confusion(
    eval_logits: &dyn Fn(&Tensor) -> Tensor,
    data: &SyntheticVision,
    batch: usize,
) -> (f32, nb_metrics::Confusion) {
    use nb_data::Dataset;
    let loader = DataLoader::new(data, batch);
    let mut acc = Accuracy::new();
    let mut confusion = nb_metrics::Confusion::new(data.num_classes());
    for b in loader.epoch(0) {
        let logits = eval_logits(&b.images);
        acc.update(&logits, &b.labels);
        for (pred, &truth) in logits.argmax_last().into_iter().zip(&b.labels) {
            confusion.record(truth, pred);
        }
    }
    (acc.top1(), confusion)
}

/// The standard cross-entropy step for a classifier module: forward +
/// (optionally smoothed) CE.
pub fn ce_loss_fn<'m, M: Module>(
    model: &'m M,
    smoothing: f32,
) -> impl FnMut(&mut Session, &Batch) -> Value + 'm {
    move |s, batch| {
        let x = s.input(batch.images.clone());
        let logits = model.forward(s, x);
        s.graph
            .softmax_cross_entropy(logits, &batch.labels, smoothing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_data::{Dataset, Scale, Split};
    use nb_models::{mobilenet_v2_tiny, TinyNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_pair() -> (SyntheticVision, SyntheticVision) {
        use nb_data::recipe::{Family, Nuisance};
        let mk = |split| {
            SyntheticVision::new("t", Family::Objects, 3, 12, 24, Nuisance::easy(), 3, split)
        };
        (mk(Split::Train), mk(Split::Val))
    }

    #[test]
    fn fit_reduces_loss_and_reports_history() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(3); // keep the test fast
        cfg_model.head_c = 16;
        let model = TinyNet::new(cfg_model, &mut rng);
        let (train, val) = tiny_pair();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let mut loss_fn = ce_loss_fn(&model, cfg.label_smoothing);
        let history = fit(
            model.parameters(),
            &train,
            &val,
            &cfg,
            &mut loss_fn,
            &|imgs| model.logits_eval(imgs),
            &mut NoHooks,
        );
        assert_eq!(history.epoch_loss.len(), 3);
        assert_eq!(history.val_acc.len(), 3);
        assert!(
            history.epoch_loss[2] < history.epoch_loss[0],
            "loss fell: {:?}",
            history.epoch_loss
        );
        let _ = history.final_val_acc();
    }

    #[test]
    fn hooks_called() {
        struct Counter {
            epochs: usize,
            steps: usize,
        }
        impl TrainHooks for Counter {
            fn on_epoch_start(&mut self, _e: usize) {
                self.epochs += 1;
            }
            fn on_step(&mut self, _s: usize) {
                self.steps += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(2);
        let model = TinyNet::new(cfg_model, &mut rng);
        let (train, val) = tiny_pair();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 12,
            ..TrainConfig::default()
        };
        let mut hooks = Counter {
            epochs: 0,
            steps: 0,
        };
        let mut loss_fn = ce_loss_fn(&model, 0.0);
        fit(
            model.parameters(),
            &train,
            &val,
            &cfg,
            &mut loss_fn,
            &|imgs| model.logits_eval(imgs),
            &mut hooks,
        );
        assert_eq!(hooks.epochs, 2);
        assert_eq!(hooks.steps, 2 * 2); // 24 samples / 12 per batch * 2 epochs
    }

    #[test]
    fn shard_caps_partition_pool_without_oversubscription() {
        for width in 1..9 {
            for workers in 1..12 {
                let caps = shard_thread_caps(width, workers);
                assert_eq!(caps.len(), workers);
                assert!(caps.iter().all(|&c| c >= 1), "every shard can run");
                if workers <= width {
                    assert_eq!(
                        caps.iter().sum::<usize>(),
                        width,
                        "caps must partition the pool exactly (width {width}, workers {workers})"
                    );
                } else {
                    assert!(
                        caps.iter().all(|&c| c == 1),
                        "oversubscribed shards run inline"
                    );
                }
            }
        }
        // dp(max): workers = pool width never exceeds the pool
        let w = nb_tensor::num_threads();
        let caps = shard_thread_caps(w, w.max(1));
        assert!(caps.iter().sum::<usize>() <= w.max(1));
    }

    /// Builds the tiny truncated model deterministically from a fixed seed
    /// — the factory both the master and every shard replica use.
    fn dp_model() -> TinyNet {
        let mut rng = StdRng::seed_from_u64(40);
        let mut cfg_model = mobilenet_v2_tiny(3);
        cfg_model.blocks.truncate(3);
        cfg_model.head_c = 16;
        TinyNet::new(cfg_model, &mut rng)
    }

    fn dp_final_params(pcfg: &ParallelConfig) -> (Vec<Tensor>, History) {
        let (train, val) = tiny_pair();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let model = dp_model();
        let master = model.parameters();
        let history = fit_parallel(
            master.clone(),
            || ShardModel::classifier(dp_model(), cfg.label_smoothing),
            &train,
            &val,
            &cfg,
            pcfg,
            &|imgs| model.logits_eval(imgs),
            &mut NoHooks,
        );
        (master.iter().map(|p| p.value()).collect(), history)
    }

    fn assert_bitwise(a: &[Tensor], b: &[Tensor], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(u, v)| u.to_bits() == v.to_bits()),
                "{what}: parameter {i} diverged"
            );
        }
    }

    #[test]
    fn dp_single_slice_matches_legacy_fit_bitwise() {
        let (train, val) = tiny_pair();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
            augment: Augment::none(),
            ..TrainConfig::default()
        };
        let legacy_model = dp_model();
        let legacy_params = legacy_model.parameters();
        let mut loss_fn = ce_loss_fn(&legacy_model, cfg.label_smoothing);
        let legacy_hist = fit(
            legacy_params.clone(),
            &train,
            &val,
            &cfg,
            &mut loss_fn,
            &|imgs| legacy_model.logits_eval(imgs),
            &mut NoHooks,
        );
        let legacy: Vec<Tensor> = legacy_params.iter().map(|p| p.value()).collect();

        // grain 0 = whole batch in one slice: must reproduce fit() exactly
        let (dp, dp_hist) = dp_final_params(&ParallelConfig {
            workers: 2,
            grain: 0,
        });
        assert_bitwise(&legacy, &dp, "dp(grain=batch) vs fit()");
        assert_eq!(
            legacy_hist
                .epoch_loss
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            dp_hist
                .epoch_loss
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "epoch losses diverged"
        );
    }

    #[test]
    fn dp_bits_do_not_depend_on_worker_count() {
        let grain = 3; // deliberately misaligned with the batch size of 8
        let (one, h1) = dp_final_params(&ParallelConfig { workers: 1, grain });
        let (two, h2) = dp_final_params(&ParallelConfig { workers: 2, grain });
        let max = nb_tensor::num_threads().max(3);
        let (many, hm) = dp_final_params(&ParallelConfig {
            workers: max,
            grain,
        });
        assert_bitwise(&one, &two, "dp(1) vs dp(2)");
        assert_bitwise(&one, &many, "dp(1) vs dp(max)");
        assert_eq!(h1.epoch_loss[0].to_bits(), h2.epoch_loss[0].to_bits());
        assert_eq!(h1.epoch_loss[0].to_bits(), hm.epoch_loss[0].to_bits());
    }

    #[test]
    fn evaluate_on_untrained_model_is_near_chance() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = nb_data::synthetic_imagenet(Scale::Smoke);
        let model = TinyNet::new(mobilenet_v2_tiny(data.train.num_classes()), &mut rng);
        let acc = evaluate(&|imgs| model.logits_eval(imgs), &data.val, 16);
        assert!(acc <= 60.0, "untrained accuracy {acc}");
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;
    use nb_data::recipe::{Family, Nuisance};
    use nb_data::Split;

    #[test]
    fn confusion_totals_match_dataset() {
        let val = SyntheticVision::new(
            "c",
            Family::Objects,
            3,
            10,
            12,
            Nuisance::easy(),
            5,
            Split::Val,
        );
        // a fixed "classifier" that always predicts class 1
        let eval = |imgs: &Tensor| {
            let n = imgs.dims()[0];
            Tensor::from_fn([n, 3], |i| if i % 3 == 1 { 1.0 } else { 0.0 })
        };
        let (acc, confusion) = evaluate_confusion(&eval, &val, 4);
        // class 1 appears in 4 of 12 samples
        assert!((acc - 100.0 * 4.0 / 12.0).abs() < 1e-4);
        let mut total = 0;
        for truth in 0..3 {
            for pred in 0..3 {
                let c = confusion.get(truth, pred);
                if pred != 1 {
                    assert_eq!(c, 0, "everything predicted as 1");
                }
                total += c;
            }
        }
        assert_eq!(total, 12);
        assert_eq!(confusion.recall(1), Some(100.0));
        assert_eq!(confusion.recall(0), Some(0.0));
    }
}
