//! Step 1 — Network Expansion (paper Sec. III-C).
//!
//! Answers the paper's three questions as configuration:
//!
//! - **Q1 (what block?)** — [`BlockKind`]: inverted residual (default),
//!   basic, or bottleneck, for the Table IV ablation;
//! - **Q2 (where?)** — [`Placement`]: uniform over the network (default),
//!   or first/middle/last for the Table V ablation;
//! - **Q3 (what ratio?)** — `ratio` (default 6), for Table VI.
//!
//! Expansion replaces the *first pointwise convolution* of each selected
//! inverted-residual block with a multi-layer [`InsertedBlock`] whose
//! receptive field matches the original 1x1 conv when the inserted block is
//! an inverted residual (depthwise kernel = 1). Basic/bottleneck blocks use
//! 3x3 convolutions and therefore violate structural consistency — the
//! paper's stated reason for rejecting them; they remain implemented so the
//! ablation runs.

use nb_models::{InsertedBlock, InsertedConv, InsertedUnit, PwSlot, TinyNet};
use nb_nn::layers::{ActKind, Activation, BatchNorm2d, Conv2d, DepthwiseConv2d, Slope};
use nb_tensor::ConvGeometry;
use rand::Rng;

/// Q1: the kind of block substituted for the pointwise conv.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockKind {
    /// MobileNetV2 inverted residual with a 1x1 depthwise middle layer
    /// (receptive-field preserving; the paper's choice).
    #[default]
    InvertedResidual,
    /// Two 3x3 convolutions (ResNet basic block shape).
    Basic,
    /// 1x1 reduce, 3x3, 1x1 expand (ResNet bottleneck shape).
    Bottleneck,
}

/// Q2: which expandable blocks to expand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Uniformly spread `fraction` of the expandable blocks over the
    /// network (the paper's choice; `fraction = 0.5` by default).
    Uniform {
        /// Fraction of expandable blocks to expand, in `(0, 1]`.
        fraction: f32,
    },
    /// The first `n` expandable blocks.
    First {
        /// Number of blocks.
        n: usize,
    },
    /// `n` consecutive expandable blocks centered in the network.
    Middle {
        /// Number of blocks.
        n: usize,
    },
    /// The last `n` expandable blocks.
    Last {
        /// Number of blocks.
        n: usize,
    },
}

impl Default for Placement {
    fn default() -> Self {
        Placement::Uniform { fraction: 0.5 }
    }
}

/// The full expansion configuration (Q1 + Q2 + Q3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExpansionPlan {
    /// Q1: block kind.
    pub kind: BlockKind,
    /// Q2: placement.
    pub placement: Placement,
    /// Q3: expansion ratio of the inserted block (paper default 6; ignored
    /// by `Basic`, which has no hidden widening).
    pub ratio: usize,
}

impl ExpansionPlan {
    /// The paper's default: inverted residual blocks, uniform 50%, ratio 6.
    pub fn paper_default() -> Self {
        ExpansionPlan {
            kind: BlockKind::InvertedResidual,
            placement: Placement::default(),
            ratio: 6,
        }
    }

    /// Selects the block indices to expand from the model's expandable set.
    pub fn select_indices(&self, expandable: &[usize]) -> Vec<usize> {
        let n = expandable.len();
        if n == 0 {
            return Vec::new();
        }
        match self.placement {
            Placement::Uniform { fraction } => {
                let count = ((n as f32 * fraction).round() as usize).clamp(1, n);
                // evenly spaced positions over the expandable list
                (0..count)
                    .map(|i| expandable[i * n / count + (n / count) / 2 % n.max(1)])
                    .map(|v| v.min(*expandable.last().expect("non-empty")))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect()
            }
            Placement::First { n: k } => expandable.iter().copied().take(k).collect(),
            Placement::Middle { n: k } => {
                let k = k.min(n);
                let start = (n - k) / 2;
                expandable[start..start + k].to_vec()
            }
            Placement::Last { n: k } => {
                let k = k.min(n);
                expandable[n - k..].to_vec()
            }
        }
    }
}

/// Handle returned by [`expand`]: which blocks were expanded and the decay
/// slopes PLT must drive.
#[derive(Debug, Clone, Default)]
pub struct ExpansionHandle {
    /// Indices (into `model.blocks`) of expanded blocks.
    pub expanded_blocks: Vec<usize>,
    /// Every decayable slope inside the inserted blocks.
    pub slopes: Vec<Slope>,
}

fn unit(conv: InsertedConv, channels: usize, act: Option<Slope>) -> InsertedUnit {
    InsertedUnit {
        conv,
        bn: BatchNorm2d::new(channels),
        act: act.map(|s| Activation::with_slope(ActKind::Relu6, s)),
    }
}

/// Builds the inserted block replacing a `in_c -> out_c` pointwise conv.
pub fn build_inserted_block(
    kind: BlockKind,
    in_c: usize,
    out_c: usize,
    ratio: usize,
    rng: &mut impl Rng,
) -> InsertedBlock {
    let pw = ConvGeometry::pointwise();
    let k3 = ConvGeometry::same(3, 1);
    let mut slopes = Vec::new();
    let mut slope = || {
        let s = Slope::new();
        slopes.push(s.clone());
        s
    };
    let units = match kind {
        BlockKind::InvertedResidual => {
            let hidden = in_c * ratio.max(1);
            vec![
                unit(
                    InsertedConv::Dense(Conv2d::new(in_c, hidden, pw, false, rng)),
                    hidden,
                    Some(slope()),
                ),
                unit(
                    InsertedConv::Depthwise(DepthwiseConv2d::new(hidden, pw, false, rng)),
                    hidden,
                    Some(slope()),
                ),
                unit(
                    InsertedConv::Dense(Conv2d::new(hidden, out_c, pw, false, rng)),
                    out_c,
                    None,
                ),
            ]
        }
        BlockKind::Basic => vec![
            unit(
                InsertedConv::Dense(Conv2d::new(in_c, out_c, k3, false, rng)),
                out_c,
                Some(slope()),
            ),
            unit(
                InsertedConv::Dense(Conv2d::new(out_c, out_c, k3, false, rng)),
                out_c,
                None,
            ),
        ],
        BlockKind::Bottleneck => {
            let mid = (out_c / 4).max(4);
            vec![
                unit(
                    InsertedConv::Dense(Conv2d::new(in_c, mid, pw, false, rng)),
                    mid,
                    Some(slope()),
                ),
                unit(
                    InsertedConv::Dense(Conv2d::new(mid, mid, k3, false, rng)),
                    mid,
                    Some(slope()),
                ),
                unit(
                    InsertedConv::Dense(Conv2d::new(mid, out_c, pw, false, rng)),
                    out_c,
                    None,
                ),
            ]
        }
    };
    InsertedBlock {
        units,
        residual: in_c == out_c,
    }
}

/// Applies the expansion plan to a model in place (paper Step 1), turning
/// it into the "deep giant". Returns the handle PLT needs.
///
/// # Panics
///
/// Panics if a selected block is already expanded.
pub fn expand(model: &mut TinyNet, plan: &ExpansionPlan, rng: &mut impl Rng) -> ExpansionHandle {
    let expandable = model.expandable_block_indices();
    let selected = plan.select_indices(&expandable);
    let mut handle = ExpansionHandle::default();
    for &bi in &selected {
        let block = &mut model.blocks[bi];
        let slot = block.expand.as_mut().expect("selected block has a slot");
        let (in_c, out_c) = (slot.in_channels(), slot.out_channels());
        assert!(!slot.is_expanded(), "block {bi} already expanded");
        let inserted = build_inserted_block(plan.kind, in_c, out_c, plan.ratio, rng);
        handle.slopes.extend(inserted.slopes());
        *slot = PwSlot::Expanded(inserted);
        handle.expanded_blocks.push(bi);
    }
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_models::mobilenet_v2_tiny;
    use nb_nn::{Module, Session};
    use nb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_selects_half_spread_out() {
        let plan = ExpansionPlan::paper_default();
        let expandable: Vec<usize> = (1..=8).collect();
        let sel = plan.select_indices(&expandable);
        assert_eq!(sel.len(), 4);
        // spread: not all in the first half
        assert!(sel.iter().any(|&i| i > 4));
        assert!(sel.iter().any(|&i| i <= 4));
    }

    #[test]
    fn placement_variants() {
        let expandable: Vec<usize> = (1..=8).collect();
        let mk = |placement| ExpansionPlan {
            placement,
            ..ExpansionPlan::paper_default()
        };
        assert_eq!(
            mk(Placement::First { n: 3 }).select_indices(&expandable),
            vec![1, 2, 3]
        );
        assert_eq!(
            mk(Placement::Last { n: 3 }).select_indices(&expandable),
            vec![6, 7, 8]
        );
        let mid = mk(Placement::Middle { n: 4 }).select_indices(&expandable);
        assert_eq!(mid, vec![3, 4, 5, 6]);
    }

    #[test]
    fn empty_expandable_set() {
        let plan = ExpansionPlan::paper_default();
        assert!(plan.select_indices(&[]).is_empty());
    }

    #[test]
    fn expand_replaces_slots_and_collects_slopes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = TinyNet::new(mobilenet_v2_tiny(10), &mut rng);
        let handle = expand(&mut net, &ExpansionPlan::paper_default(), &mut rng);
        assert!(!handle.expanded_blocks.is_empty());
        assert_eq!(net.expanded_count(), handle.expanded_blocks.len());
        // inverted residual inserts 2 decayable activations per block
        assert_eq!(handle.slopes.len(), 2 * handle.expanded_blocks.len());
        assert!(handle.slopes.iter().all(|s| s.get() == 0.0));
    }

    #[test]
    fn expanded_model_forward_works_and_profile_grows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = TinyNet::new(mobilenet_v2_tiny(6), &mut rng);
        let before = net.profile(32);
        expand(&mut net, &ExpansionPlan::paper_default(), &mut rng);
        let after = net.profile(32);
        assert!(after.flops > before.flops, "giant costs more");
        assert!(after.params > before.params);
        let mut s = Session::new(false);
        let x = s.input(Tensor::randn([1, 3, 32, 32], &mut rng));
        let y = net.forward(&mut s, x);
        assert_eq!(s.value(y).dims(), &[1, 6]);
    }

    #[test]
    fn inserted_block_kinds_have_expected_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let ir = build_inserted_block(BlockKind::InvertedResidual, 8, 16, 6, &mut rng);
        assert_eq!(ir.units.len(), 3);
        assert_eq!(ir.in_channels(), 8);
        assert_eq!(ir.out_channels(), 16);
        assert!(!ir.residual);
        let basic = build_inserted_block(BlockKind::Basic, 8, 16, 6, &mut rng);
        assert_eq!(basic.units.len(), 2);
        let bott = build_inserted_block(BlockKind::Bottleneck, 8, 16, 6, &mut rng);
        assert_eq!(bott.units.len(), 3);
        // residual only when channels match
        let res = build_inserted_block(BlockKind::InvertedResidual, 8, 8, 6, &mut rng);
        assert!(res.residual);
    }

    #[test]
    fn ratio_scales_hidden_width() {
        let mut rng = StdRng::seed_from_u64(3);
        for ratio in [2usize, 4, 6, 8] {
            let b = build_inserted_block(BlockKind::InvertedResidual, 8, 16, ratio, &mut rng);
            match &b.units[0].conv {
                InsertedConv::Dense(c) => assert_eq!(c.out_channels(), 8 * ratio),
                _ => panic!("first unit dense"),
            }
        }
    }

    #[test]
    fn expanded_params_trainable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = TinyNet::new(mobilenet_v2_tiny(4), &mut rng);
        let base_params = net.param_count();
        expand(&mut net, &ExpansionPlan::paper_default(), &mut rng);
        assert!(net.param_count() > base_params);
        let mut s = Session::new(true);
        let x = s.input(Tensor::randn([2, 3, 16, 16], &mut rng));
        let y = net.forward(&mut s, x);
        let loss = s.graph.softmax_cross_entropy(y, &[0, 1], 0.0);
        s.backward(loss);
        // every inserted unit's conv received gradient
        for bi in net
            .blocks
            .iter()
            .filter(|b| matches!(b.expand, Some(PwSlot::Expanded(_))))
        {
            if let Some(PwSlot::Expanded(ib)) = &bi.expand {
                for u in &ib.units {
                    let g = match &u.conv {
                        InsertedConv::Dense(c) => c.weight().grad().abs_sum(),
                        InsertedConv::Depthwise(c) => c.weight().grad().abs_sum(),
                    };
                    assert!(g > 0.0, "inserted conv got gradient");
                }
            }
        }
    }
}
