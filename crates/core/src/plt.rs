//! Step 2 — Progressive Linearization Tuning (paper Sec. III-D).
//!
//! PLT sweeps the decay slope `alpha` of every activation inside the
//! inserted blocks from 0 to 1, uniformly per iteration, over `E_d` epochs
//! (paper: `E_d = 40` on ImageNet, 20% of tuning epochs downstream). Once
//! every slope reaches 1 the inserted blocks are affine and contraction is
//! exact.

use nb_nn::layers::Slope;

/// The shape of the decay trajectory `alpha(progress)`.
///
/// The paper increases `alpha` uniformly per iteration ([`Linear`]
/// (DecayCurve::Linear)); the other curves are reproduction extensions
/// ablated by the `ablation_plt` experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecayCurve {
    /// `alpha = p` — the paper's uniform per-iteration increase.
    #[default]
    Linear,
    /// `alpha = (1 - cos(pi p)) / 2` — slow start and finish.
    Cosine,
    /// `alpha = p^2` — keeps non-linearity longer, decays late.
    Quadratic,
    /// `alpha = ceil(4p)/4` — four abrupt plateaus.
    Staircase,
}

impl DecayCurve {
    /// Maps progress `p` in `[0, 1]` to the decay value `alpha`.
    pub fn alpha(self, p: f32) -> f32 {
        let p = p.clamp(0.0, 1.0);
        match self {
            DecayCurve::Linear => p,
            DecayCurve::Cosine => 0.5 * (1.0 - (std::f32::consts::PI * p).cos()),
            DecayCurve::Quadratic => p * p,
            DecayCurve::Staircase => {
                if p == 0.0 {
                    0.0
                } else {
                    (4.0 * p).ceil() / 4.0
                }
            }
        }
    }
}

/// Drives a set of slopes from 0 to 1 over a fixed number of optimization
/// steps, following a [`DecayCurve`] (linear by default, as in the paper).
#[derive(Debug)]
pub struct PltDriver {
    slopes: Vec<Slope>,
    total_steps: usize,
    step: usize,
    curve: DecayCurve,
}

impl PltDriver {
    /// A driver that reaches `alpha = 1` after `total_steps` calls to
    /// [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if `total_steps == 0`.
    pub fn new(slopes: Vec<Slope>, total_steps: usize) -> Self {
        assert!(total_steps > 0, "PLT needs at least one step");
        PltDriver {
            slopes,
            total_steps,
            step: 0,
            curve: DecayCurve::Linear,
        }
    }

    /// Replaces the decay curve (builder style).
    #[must_use]
    pub fn with_curve(mut self, curve: DecayCurve) -> Self {
        self.curve = curve;
        self
    }

    /// The active decay curve.
    pub fn curve(&self) -> DecayCurve {
        self.curve
    }

    /// Convenience: a driver spanning `e_d` epochs of `steps_per_epoch`.
    ///
    /// # Panics
    ///
    /// Panics if the product is zero.
    pub fn over_epochs(slopes: Vec<Slope>, e_d: usize, steps_per_epoch: usize) -> Self {
        Self::new(slopes, e_d * steps_per_epoch)
    }

    /// Current decay value.
    pub fn alpha(&self) -> f32 {
        self.curve
            .alpha((self.step as f32 / self.total_steps as f32).min(1.0))
    }

    /// Advances one optimization step, updating every slope (paper Eq. 2:
    /// alpha increases uniformly per iteration).
    pub fn step(&mut self) {
        self.step = (self.step + 1).min(self.total_steps);
        let a = self.alpha();
        for s in &self.slopes {
            s.set(a);
        }
    }

    /// True once every slope has decayed to the identity.
    pub fn is_done(&self) -> bool {
        self.step >= self.total_steps
    }

    /// Immediately forces every slope to 1 (used by tests and by
    /// contraction safety checks).
    pub fn finish(&mut self) {
        self.step = self.total_steps;
        for s in &self.slopes {
            s.set(1.0);
        }
    }

    /// Number of slopes under control.
    pub fn slope_count(&self) -> usize {
        self.slopes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ramp() {
        let slopes = vec![Slope::new(), Slope::new()];
        let mut d = PltDriver::new(slopes.clone(), 4);
        assert_eq!(d.alpha(), 0.0);
        d.step();
        assert!((slopes[0].get() - 0.25).abs() < 1e-6);
        d.step();
        d.step();
        assert!((slopes[1].get() - 0.75).abs() < 1e-6);
        assert!(!d.is_done());
        d.step();
        assert!(d.is_done());
        assert_eq!(slopes[0].get(), 1.0);
    }

    #[test]
    fn step_past_end_clamps() {
        let s = Slope::new();
        let mut d = PltDriver::new(vec![s.clone()], 2);
        for _ in 0..10 {
            d.step();
        }
        assert_eq!(s.get(), 1.0);
        assert_eq!(d.alpha(), 1.0);
    }

    #[test]
    fn finish_forces_linearization() {
        let s = Slope::new();
        let mut d = PltDriver::over_epochs(vec![s.clone()], 5, 10);
        assert_eq!(d.slope_count(), 1);
        d.finish();
        assert!(d.is_done());
        assert!(s.is_linearized());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        PltDriver::new(vec![], 0);
    }

    #[test]
    fn curves_share_endpoints_and_stay_bounded() {
        for curve in [
            DecayCurve::Linear,
            DecayCurve::Cosine,
            DecayCurve::Quadratic,
            DecayCurve::Staircase,
        ] {
            assert_eq!(curve.alpha(0.0), 0.0, "{curve:?} start");
            assert!((curve.alpha(1.0) - 1.0).abs() < 1e-6, "{curve:?} end");
            let mut prev = 0.0;
            for i in 0..=20 {
                let a = curve.alpha(i as f32 / 20.0);
                assert!((0.0..=1.0).contains(&a), "{curve:?} bounded");
                assert!(a >= prev - 1e-6, "{curve:?} monotone");
                prev = a;
            }
        }
    }

    #[test]
    fn cosine_curve_drives_slopes() {
        let s = Slope::new();
        let mut d = PltDriver::new(vec![s.clone()], 2).with_curve(DecayCurve::Cosine);
        assert_eq!(d.curve(), DecayCurve::Cosine);
        d.step();
        assert!((s.get() - 0.5).abs() < 1e-6); // cos curve midpoint
        d.step();
        assert!(s.is_linearized());
    }

    #[test]
    fn staircase_has_plateaus() {
        let c = DecayCurve::Staircase;
        assert_eq!(c.alpha(0.1), 0.25);
        assert_eq!(c.alpha(0.25), 0.25);
        assert_eq!(c.alpha(0.26), 0.5);
        assert_eq!(c.alpha(0.9), 1.0);
    }
}
