//! Property-based tests of the expansion planner (paper Q1/Q2/Q3) over
//! arbitrary network depths and plan settings.

use nb_models::{mobilenet_v2_tiny, PwSlot, TinyNet};
use nb_nn::Module;
use netbooster_core::{expand, BlockKind, ExpansionPlan, Placement};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform selection picks ~fraction of the expandable blocks, covers
    /// both halves of the network, and never duplicates.
    #[test]
    fn uniform_selection_properties(n in 2usize..40, fraction in 0.1f32..1.0) {
        let expandable: Vec<usize> = (0..n).collect();
        let plan = ExpansionPlan {
            placement: Placement::Uniform { fraction },
            ..ExpansionPlan::paper_default()
        };
        let sel = plan.select_indices(&expandable);
        prop_assert!(!sel.is_empty());
        prop_assert!(sel.len() <= n);
        // no duplicates, all in range
        let mut dedup = sel.clone();
        dedup.dedup();
        prop_assert_eq!(&dedup, &sel);
        prop_assert!(sel.iter().all(|i| *i < n));
        // roughly the requested fraction (within rounding slack)
        let want = (n as f32 * fraction).round() as usize;
        prop_assert!(sel.len() as isize - want as isize <= 1);
        // spread: when selecting at least 2 from >= 4 blocks, touch both halves
        if sel.len() >= 2 && n >= 4 {
            prop_assert!(sel.iter().any(|&i| i < n / 2));
            prop_assert!(sel.iter().any(|&i| i >= n / 2));
        }
    }

    /// First/Middle/Last placements return contiguous runs of the right
    /// length from the right region.
    #[test]
    fn contiguous_placements(n in 1usize..30, k in 1usize..30) {
        let expandable: Vec<usize> = (10..10 + n).collect();
        let k_eff = k.min(n);
        for placement in [Placement::First { n: k }, Placement::Middle { n: k }, Placement::Last { n: k }] {
            let plan = ExpansionPlan { placement, ..ExpansionPlan::paper_default() };
            let sel = plan.select_indices(&expandable);
            prop_assert_eq!(sel.len(), k_eff, "placement {:?}", placement);
            for w in sel.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1, "contiguous {:?}", placement);
            }
        }
        let first = ExpansionPlan { placement: Placement::First { n: k }, ..ExpansionPlan::paper_default() }
            .select_indices(&expandable);
        prop_assert_eq!(first[0], 10);
        let last = ExpansionPlan { placement: Placement::Last { n: k }, ..ExpansionPlan::paper_default() }
            .select_indices(&expandable);
        prop_assert_eq!(*last.last().unwrap(), 10 + n - 1);
    }

    /// Expansion then structural inspection: exactly the selected blocks are
    /// expanded, channel interfaces are preserved, and the giant is strictly
    /// bigger.
    #[test]
    fn expansion_structural_invariants(
        kind_idx in 0usize..3,
        ratio in 1usize..7,
        fraction in 0.2f32..1.0,
        seed in 0u64..500,
    ) {
        let kind = [BlockKind::InvertedResidual, BlockKind::Basic, BlockKind::Bottleneck][kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = TinyNet::new(mobilenet_v2_tiny(6), &mut rng);
        let before: Vec<(usize, usize)> = net
            .blocks
            .iter()
            .filter_map(|b| b.expand.as_ref().map(|s| (s.in_channels(), s.out_channels())))
            .collect();
        let base_params = net.param_count();
        let plan = ExpansionPlan { kind, ratio, placement: Placement::Uniform { fraction } };
        let handle = expand(&mut net, &plan, &mut rng);
        prop_assert_eq!(net.expanded_count(), handle.expanded_blocks.len());
        // channel interfaces unchanged
        let after: Vec<(usize, usize)> = net
            .blocks
            .iter()
            .filter_map(|b| b.expand.as_ref().map(|s| (s.in_channels(), s.out_channels())))
            .collect();
        prop_assert_eq!(before, after);
        prop_assert!(net.param_count() > base_params);
        // every expanded block is linearizable: slopes exist for every
        // decayable activation and start at zero
        prop_assert!(handle.slopes.iter().all(|s| s.get() == 0.0));
        for &bi in &handle.expanded_blocks {
            if let Some(PwSlot::Expanded(ib)) = &net.blocks[bi].expand {
                prop_assert!(!ib.is_linearized());
            } else {
                prop_assert!(false, "block {bi} not expanded");
            }
        }
        // driving the slopes linearizes everything
        for s in &handle.slopes {
            s.set(1.0);
        }
        for &bi in &handle.expanded_blocks {
            if let Some(PwSlot::Expanded(ib)) = &net.blocks[bi].expand {
                prop_assert!(ib.is_linearized());
            }
        }
    }
}
