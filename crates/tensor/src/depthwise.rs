//! Depthwise convolution forward microkernels: f32 AVX2 row-strip kernels
//! and the int8 quantized depthwise kernel.
//!
//! Depthwise convolution has no GEMM reduction to amortize packing over —
//! each output channel reads one input channel through a tiny `kh x kw`
//! stencil — so the implicit-GEMM machinery in [`crate::gemm`] never pays
//! for itself here. Instead this module vectorizes along the output *row*:
//! eight output columns per AVX2 register, with every kernel tap broadcast
//! once per (channel, row-strip) call.
//!
//! ## Bitwise contract
//!
//! The f32 vector path accumulates taps in exactly the scalar reference
//! order — `bias` first, then `(ki, kj)` row-major with out-of-bounds rows
//! skipped — using separate multiply and add (never FMA, which the scalar
//! path would not contract). Eight lanes are eight independent output
//! columns, so the SIMD kernel is **bitwise identical** to the scalar
//! reference, and both are invariant to thread width and to how callers
//! split rows into strips (the strip API recomputes each output row from
//! its input window; nothing carries across rows).
//!
//! The quantized path accumulates `u8 x i8` products in exact i32 integer
//! arithmetic with out-of-bounds taps substituted by [`Q_ZERO`] (the
//! quantized value of a padding zero), corrected by the exact zero-point
//! term `Q_ZERO * kersum`, then dequantized with one multiply and one add —
//! the identical f32 expression scalar and SIMD, so it is bitwise invariant
//! across schedules, widths, and strip splits like [`crate::qgemm`].
//!
//! ## Selection
//!
//! Fixed-size fast paths exist for the geometries tiny inverted-residual
//! models actually use — 3x3 and 5x5 at stride 1 and 2 — behind the
//! shape-keyed [`crate::selector`] (`Op::Depthwise` / `Op::QDepthwise`):
//! `Direct` runs the scalar reference, any `Blocked` schedule runs the SIMD
//! path (the block geometry is ignored; there is nothing to block). Since
//! the two produce identical bits, autotuning is purely a speed decision.

use crate::eltwise::Epilogue;
use crate::qgemm::{QW_MAX, Q_ZERO};
use crate::selector::{self, Schedule, Variant};
use crate::threadpool::{self, SharedMut};
use crate::ConvGeometry;

/// Scalar reference: output columns `[j0, j1)` of absolute output row `oi`
/// for one channel. `plane` holds input rows `[h0, h0 + plane.len()/w)` of
/// the logical `[h, w]` channel plane (`h0 = 0` for a full plane; fused
/// strip execution passes partial windows). Taps run `(ki, kj)` row-major
/// from a `bv` (bias) accumulator, skipping out-of-bounds taps — this
/// ordering is the bit contract every other path in the module reproduces.
#[allow(clippy::too_many_arguments)]
fn dw_cols_scalar(
    plane: &[f32],
    h0: usize,
    h: usize,
    w: usize,
    ker: &[f32],
    geom: ConvGeometry,
    bv: f32,
    oi: usize,
    j0: usize,
    j1: usize,
    out_row: &mut [f32],
) {
    for (oj, o) in out_row.iter_mut().enumerate().take(j1).skip(j0) {
        let mut acc = bv;
        for ki in 0..geom.kh {
            let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
            if ii < 0 || ii >= h as isize {
                continue;
            }
            let row = &plane[(ii as usize - h0) * w..(ii as usize - h0 + 1) * w];
            for kj in 0..geom.kw {
                let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                if jj < 0 || jj >= w as isize {
                    continue;
                }
                acc += row[jj as usize] * ker[ki * geom.kw + kj];
            }
        }
        *o = acc;
    }
}

/// First output column whose taps are all horizontally in bounds.
fn interior_lo(pw: usize, sw: usize, wo: usize) -> usize {
    pw.div_ceil(sw).min(wo)
}

/// One past the last output column whose taps are all horizontally in
/// bounds (clamped to `[lo, wo]`).
fn interior_hi(w: usize, pw: usize, kw: usize, sw: usize, wo: usize, lo: usize) -> usize {
    let hi = if w + pw >= kw {
        (w + pw - kw) / sw + 1
    } else {
        0
    };
    hi.min(wo).max(lo)
}

fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Computes f32 depthwise output rows `[o0, o1)` for one channel.
///
/// `plane` holds input rows `[h0, h0 + plane.len()/w)` of the logical
/// `[h, w]` channel plane; callers must supply every row the requested
/// output rows read (full planes pass `h0 = 0`). `out` is the
/// `(o1 - o0) * wo` destination. `simd` selects the AVX2 fast path when the
/// geometry has one (3x3 / 5x5, stride 1 / 2); the result is bitwise
/// identical either way — see the module docs.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn dw_channel_rows(
    plane: &[f32],
    h0: usize,
    h: usize,
    w: usize,
    ker: &[f32],
    bv: f32,
    geom: ConvGeometry,
    wo: usize,
    o0: usize,
    o1: usize,
    out: &mut [f32],
    simd: bool,
) {
    assert_eq!(
        ker.len(),
        geom.kh * geom.kw,
        "dw_channel_rows kernel length"
    );
    assert_eq!(out.len(), (o1 - o0) * wo, "dw_channel_rows output length");
    assert_eq!(plane.len() % w, 0, "dw_channel_rows plane length");
    #[cfg(target_arch = "x86_64")]
    if simd && have_avx2() {
        // Safety: AVX2 presence checked at runtime just above.
        let done = unsafe {
            match (geom.kh, geom.kw, geom.sw) {
                (3, 3, 1) => {
                    x86::dw_rows_avx2::<3, 3, 1>(plane, h0, h, w, ker, bv, geom, wo, o0, o1, out);
                    true
                }
                (3, 3, 2) => {
                    x86::dw_rows_avx2::<3, 3, 2>(plane, h0, h, w, ker, bv, geom, wo, o0, o1, out);
                    true
                }
                (5, 5, 1) => {
                    x86::dw_rows_avx2::<5, 5, 1>(plane, h0, h, w, ker, bv, geom, wo, o0, o1, out);
                    true
                }
                (5, 5, 2) => {
                    x86::dw_rows_avx2::<5, 5, 2>(plane, h0, h, w, ker, bv, geom, wo, o0, o1, out);
                    true
                }
                _ => false,
            }
        };
        if done {
            return;
        }
    }
    let _ = simd;
    for oi in o0..o1 {
        let out_row = &mut out[(oi - o0) * wo..(oi - o0 + 1) * wo];
        dw_cols_scalar(plane, h0, h, w, ker, geom, bv, oi, 0, wo, out_row);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Row-strip f32 depthwise kernel for a fixed `KH x KW` kernel and
    /// horizontal stride `SW` (1 or 2). Border columns (any horizontal tap
    /// out of bounds) fall back to the scalar reference; interior columns
    /// run eight at a time with each tap broadcast once. Accumulation is
    /// `mul` + `add` per tap in scalar order — never FMA — so lanes carry
    /// exactly the scalar bits.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn dw_rows_avx2<const KH: usize, const KW: usize, const SW: usize>(
        plane: &[f32],
        h0: usize,
        h: usize,
        w: usize,
        ker: &[f32],
        bv: f32,
        geom: ConvGeometry,
        wo: usize,
        o0: usize,
        o1: usize,
        out: &mut [f32],
    ) {
        let (sh, ph, pw) = (geom.sh, geom.ph, geom.pw);
        let mut kv = [[_mm256_setzero_ps(); KW]; KH];
        for (ki, kr) in kv.iter_mut().enumerate() {
            for (kj, t) in kr.iter_mut().enumerate() {
                *t = _mm256_set1_ps(ker[ki * KW + kj]);
            }
        }
        let bvv = _mm256_set1_ps(bv);
        let int_lo = interior_lo(pw, SW, wo);
        let int_hi = interior_hi(w, pw, KW, SW, wo, int_lo);
        // Stride-2 reads 16 consecutive floats per tap (even lanes kept), so
        // the last vector group additionally needs load headroom inside the
        // input row: last touched index `oj*2 + KW - 1 - pw + 15 <= w - 1`.
        let vec_ok =
            |oj: usize| -> bool { oj + 8 <= int_hi && (SW == 1 || oj * 2 + KW + 15 <= w + pw) };
        for oi in o0..o1 {
            let out_row = &mut out[(oi - o0) * wo..(oi - o0 + 1) * wo];
            dw_cols_scalar(plane, h0, h, w, ker, geom, bv, oi, 0, int_lo, out_row);
            let mut oj = int_lo;
            while vec_ok(oj) {
                let mut acc = bvv;
                for (ki, kr) in kv.iter().enumerate() {
                    let ii = (oi * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let row = &plane[(ii as usize - h0) * w..(ii as usize - h0 + 1) * w];
                    for (kj, &kt) in kr.iter().enumerate() {
                        let base = oj * SW + kj - pw;
                        let xv = if SW == 1 {
                            _mm256_loadu_ps(row.as_ptr().add(base))
                        } else {
                            // Even-lane deinterleave of 16 consecutive
                            // floats: [x0,x2,..,x14] for stride 2.
                            let a = _mm256_loadu_ps(row.as_ptr().add(base));
                            let b = _mm256_loadu_ps(row.as_ptr().add(base + 8));
                            let s = _mm256_shuffle_ps(a, b, 0b10_00_10_00);
                            _mm256_permutevar8x32_ps(s, _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7))
                        };
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(xv, kt));
                    }
                }
                _mm256_storeu_ps(out_row.as_mut_ptr().add(oj), acc);
                oj += 8;
            }
            dw_cols_scalar(plane, h0, h, w, ker, geom, bv, oi, oj, wo, out_row);
        }
    }

    /// Quantized twin of [`dw_rows_avx2`]: `u8 x i8` taps accumulated in
    /// exact i32 lanes. Out-of-bounds kernel *rows* contribute
    /// `Q_ZERO * rowsum` to the accumulator init (integer-exact equivalent
    /// of per-tap substitution); horizontal out-of-bounds never occurs for
    /// interior columns. Dequantization is the same
    /// `(acc - corr) * scale + base` expression the scalar path runs.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn qdw_rows_avx2<const KH: usize, const KW: usize, const SW: usize>(
        qplane: &[u8],
        h0: usize,
        h: usize,
        w: usize,
        qk: &[i8],
        rowsums: &[i32],
        corr: i32,
        scale: f32,
        base: f32,
        geom: ConvGeometry,
        wo: usize,
        o0: usize,
        o1: usize,
        out: &mut [f32],
    ) {
        let (sh, ph, pw) = (geom.sh, geom.ph, geom.pw);
        let mut kv = [[_mm256_setzero_si256(); KW]; KH];
        for (ki, kr) in kv.iter_mut().enumerate() {
            for (kj, t) in kr.iter_mut().enumerate() {
                *t = _mm256_set1_epi32(qk[ki * KW + kj] as i32);
            }
        }
        let corr_v = _mm256_set1_epi32(corr);
        let scale_v = _mm256_set1_ps(scale);
        let base_v = _mm256_set1_ps(base);
        let even = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1);
        let int_lo = interior_lo(pw, SW, wo);
        let int_hi = interior_hi(w, pw, KW, SW, wo, int_lo);
        let vec_ok =
            |oj: usize| -> bool { oj + 8 <= int_hi && (SW == 1 || oj * 2 + KW + 15 <= w + pw) };
        for oi in o0..o1 {
            let out_row = &mut out[(oi - o0) * wo..(oi - o0 + 1) * wo];
            qdw_cols_scalar(
                qplane, h0, h, w, qk, corr, scale, base, geom, oi, 0, int_lo, out_row,
            );
            // Taps in out-of-bounds kernel rows all read Q_ZERO; fold them
            // into the accumulator start (exact: integer addition commutes).
            let mut oob = 0i32;
            for (ki, &rs) in rowsums.iter().enumerate() {
                let ii = (oi * sh + ki) as isize - ph as isize;
                if ii < 0 || ii >= h as isize {
                    oob += Q_ZERO as i32 * rs;
                }
            }
            let init = _mm256_set1_epi32(oob);
            let mut oj = int_lo;
            while vec_ok(oj) {
                let mut acc = init;
                for (ki, kr) in kv.iter().enumerate() {
                    let ii = (oi * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let row = &qplane[(ii as usize - h0) * w..(ii as usize - h0 + 1) * w];
                    for (kj, &kt) in kr.iter().enumerate() {
                        let base_j = oj * SW + kj - pw;
                        let xv = if SW == 1 {
                            let lo = _mm_loadl_epi64(row.as_ptr().add(base_j) as *const __m128i);
                            _mm256_cvtepu8_epi32(lo)
                        } else {
                            let v = _mm_loadu_si128(row.as_ptr().add(base_j) as *const __m128i);
                            _mm256_cvtepu8_epi32(_mm_shuffle_epi8(v, even))
                        };
                        acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(xv, kt));
                    }
                }
                let f = _mm256_cvtepi32_ps(_mm256_sub_epi32(acc, corr_v));
                let y = _mm256_add_ps(_mm256_mul_ps(f, scale_v), base_v);
                _mm256_storeu_ps(out_row.as_mut_ptr().add(oj), y);
                oj += 8;
            }
            qdw_cols_scalar(
                qplane, h0, h, w, qk, corr, scale, base, geom, oi, oj, wo, out_row,
            );
        }
    }

    /// [`qdw_rows_avx2`] with the requantizing epilogue: interior groups
    /// hand their 8 exact i32 accumulators to
    /// [`crate::qgemm::qx86::dequant_act_requant_avx2`], which runs the same
    /// dequant → act → `vcvtps2dq` requantize chain the dense path uses;
    /// border columns run the scalar requant reference. Bytes equal the f32
    /// kernel + `act.apply` + `quantize_activations`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn qdw_rows_requant_avx2<
        const KH: usize,
        const KW: usize,
        const SW: usize,
    >(
        qplane: &[u8],
        h0: usize,
        h: usize,
        w: usize,
        qk: &[i8],
        rowsums: &[i32],
        corr: i32,
        scale: f32,
        base: f32,
        act: Epilogue,
        inv: f32,
        geom: ConvGeometry,
        wo: usize,
        o0: usize,
        o1: usize,
        out: &mut [u8],
    ) {
        let (sh, ph, pw) = (geom.sh, geom.ph, geom.pw);
        let mut kv = [[_mm256_setzero_si256(); KW]; KH];
        for (ki, kr) in kv.iter_mut().enumerate() {
            for (kj, t) in kr.iter_mut().enumerate() {
                *t = _mm256_set1_epi32(qk[ki * KW + kj] as i32);
            }
        }
        let even = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1);
        let int_lo = interior_lo(pw, SW, wo);
        let int_hi = interior_hi(w, pw, KW, SW, wo, int_lo);
        let vec_ok =
            |oj: usize| -> bool { oj + 8 <= int_hi && (SW == 1 || oj * 2 + KW + 15 <= w + pw) };
        for oi in o0..o1 {
            let out_row = &mut out[(oi - o0) * wo..(oi - o0 + 1) * wo];
            qdw_cols_scalar_requant(
                qplane, h0, h, w, qk, corr, scale, base, act, inv, geom, oi, 0, int_lo, out_row,
            );
            let mut oob = 0i32;
            for (ki, &rs) in rowsums.iter().enumerate() {
                let ii = (oi * sh + ki) as isize - ph as isize;
                if ii < 0 || ii >= h as isize {
                    oob += Q_ZERO as i32 * rs;
                }
            }
            let init = _mm256_set1_epi32(oob);
            let mut oj = int_lo;
            while vec_ok(oj) {
                let mut acc = init;
                for (ki, kr) in kv.iter().enumerate() {
                    let ii = (oi * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let row = &qplane[(ii as usize - h0) * w..(ii as usize - h0 + 1) * w];
                    for (kj, &kt) in kr.iter().enumerate() {
                        let base_j = oj * SW + kj - pw;
                        let xv = if SW == 1 {
                            let lo = _mm_loadl_epi64(row.as_ptr().add(base_j) as *const __m128i);
                            _mm256_cvtepu8_epi32(lo)
                        } else {
                            let v = _mm_loadu_si128(row.as_ptr().add(base_j) as *const __m128i);
                            _mm256_cvtepu8_epi32(_mm_shuffle_epi8(v, even))
                        };
                        acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(xv, kt));
                    }
                }
                let mut lanes = [0i32; 8];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                crate::qgemm::qx86::dequant_act_requant_avx2(
                    &lanes,
                    corr,
                    scale,
                    base,
                    act,
                    inv,
                    &mut out_row[oj..oj + 8],
                );
                oj += 8;
            }
            qdw_cols_scalar_requant(
                qplane, h0, h, w, qk, corr, scale, base, act, inv, geom, oi, oj, wo, out_row,
            );
        }
    }
}

/// Scalar reference for the quantized kernel: output columns `[j0, j1)` of
/// absolute output row `oi`. Every `kh * kw` tap is accumulated — with
/// [`Q_ZERO`] substituted for out-of-bounds taps, since padding quantizes
/// real zeros to the zero point — making the correction `Q_ZERO * kersum`
/// exact. Dequantization: `(acc - corr) as f32 * scale + base`.
#[allow(clippy::too_many_arguments)]
fn qdw_cols_scalar(
    qplane: &[u8],
    h0: usize,
    h: usize,
    w: usize,
    qk: &[i8],
    corr: i32,
    scale: f32,
    base: f32,
    geom: ConvGeometry,
    oi: usize,
    j0: usize,
    j1: usize,
    out_row: &mut [f32],
) {
    for (oj, o) in out_row.iter_mut().enumerate().take(j1).skip(j0) {
        let mut acc = 0i32;
        for ki in 0..geom.kh {
            let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
            let row = if ii < 0 || ii >= h as isize {
                None
            } else {
                Some(&qplane[(ii as usize - h0) * w..(ii as usize - h0 + 1) * w])
            };
            for kj in 0..geom.kw {
                let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                let qx = match row {
                    Some(r) if jj >= 0 && jj < w as isize => r[jj as usize] as i32,
                    _ => Q_ZERO as i32,
                };
                acc += qx * qk[ki * geom.kw + kj] as i32;
            }
        }
        *o = (acc - corr) as f32 * scale + base;
    }
}

/// Computes quantized depthwise output rows `[o0, o1)` for one channel —
/// the int8 twin of [`dw_channel_rows`], with the same strip/window
/// contract over a u8 input plane.
///
/// `qk` is the channel's quantized `[kh * kw]` filter, `kersum` the sum of
/// all its taps (for the exact zero-point correction), `scale` the combined
/// dequantization factor `weight_scale * x_scale`, and `base` the channel
/// bias. Bitwise identical for every `simd` value, thread width, and strip
/// split — the accumulation is exact integer arithmetic.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn qdw_channel_rows(
    qplane: &[u8],
    h0: usize,
    h: usize,
    w: usize,
    qk: &[i8],
    kersum: i32,
    scale: f32,
    base: f32,
    geom: ConvGeometry,
    wo: usize,
    o0: usize,
    o1: usize,
    out: &mut [f32],
    simd: bool,
) {
    assert_eq!(
        qk.len(),
        geom.kh * geom.kw,
        "qdw_channel_rows kernel length"
    );
    assert_eq!(out.len(), (o1 - o0) * wo, "qdw_channel_rows output length");
    assert_eq!(qplane.len() % w, 0, "qdw_channel_rows plane length");
    let corr = Q_ZERO as i32 * kersum;
    #[cfg(target_arch = "x86_64")]
    // `geom.kh <= 8` bounds the rowsums fill below; larger kernels take the
    // scalar path like the f32 twin (the dispatch only covers 3x3/5x5 anyway).
    if simd && geom.kh <= 8 && have_avx2() {
        let mut rowsums = [0i32; 8];
        for ki in 0..geom.kh {
            rowsums[ki] = qk[ki * geom.kw..(ki + 1) * geom.kw]
                .iter()
                .map(|&q| q as i32)
                .sum();
        }
        // Safety: AVX2 presence checked at runtime just above.
        let done = unsafe {
            match (geom.kh, geom.kw, geom.sw) {
                (3, 3, 1) => {
                    x86::qdw_rows_avx2::<3, 3, 1>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..3],
                        corr,
                        scale,
                        base,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                (3, 3, 2) => {
                    x86::qdw_rows_avx2::<3, 3, 2>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..3],
                        corr,
                        scale,
                        base,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                (5, 5, 1) => {
                    x86::qdw_rows_avx2::<5, 5, 1>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..5],
                        corr,
                        scale,
                        base,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                (5, 5, 2) => {
                    x86::qdw_rows_avx2::<5, 5, 2>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..5],
                        corr,
                        scale,
                        base,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                _ => false,
            }
        };
        if done {
            return;
        }
    }
    let _ = simd;
    for oi in o0..o1 {
        let out_row = &mut out[(oi - o0) * wo..(oi - o0 + 1) * wo];
        qdw_cols_scalar(
            qplane, h0, h, w, qk, corr, scale, base, geom, oi, 0, wo, out_row,
        );
    }
}

/// Requantizing twin of [`qdw_channel_rows`]: dequantizes each accumulator,
/// applies `act`, and immediately requantizes to u8 at `out_scale` — the
/// bytes are identical to [`qdw_channel_rows`] followed by `act.apply` and
/// [`crate::qgemm::quantize_activations`] on the f32 rows, but the f32
/// intermediate never exists. The fused inverted-residual executor uses
/// this to hand the depthwise output straight to the int8 project GEMM.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn qdw_channel_rows_requant(
    qplane: &[u8],
    h0: usize,
    h: usize,
    w: usize,
    qk: &[i8],
    kersum: i32,
    scale: f32,
    base: f32,
    act: Epilogue,
    out_scale: f32,
    geom: ConvGeometry,
    wo: usize,
    o0: usize,
    o1: usize,
    out: &mut [u8],
    simd: bool,
) {
    assert_eq!(
        qk.len(),
        geom.kh * geom.kw,
        "qdw_channel_rows kernel length"
    );
    assert_eq!(out.len(), (o1 - o0) * wo, "qdw_channel_rows output length");
    assert_eq!(qplane.len() % w, 0, "qdw_channel_rows plane length");
    let corr = Q_ZERO as i32 * kersum;
    let inv = 1.0 / out_scale;
    // The stencil-vectorized path only pays when at least one group of
    // eight interior columns exists (`vec_ok` at the first interior column
    // — it is monotone, so false there means false everywhere). On
    // narrower planes the chunked fallback below is faster: every column
    // is border-ish anyway, and it still vectorizes the requant epilogue.
    let int_lo = interior_lo(geom.pw, geom.sw, wo);
    let int_hi = interior_hi(w, geom.pw, geom.kw, geom.sw, wo, int_lo);
    let any_vec =
        int_lo + 8 <= int_hi && (geom.sw == 1 || int_lo * 2 + geom.kw + 15 <= w + geom.pw);
    #[cfg(target_arch = "x86_64")]
    // `geom.kh <= 8` bounds the rowsums fill below; larger kernels take the
    // scalar path like the f32 twin (the dispatch only covers 3x3/5x5 anyway).
    if simd && any_vec && geom.kh <= 8 && have_avx2() {
        let mut rowsums = [0i32; 8];
        for ki in 0..geom.kh {
            rowsums[ki] = qk[ki * geom.kw..(ki + 1) * geom.kw]
                .iter()
                .map(|&q| q as i32)
                .sum();
        }
        // Safety: AVX2 presence checked at runtime just above.
        let done = unsafe {
            match (geom.kh, geom.kw, geom.sw) {
                (3, 3, 1) => {
                    x86::qdw_rows_requant_avx2::<3, 3, 1>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..3],
                        corr,
                        scale,
                        base,
                        act,
                        inv,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                (3, 3, 2) => {
                    x86::qdw_rows_requant_avx2::<3, 3, 2>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..3],
                        corr,
                        scale,
                        base,
                        act,
                        inv,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                (5, 5, 1) => {
                    x86::qdw_rows_requant_avx2::<5, 5, 1>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..5],
                        corr,
                        scale,
                        base,
                        act,
                        inv,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                (5, 5, 2) => {
                    x86::qdw_rows_requant_avx2::<5, 5, 2>(
                        qplane,
                        h0,
                        h,
                        w,
                        qk,
                        &rowsums[..5],
                        corr,
                        scale,
                        base,
                        act,
                        inv,
                        geom,
                        wo,
                        o0,
                        o1,
                        out,
                    );
                    true
                }
                _ => false,
            }
        };
        if done {
            return;
        }
    }
    let _ = (simd, any_vec);
    for oi in o0..o1 {
        let out_row = &mut out[(oi - o0) * wo..(oi - o0 + 1) * wo];
        qdw_cols_scalar_requant(
            qplane, h0, h, w, qk, corr, scale, base, act, inv, geom, oi, 0, wo, out_row,
        );
    }
}

/// Scalar requantizing epilogue: [`qdw_cols_scalar`]'s accumulation with the
/// dequant → `act` → requantize chain applied per element, in exactly the
/// expression order the separate passes would use.
#[allow(clippy::too_many_arguments)]
fn qdw_cols_scalar_requant(
    qplane: &[u8],
    h0: usize,
    h: usize,
    w: usize,
    qk: &[i8],
    corr: i32,
    scale: f32,
    base: f32,
    act: Epilogue,
    inv: f32,
    geom: ConvGeometry,
    oi: usize,
    j0: usize,
    j1: usize,
    out_row: &mut [u8],
) {
    // Columns accumulate in chunks of eight so the dequant + activation +
    // requantize epilogue can run once per chunk through the vector helper
    // (bitwise-identical to the per-element expression) instead of paying a
    // per-element `Epilogue::apply` call — on narrow planes every column
    // comes through here, and the per-element epilogue dominates.
    #[cfg(target_arch = "x86_64")]
    let vec_epilogue = have_avx2();
    let mut accs = [0i32; 8];
    let mut js = j0;
    while js < j1 {
        let je = (js + 8).min(j1);
        for oj in js..je {
            let mut acc = 0i32;
            for ki in 0..geom.kh {
                let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                let row = if ii < 0 || ii >= h as isize {
                    None
                } else {
                    Some(&qplane[(ii as usize - h0) * w..(ii as usize - h0 + 1) * w])
                };
                for kj in 0..geom.kw {
                    let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                    let qx = match row {
                        Some(r) if jj >= 0 && jj < w as isize => r[jj as usize] as i32,
                        _ => Q_ZERO as i32,
                    };
                    acc += qx * qk[ki * geom.kw + kj] as i32;
                }
            }
            accs[oj - js] = acc;
        }
        #[cfg(target_arch = "x86_64")]
        if vec_epilogue && je - js == 8 {
            // Safety: AVX2 presence checked at runtime above.
            unsafe {
                crate::qgemm::qx86::dequant_act_requant_avx2(
                    &accs,
                    corr,
                    scale,
                    base,
                    act,
                    inv,
                    &mut out_row[js..je],
                );
            }
            js = je;
            continue;
        }
        for oj in js..je {
            let mut y = (accs[oj - js] - corr) as f32 * scale + base;
            act.apply(std::slice::from_mut(&mut y));
            out_row[oj] = ((y * inv).round_ties_even() as i32 + Q_ZERO as i32).clamp(0, 255) as u8;
        }
        js = je;
    }
}

/// A depthwise filter bank quantized per channel and ready for the i8
/// kernel: the depthwise twin of [`crate::qgemm::QPackedW`].
///
/// Each channel's `[kh * kw]` filter is quantized symmetrically to 7 bits
/// (`±QW_MAX`, the same headroom contract the dense path uses), with a
/// per-channel scale and the tap sum for the exact zero-point correction.
/// The stencil is so small that no sliver packing pays off; taps stay
/// row-major.
pub struct QDepthwiseW {
    q: Vec<i8>,
    scales: Vec<f32>,
    kersums: Vec<i32>,
    c: usize,
    kh: usize,
    kw: usize,
}

impl QDepthwiseW {
    /// Quantizes a `[c, kh, kw]` depthwise weight tensor (flat).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != c * kh * kw`.
    pub fn pack(w: &[f32], c: usize, kh: usize, kw: usize) -> Self {
        assert_eq!(w.len(), c * kh * kw, "QDepthwiseW operand length");
        let taps = kh * kw;
        let mut q = vec![0i8; c * taps];
        let mut scales = vec![1.0f32; c];
        let mut kersums = vec![0i32; c];
        for ci in 0..c {
            let filt = &w[ci * taps..(ci + 1) * taps];
            let amax = crate::qgemm::max_abs(filt);
            let scale = if amax > 0.0 {
                amax / QW_MAX as f32
            } else {
                1.0
            };
            scales[ci] = scale;
            let mut sum = 0i32;
            for (p, &v) in filt.iter().enumerate() {
                let qv = ((v / scale).round() as i32).clamp(-QW_MAX, QW_MAX);
                sum += qv;
                q[ci * taps + p] = qv as i8;
            }
            kersums[ci] = sum;
        }
        QDepthwiseW {
            q,
            scales,
            kersums,
            c,
            kh,
            kw,
        }
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Kernel height.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Per-channel dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Channel `ci`'s quantized `[kh * kw]` filter.
    pub fn filter(&self, ci: usize) -> &[i8] {
        let taps = self.kh * self.kw;
        &self.q[ci * taps..(ci + 1) * taps]
    }

    /// Channel `ci`'s tap sum (zero-point correction term).
    pub fn kersum(&self, ci: usize) -> i32 {
        self.kersums[ci]
    }

    /// Heap bytes held: i8 taps plus the f32 scale and i32 kersum tables —
    /// what plan `packed_bytes` charges for a quantized depthwise layer.
    pub fn bytes(&self) -> usize {
        self.q.len() + (self.scales.len() + self.kersums.len()) * 4
    }
}

/// Quantized depthwise convolution over a pre-quantized u8 batch
/// `[n, c, h, w]`, writing dequantized f32 into `out` `[n, c, ho, wo]` with
/// the (possibly identity) activation applied per sample.
///
/// `x_scale` is the activation quantization scale the caller used to
/// produce `qx`. Samples run in parallel on the worker pool; outputs are
/// sample-owned, so results are bitwise invariant to thread width.
///
/// # Panics
///
/// Panics on length mismatches between `qx`, `qw`, `bias`, `geom`, `out`.
#[allow(clippy::too_many_arguments)]
pub fn qdepthwise_conv2d_into(
    qx: &[u8],
    n: usize,
    qw: &QDepthwiseW,
    bias: Option<&[f32]>,
    geom: ConvGeometry,
    act: Epilogue,
    x_scale: f32,
    h: usize,
    w: usize,
    out: &mut [f32],
) {
    let c = qw.c();
    assert_eq!(
        (qw.kh(), qw.kw()),
        (geom.kh, geom.kw),
        "qdepthwise kernel vs geometry"
    );
    assert_eq!(qx.len(), n * c * h * w, "qdepthwise input length");
    let (ho, wo) = geom.output_hw(h, w);
    assert_eq!(out.len(), n * c * ho * wo, "qdepthwise output length");
    if let Some(b) = bias {
        assert_eq!(b.len(), c, "qdepthwise bias length");
    }
    if out.is_empty() {
        return;
    }
    let variant = selector::select(
        selector::Op::QDepthwise,
        selector::Layout::NN,
        c,
        geom.kh * geom.kw,
        ho * wo,
    );
    let simd = variant.schedule != Schedule::Direct;
    let in_sz = c * h * w;
    let out_sz = c * ho * wo;
    let scales = qw.scales();
    let shared_out = SharedMut::new(out);
    threadpool::parallel_for(n, &|ni| {
        // Safety: each task writes only its own sample's output window.
        let o_sample = unsafe { shared_out.slice(ni * out_sz, out_sz) };
        let x_s = &qx[ni * in_sz..(ni + 1) * in_sz];
        for ci in 0..c {
            let qplane = &x_s[ci * h * w..(ci + 1) * h * w];
            let o_plane = &mut o_sample[ci * ho * wo..(ci + 1) * ho * wo];
            let base = bias.map(|b| b[ci]).unwrap_or(0.0);
            qdw_channel_rows(
                qplane,
                0,
                h,
                w,
                qw.filter(ci),
                qw.kersum(ci),
                scales[ci] * x_scale,
                base,
                geom,
                wo,
                0,
                ho,
                o_plane,
                simd,
            );
        }
        act.apply(o_sample);
    });
}

fn isqrt(x: usize) -> usize {
    let mut r = (x as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    while r * r > x {
        r -= 1;
    }
    r
}

/// Autotunes a depthwise selector key `(c, kh*kw, ho*wo)` by timing the
/// scalar (`Direct`) and SIMD (`Blocked`) schedules on a synthetic
/// stride-1 same-padded proxy of the key's shape. Both schedules produce
/// identical bits, so this is purely a speed decision; the proxy cannot
/// recover the exact geometry from the key, but interior-dominated row
/// strips time the same for any geometry with the same tap count.
pub(crate) fn tune_depthwise(quant: bool, m: usize, k: usize, n: usize) -> Variant {
    let c = m.max(1);
    let r = isqrt(k.max(1));
    let (kh, kw) = if r * r == k && k > 0 {
        (r, r)
    } else {
        (1, k.max(1))
    };
    let h = isqrt(n.max(1)).max(1);
    let w = n.max(1).div_ceil(h);
    let geom = ConvGeometry {
        kh,
        kw,
        sh: 1,
        sw: 1,
        ph: kh / 2,
        pw: kw / 2,
    };
    let (ho, wo) = geom.output_hw(h, w);
    let fill = |len: usize, salt: u64| -> Vec<f32> {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    };
    let x = fill(c * h * w, 0x9e3779b9);
    let wf = fill(c * kh * kw, 0x7f4a7c15);
    let mut out = vec![0.0f32; c * ho * wo];
    let qw = quant.then(|| QDepthwiseW::pack(&wf, c, kh, kw));
    let (x_scale, qx) = if quant {
        let s = crate::qgemm::activation_scale(crate::qgemm::max_abs(&x));
        let mut q = vec![0u8; x.len()];
        crate::qgemm::quantize_activations(&x, s, &mut q);
        (s, q)
    } else {
        (1.0, Vec::new())
    };
    let cands = [
        Variant {
            schedule: Schedule::Direct,
            parallel: false,
        },
        Variant {
            schedule: Schedule::Blocked {
                mc: crate::gemm::MC_STD,
                nc: crate::gemm::NC_STD,
            },
            parallel: false,
        },
    ];
    let flops = (2 * c * kh * kw * ho * wo).max(1) as u64;
    let reps = (2_000_000 / flops).clamp(2, 64) as usize;
    let mut best = (u128::MAX, cands[1]);
    for &cand in &cands {
        let simd = cand.schedule != Schedule::Direct;
        let run = |out: &mut [f32]| {
            for ci in 0..c {
                let o_plane = &mut out[ci * ho * wo..(ci + 1) * ho * wo];
                if let Some(qw) = &qw {
                    qdw_channel_rows(
                        &qx[ci * h * w..(ci + 1) * h * w],
                        0,
                        h,
                        w,
                        qw.filter(ci),
                        qw.kersum(ci),
                        qw.scales()[ci] * x_scale,
                        0.0,
                        geom,
                        wo,
                        0,
                        ho,
                        o_plane,
                        simd,
                    );
                } else {
                    let plane = &x[ci * h * w..(ci + 1) * h * w];
                    let ker = &wf[ci * kh * kw..(ci + 1) * kh * kw];
                    dw_channel_rows(plane, 0, h, w, ker, 0.0, geom, wo, 0, ho, o_plane, simd);
                }
            }
        };
        run(&mut out);
        let mut elapsed = u128::MAX;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                run(&mut out);
            }
            elapsed = elapsed.min(t0.elapsed().as_nanos());
        }
        if elapsed < best.0 {
            best = (elapsed, cand);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, salt: u64) -> Vec<f32> {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn edge_geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::same(3, 1),
            ConvGeometry::same(3, 2),
            ConvGeometry::same(5, 1),
            ConvGeometry::same(5, 2),
            ConvGeometry::square(3, 1, 0),
            ConvGeometry::square(3, 2, 2),
            ConvGeometry::square(1, 1, 0),
            ConvGeometry::square(2, 2, 1),
        ]
    }

    #[test]
    fn f32_simd_matches_scalar_bitwise() {
        for geom in edge_geoms() {
            for &(h, w) in &[
                (1usize, 1usize),
                (2, 9),
                (7, 8),
                (9, 16),
                // Exactly one f32 past the row for a 3x3 s2 p1 second load if
                // the stride-2 guard is off by one (regression: OOB read).
                (9, 18),
                (16, 7),
                (17, 33),
            ] {
                if h + 2 * geom.ph < geom.kh || w + 2 * geom.pw < geom.kw {
                    continue;
                }
                let (ho, wo) = geom.output_hw(h, w);
                let plane = fill(h * w, 0x1234);
                let ker = fill(geom.kh * geom.kw, 0x5678);
                let mut a = vec![0.0f32; ho * wo];
                let mut b = vec![0.0f32; ho * wo];
                dw_channel_rows(&plane, 0, h, w, &ker, 0.25, geom, wo, 0, ho, &mut a, false);
                dw_channel_rows(&plane, 0, h, w, &ker, 0.25, geom, wo, 0, ho, &mut b, true);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "f32 dw mismatch geom {geom:?} h{h} w{w} at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_strips_match_full_plane() {
        let geom = ConvGeometry::same(3, 2);
        let (h, w) = (13, 11);
        let (ho, wo) = geom.output_hw(h, w);
        let plane = fill(h * w, 0xabc);
        let ker = fill(9, 0xdef);
        let mut full = vec![0.0f32; ho * wo];
        dw_channel_rows(
            &plane, 0, h, w, &ker, -0.5, geom, wo, 0, ho, &mut full, true,
        );
        for strip in [1usize, 2, 3, ho] {
            let mut out = vec![0.0f32; ho * wo];
            let mut o0 = 0;
            while o0 < ho {
                let o1 = (o0 + strip).min(ho);
                // Pass only the input-row window this strip reads.
                let r0 = (o0 * geom.sh).saturating_sub(geom.ph);
                let r1 = (((o1 - 1) * geom.sh + geom.kh).saturating_sub(geom.ph)).min(h);
                let window = &plane[r0 * w..r1 * w];
                dw_channel_rows(
                    window,
                    r0,
                    h,
                    w,
                    &ker,
                    -0.5,
                    geom,
                    wo,
                    o0,
                    o1,
                    &mut out[o0 * wo..o1 * wo],
                    true,
                );
                o0 = o1;
            }
            assert_eq!(
                full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "strip {strip} diverges from full plane"
            );
        }
    }

    #[test]
    fn quant_pack_properties() {
        let w = fill(4 * 9, 0x77);
        let qw = QDepthwiseW::pack(&w, 4, 3, 3);
        assert_eq!((qw.c(), qw.kh(), qw.kw()), (4, 3, 3));
        for ci in 0..4 {
            let filt = &w[ci * 9..(ci + 1) * 9];
            let amax = crate::qgemm::max_abs(filt);
            let qf = qw.filter(ci);
            let mut sum = 0i32;
            for (&qv, &v) in qf.iter().zip(filt) {
                assert!(qv >= -(QW_MAX as i8) && qv <= QW_MAX as i8);
                // Quantization error bounded by half a step.
                let back = qv as f32 * qw.scales()[ci];
                assert!((back - v).abs() <= qw.scales()[ci] * 0.5 + 1e-6);
                sum += qv as i32;
            }
            assert_eq!(sum, qw.kersum(ci), "kersum");
            assert!((qw.scales()[ci] - amax / QW_MAX as f32).abs() < 1e-7);
        }
        // A dead (all-zero) filter gets scale 1.0 and zero taps.
        let qz = QDepthwiseW::pack(&[0.0; 9], 1, 3, 3);
        assert_eq!(qz.scales()[0], 1.0);
        assert!(qz.filter(0).iter().all(|&q| q == 0));
        assert_eq!(qz.bytes(), 9 + 8);
    }

    /// Pure-integer reference: substitutes Q_ZERO for every out-of-bounds
    /// tap and dequantizes at the end, mirroring the kernel contract.
    #[allow(clippy::too_many_arguments)]
    fn qdw_ref(
        qplane: &[u8],
        h: usize,
        w: usize,
        qk: &[i8],
        kersum: i32,
        scale: f32,
        base: f32,
        geom: ConvGeometry,
    ) -> Vec<f32> {
        let (ho, wo) = geom.output_hw(h, w);
        let mut out = vec![0.0f32; ho * wo];
        for oi in 0..ho {
            for oj in 0..wo {
                let mut acc = 0i64;
                for ki in 0..geom.kh {
                    for kj in 0..geom.kw {
                        let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        let qx = if ii < 0 || ii >= h as isize || jj < 0 || jj >= w as isize {
                            Q_ZERO as i64
                        } else {
                            qplane[ii as usize * w + jj as usize] as i64
                        };
                        acc += qx * qk[ki * geom.kw + kj] as i64;
                    }
                }
                let corrected = acc - Q_ZERO as i64 * kersum as i64;
                out[oi * wo + oj] = corrected as i32 as f32 * scale + base;
            }
        }
        out
    }

    #[test]
    fn quant_kernel_matches_integer_reference_and_simd_scalar_bitwise() {
        for geom in edge_geoms() {
            for &(h, w) in &[(1usize, 1usize), (3, 7), (8, 8), (9, 17), (9, 18), (16, 5)] {
                if h + 2 * geom.ph < geom.kh || w + 2 * geom.pw < geom.kw {
                    continue;
                }
                let (ho, wo) = geom.output_hw(h, w);
                let x = fill(h * w, 0x9a);
                let wf = fill(geom.kh * geom.kw, 0xbc);
                let qw = QDepthwiseW::pack(&wf, 1, geom.kh, geom.kw);
                let x_scale = crate::qgemm::activation_scale(crate::qgemm::max_abs(&x));
                let mut qx = vec![0u8; x.len()];
                crate::qgemm::quantize_activations(&x, x_scale, &mut qx);
                let cs = qw.scales()[0] * x_scale;
                let reference = qdw_ref(&qx, h, w, qw.filter(0), qw.kersum(0), cs, 0.125, geom);
                let mut scalar = vec![0.0f32; ho * wo];
                let mut simd = vec![0.0f32; ho * wo];
                qdw_channel_rows(
                    &qx,
                    0,
                    h,
                    w,
                    qw.filter(0),
                    qw.kersum(0),
                    cs,
                    0.125,
                    geom,
                    wo,
                    0,
                    ho,
                    &mut scalar,
                    false,
                );
                qdw_channel_rows(
                    &qx,
                    0,
                    h,
                    w,
                    qw.filter(0),
                    qw.kersum(0),
                    cs,
                    0.125,
                    geom,
                    wo,
                    0,
                    ho,
                    &mut simd,
                    true,
                );
                for i in 0..ho * wo {
                    assert_eq!(
                        scalar[i].to_bits(),
                        reference[i].to_bits(),
                        "scalar vs integer reference, geom {geom:?} h{h} w{w} at {i}"
                    );
                    assert_eq!(
                        scalar[i].to_bits(),
                        simd[i].to_bits(),
                        "scalar vs simd, geom {geom:?} h{h} w{w} at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn quant_large_kernel_falls_back_to_scalar() {
        // kh > 8 exceeds the SIMD paths' fixed rowsums capacity; both
        // quantized entries must take the scalar path (no panic) and match
        // the simd=false results bitwise, like the f32 twin does.
        for geom in [ConvGeometry::same(9, 1), ConvGeometry::same(9, 2)] {
            let (h, w) = (12usize, 19usize);
            let (ho, wo) = geom.output_hw(h, w);
            let x = fill(h * w, 0x51);
            let wf = fill(geom.kh * geom.kw, 0x62);
            let qw = QDepthwiseW::pack(&wf, 1, geom.kh, geom.kw);
            let x_scale = crate::qgemm::activation_scale(crate::qgemm::max_abs(&x));
            let mut qx = vec![0u8; x.len()];
            crate::qgemm::quantize_activations(&x, x_scale, &mut qx);
            let cs = qw.scales()[0] * x_scale;
            let mut scalar = vec![0.0f32; ho * wo];
            let mut simd = vec![0.0f32; ho * wo];
            for (buf, s) in [(&mut scalar, false), (&mut simd, true)] {
                qdw_channel_rows(
                    &qx,
                    0,
                    h,
                    w,
                    qw.filter(0),
                    qw.kersum(0),
                    cs,
                    0.125,
                    geom,
                    wo,
                    0,
                    ho,
                    buf,
                    s,
                );
            }
            assert_eq!(
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "large-kernel qdw simd flag changed bytes, geom {geom:?}"
            );
            let act = Epilogue::Relu { alpha: 0.0 };
            let mut want = vec![0u8; ho * wo];
            let mut got = vec![0u8; ho * wo];
            for (buf, s) in [(&mut want, false), (&mut got, true)] {
                qdw_channel_rows_requant(
                    &qx,
                    0,
                    h,
                    w,
                    qw.filter(0),
                    qw.kersum(0),
                    cs,
                    0.125,
                    act,
                    0.02,
                    geom,
                    wo,
                    0,
                    ho,
                    buf,
                    s,
                );
            }
            assert_eq!(
                want, got,
                "large-kernel qdw requant simd flag changed bytes, geom {geom:?}"
            );
        }
    }

    #[test]
    fn requant_kernel_matches_separate_passes_bitwise() {
        // The fused-executor contract: the requantizing epilogue's bytes
        // must equal the f32 kernel + act.apply + quantize_activations,
        // scalar and SIMD alike, over the same edge-geometry grid.
        for geom in edge_geoms() {
            for &(h, w) in &[(1usize, 1usize), (3, 7), (8, 8), (9, 17), (9, 18), (16, 5)] {
                if h + 2 * geom.ph < geom.kh || w + 2 * geom.pw < geom.kw {
                    continue;
                }
                let (ho, wo) = geom.output_hw(h, w);
                let x = fill(h * w, 0x4d);
                let wf = fill(geom.kh * geom.kw, 0x3e);
                let qw = QDepthwiseW::pack(&wf, 1, geom.kh, geom.kw);
                let x_scale = crate::qgemm::activation_scale(crate::qgemm::max_abs(&x));
                let mut qx = vec![0u8; x.len()];
                crate::qgemm::quantize_activations(&x, x_scale, &mut qx);
                let cs = qw.scales()[0] * x_scale;
                let out_scale = 0.013;
                for act in [
                    Epilogue::None,
                    Epilogue::Relu { alpha: 0.0 },
                    Epilogue::Relu6 { alpha: 0.25 },
                ] {
                    let mut f = vec![0.0f32; ho * wo];
                    qdw_channel_rows(
                        &qx,
                        0,
                        h,
                        w,
                        qw.filter(0),
                        qw.kersum(0),
                        cs,
                        0.125,
                        geom,
                        wo,
                        0,
                        ho,
                        &mut f,
                        true,
                    );
                    act.apply(&mut f);
                    let mut want = vec![0u8; ho * wo];
                    crate::qgemm::quantize_activations(&f, out_scale, &mut want);
                    for simd in [false, true] {
                        let mut got = vec![0u8; ho * wo];
                        qdw_channel_rows_requant(
                            &qx,
                            0,
                            h,
                            w,
                            qw.filter(0),
                            qw.kersum(0),
                            cs,
                            0.125,
                            act,
                            out_scale,
                            geom,
                            wo,
                            0,
                            ho,
                            &mut got,
                            simd,
                        );
                        assert_eq!(
                            want, got,
                            "requant bytes diverge, geom {geom:?} h{h} w{w} act {act:?} simd {simd}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quant_entry_dequantizes_close_to_f32() {
        // End-to-end: quantized depthwise should approximate the f32 kernel
        // within the combined quantization step.
        let (n, c, h, w) = (2usize, 3usize, 8usize, 8usize);
        let geom = ConvGeometry::same(3, 1);
        let (ho, wo) = geom.output_hw(h, w);
        let x = fill(n * c * h * w, 0x11);
        let wf = fill(c * 9, 0x22);
        let bias = fill(c, 0x33);
        let qw = QDepthwiseW::pack(&wf, c, 3, 3);
        let x_scale = crate::qgemm::activation_scale(crate::qgemm::max_abs(&x));
        let mut qx = vec![0u8; x.len()];
        crate::qgemm::quantize_activations(&x, x_scale, &mut qx);
        let mut qout = vec![0.0f32; n * c * ho * wo];
        qdepthwise_conv2d_into(
            &qx,
            n,
            &qw,
            Some(&bias),
            geom,
            Epilogue::None,
            x_scale,
            h,
            w,
            &mut qout,
        );
        // f32 reference via the scalar path on the dequantized-rounded x.
        for ni in 0..n {
            for ci in 0..c {
                let plane = &x[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let ker = &wf[ci * 9..(ci + 1) * 9];
                let mut fref = vec![0.0f32; ho * wo];
                dw_channel_rows(
                    plane, 0, h, w, ker, bias[ci], geom, wo, 0, ho, &mut fref, false,
                );
                let qpl = &qout[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo];
                // 9 taps, each off by at most half an activation step times
                // the weight magnitude plus half a weight step times |x|.
                let tol = 9.0 * (x_scale * 0.5 + qw.scales()[ci] * 0.5) + 1e-4;
                for (a, b) in fref.iter().zip(qpl) {
                    assert!((a - b).abs() <= tol, "quant far from f32: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn tuner_returns_valid_variant() {
        for quant in [false, true] {
            let v = tune_depthwise(quant, 4, 9, 64);
            assert!(matches!(
                v.schedule,
                Schedule::Direct | Schedule::Blocked { .. }
            ));
        }
    }
}
