//! Shape algebra for dense row-major tensors.
//!
//! A [`Shape`] is an ordered list of dimension extents. Tensors in this crate
//! are always contiguous and row-major (C order), so a shape fully determines
//! the memory layout. The convention for images is `NCHW`:
//! `[batch, channels, height, width]`.

use std::fmt;

/// The extents of a tensor's dimensions.
///
/// # Examples
///
/// ```
/// use nb_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4, 4]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.numel(), 96);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// A rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use nb_tensor::Shape;
    /// assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Interprets this shape as `NCHW` and returns `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected NCHW shape, got {self}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Interprets this shape as a matrix and returns `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2.
    pub fn rc(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected matrix shape, got {self}");
        (self.0[0], self.0[1])
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Spatial geometry of a 2-D convolution or pooling window.
///
/// Used by both the convolution kernels in this crate and the layer types in
/// `nb-nn`. All fields apply symmetrically to height and width unless noted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along height.
    pub sh: usize,
    /// Stride along width.
    pub sw: usize,
    /// Zero padding along height (applied on both sides).
    pub ph: usize,
    /// Zero padding along width (applied on both sides).
    pub pw: usize,
}

impl ConvGeometry {
    /// A square kernel with symmetric stride and padding.
    pub fn square(k: usize, stride: usize, padding: usize) -> Self {
        ConvGeometry {
            kh: k,
            kw: k,
            sh: stride,
            sw: stride,
            ph: padding,
            pw: padding,
        }
    }

    /// A square kernel with "same" padding (`k/2`) and the given stride.
    pub fn same(k: usize, stride: usize) -> Self {
        Self::square(k, stride, k / 2)
    }

    /// A 1x1 pointwise kernel with stride 1 and no padding.
    pub fn pointwise() -> Self {
        Self::square(1, 1, 0)
    }

    /// Output spatial size `(h_out, w_out)` for an input of `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph2 = h + 2 * self.ph;
        let pw2 = w + 2 * self.pw;
        assert!(
            ph2 >= self.kh && pw2 >= self.kw,
            "conv input {h}x{w} (padded {ph2}x{pw2}) smaller than kernel {}x{}",
            self.kh,
            self.kw
        );
        ((ph2 - self.kh) / self.sh + 1, (pw2 - self.kw) / self.sw + 1)
    }
}

impl Default for ConvGeometry {
    fn default() -> Self {
        ConvGeometry::pointwise()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = Shape::new(vec![4, 3, 8, 8]);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.numel(), 768);
        assert_eq!(s.nchw(), (4, 3, 8, 8));
        assert_eq!(format!("{s}"), "[4x3x8x8]");
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
    }

    #[test]
    fn conv_geometry_output() {
        // 3x3 stride-1 same padding keeps spatial size.
        assert_eq!(ConvGeometry::same(3, 1).output_hw(8, 8), (8, 8));
        // 3x3 stride-2 same padding halves (rounding up).
        assert_eq!(ConvGeometry::same(3, 2).output_hw(8, 8), (4, 4));
        assert_eq!(ConvGeometry::same(3, 2).output_hw(9, 9), (5, 5));
        // pointwise keeps size.
        assert_eq!(ConvGeometry::pointwise().output_hw(7, 5), (7, 5));
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn conv_geometry_too_small_panics() {
        ConvGeometry::square(5, 1, 0).output_hw(3, 3);
    }

    #[test]
    fn shape_from_array() {
        let s: Shape = [2, 3].into();
        assert_eq!(s.rc(), (2, 3));
    }
}
