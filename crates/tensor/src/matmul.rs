//! Matrix multiplication kernels.
//!
//! The convolution path lowers to `weight_matrix * im2col_matrix`, so matmul
//! throughput dominates training time. The kernel here is a cache-friendly
//! `i-k-j` loop with the inner dimension vectorizable by LLVM, parallelized
//! over row blocks with scoped threads when the problem is large enough.

use crate::Tensor;

/// Problems smaller than this many multiply-adds run single-threaded; the
/// thread-spawn cost dominates below it.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 20;

/// `C = A * B` for row-major matrices given as flat slices.
///
/// `a` is `m x k`, `b` is `k x n`, and `c` (the output) is `m x n`. `c` is
/// fully overwritten.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(c.len(), m * n, "out buffer length");
    if m * n * k >= PARALLEL_FLOP_THRESHOLD {
        let threads = available_threads().min(m.max(1));
        if threads > 1 {
            let rows_per = m.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for (block, c_block) in c.chunks_mut(rows_per * n).enumerate() {
                    let row0 = block * rows_per;
                    s.spawn(move |_| {
                        let rows = c_block.len() / n;
                        matmul_block(&a[row0 * k..(row0 + rows) * k], b, c_block, rows, k, n);
                    });
                }
            })
            .expect("matmul worker panicked");
            return;
        }
    }
    matmul_block(a, b, c, m, k, n);
}

/// Single-threaded `m x k` times `k x n` into `c`.
fn matmul_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.iter_mut().for_each(|x| *x = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
}

/// Number of worker threads to use for data-parallel kernels.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use nb_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
    /// assert_eq!(a.matmul(&i), a);
    /// # Ok::<(), nb_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().rc();
        let (k2, n) = other.shape().rc();
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros([m, n]);
        matmul_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// `self` is `m x k`, `other` is `n x k`; the result is `m x n`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the `k` dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().rc();
        let (n, k2) = other.shape().rc();
        assert_eq!(
            k, k2,
            "matmul_nt inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Tensor::zeros([m, n]);
        let o = out.as_mut_slice();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                o[i * n + j] = acc;
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// `self` is `k x m`, `other` is `k x n`; the result is `m x n`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the `k` dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = self.shape().rc();
        let (k2, n) = other.shape().rc();
        assert_eq!(
            k, k2,
            "matmul_tn inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Tensor::zeros([m, n]);
        let o = out.as_mut_slice();
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let o_row = &mut o[i * n..(i + 1) * n];
                for (o_ij, &b_pj) in o_row.iter_mut().zip(b_row) {
                    *o_ij += a_pi * b_pj;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().rc();
        let (_, n) = b.shape().rc();
        Tensor::from_fn([m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            (0..k).map(|p| a.at2(i, p) * b.at2(p, j)).sum()
        })
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([5, 9], &mut rng);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matches_naive_parallel_path() {
        // Big enough to cross PARALLEL_FLOP_THRESHOLD.
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn([160, 128], &mut rng);
        let b = Tensor::randn([128, 160], &mut rng);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-3));
    }

    #[test]
    fn nt_and_tn_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Tensor::randn([6, 4], &mut rng);
        let b = Tensor::randn([5, 4], &mut rng);
        assert!(a.matmul_nt(&b).allclose(&a.matmul(&b.transpose2d()), 1e-4));
        let c = Tensor::randn([4, 6], &mut rng);
        let d = Tensor::randn([4, 5], &mut rng);
        assert!(c.matmul_tn(&d).allclose(&c.transpose2d().matmul(&d), 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = Tensor::randn([8, 8], &mut rng);
        let eye = Tensor::from_fn([8, 8], |i| if i / 8 == i % 8 { 1.0 } else { 0.0 });
        assert!(a.matmul(&eye).allclose(&a, 1e-6));
        assert!(eye.matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn degenerate_dims() {
        let a = Tensor::ones([1, 3]);
        let b = Tensor::ones([3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[1, 1]);
        assert_eq!(c.item(), 3.0);
    }
}
