//! Matrix multiplication entry points.
//!
//! All variants — `matmul`, `matmul_nt`, `matmul_tn`, and the raw
//! [`matmul_into`] — route through the blocked, packed kernel in
//! [`crate::gemm`]; transposition is absorbed at pack time, so no transpose
//! is ever materialized. Which schedule runs for a given `(m, k, n)` is
//! decided per shape by [`crate::selector`] (deterministic default, or the
//! persisted autotune cache under `NB_AUTOTUNE=on`). Large problems are
//! split over row blocks on the persistent worker pool (see
//! [`crate::threadpool`]); the k-accumulation order per output element is
//! fixed, so results do not depend on the thread count or on which blocked
//! schedule the selector picks.

use crate::gemm::gemm;
use crate::Tensor;

/// `C = A * B` for row-major matrices given as flat slices.
///
/// `a` is `m x k`, `b` is `k x n`, and `c` (the output) is `m x n`. `c` is
/// fully overwritten.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm(a, false, b, false, c, m, k, n, None, false);
}

/// Number of worker threads data-parallel kernels will use (including the
/// calling thread). Honors the `NB_NUM_THREADS` override.
pub fn available_threads() -> usize {
    crate::threadpool::num_threads()
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use nb_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
    /// assert_eq!(a.matmul(&i), a);
    /// # Ok::<(), nb_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().rc();
        let (k2, n) = other.shape().rc();
        assert_eq!(
            k,
            k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros([m, n]);
        gemm(
            self.as_slice(),
            false,
            other.as_slice(),
            false,
            out.as_mut_slice(),
            m,
            k,
            n,
            None,
            false,
        );
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// `self` is `m x k`, `other` is `n x k`; the result is `m x n`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the `k` dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().rc();
        let (n, k2) = other.shape().rc();
        assert_eq!(
            k,
            k2,
            "matmul_nt inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros([m, n]);
        gemm(
            self.as_slice(),
            false,
            other.as_slice(),
            true,
            out.as_mut_slice(),
            m,
            k,
            n,
            None,
            false,
        );
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// `self` is `k x m`, `other` is `k x n`; the result is `m x n`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the `k` dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = self.shape().rc();
        let (k2, n) = other.shape().rc();
        assert_eq!(
            k,
            k2,
            "matmul_tn inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros([m, n]);
        gemm(
            self.as_slice(),
            true,
            other.as_slice(),
            false,
            out.as_mut_slice(),
            m,
            k,
            n,
            None,
            false,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().rc();
        let (_, n) = b.shape().rc();
        Tensor::from_fn([m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            (0..k).map(|p| a.at2(i, p) * b.at2(p, j)).sum()
        })
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([5, 9], &mut rng);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matches_naive_parallel_path() {
        // Big enough to cross the parallel threshold.
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn([160, 128], &mut rng);
        let b = Tensor::randn([128, 160], &mut rng);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-3));
    }

    #[test]
    fn nt_and_tn_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Tensor::randn([6, 4], &mut rng);
        let b = Tensor::randn([5, 4], &mut rng);
        assert!(a.matmul_nt(&b).allclose(&a.matmul(&b.transpose2d()), 1e-4));
        let c = Tensor::randn([4, 6], &mut rng);
        let d = Tensor::randn([4, 5], &mut rng);
        assert!(c.matmul_tn(&d).allclose(&c.transpose2d().matmul(&d), 1e-4));
    }

    #[test]
    fn nt_and_tn_agree_with_explicit_transpose_large() {
        // Large enough to take the blocked (and parallel) path.
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::randn([96, 130], &mut rng);
        let b = Tensor::randn([70, 130], &mut rng);
        assert!(a.matmul_nt(&b).allclose(&a.matmul(&b.transpose2d()), 1e-3));
        let c = Tensor::randn([130, 96], &mut rng);
        let d = Tensor::randn([130, 70], &mut rng);
        assert!(c.matmul_tn(&d).allclose(&c.transpose2d().matmul(&d), 1e-3));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = Tensor::randn([8, 8], &mut rng);
        let eye = Tensor::from_fn([8, 8], |i| if i / 8 == i % 8 { 1.0 } else { 0.0 });
        assert!(a.matmul(&eye).allclose(&a, 1e-6));
        assert!(eye.matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn degenerate_dims() {
        let a = Tensor::ones([1, 3]);
        let b = Tensor::ones([3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[1, 1]);
        assert_eq!(c.item(), 3.0);
    }
}
