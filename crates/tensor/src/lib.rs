//! # nb-tensor
//!
//! Dense `f32` tensors and the numeric kernels underneath the NetBooster
//! reproduction stack: elementwise math, matrix multiplication, dense and
//! depthwise 2-D convolution (with gradients), and pooling.
//!
//! Everything is CPU-only, contiguous, and row-major (`NCHW` for images).
//!
//! ## Threading and memory model
//!
//! Heavy kernels are data-parallel over a **persistent, process-wide worker
//! pool** ([`threadpool`]): workers are spawned lazily on first use and then
//! sleep between jobs, so going parallel costs a queue push instead of a
//! thread spawn. The pool width defaults to the machine parallelism and can
//! be pinned with the `NB_NUM_THREADS` environment variable (read once, at
//! first use; `NB_NUM_THREADS=1` disables worker threads entirely).
//! [`with_thread_cap`] lowers the width per-thread for the duration of a
//! closure, which is how tests compare thread counts within one process.
//!
//! Matrix multiplication uses a cache-blocked, packed GEMM ([`gemm`]): a
//! 4x8 register-tile microkernel over `MC x KC` packed A blocks and
//! `KC x NC` packed B strips, with transposed operands handled at pack time
//! so `matmul`, `matmul_nt`, and `matmul_tn` share one kernel. Which
//! schedule runs for a given shape — direct loops or the blocked kernel
//! with a concrete `(MC, NC)` pair, serial or parallel — is chosen by the
//! shape-keyed [`selector`], which can micro-benchmark candidates once and
//! persist winners to a JSON cache (`NB_AUTOTUNE=on`; `NB_AUTOTUNE=off`
//! pins the deterministic default). The convolution *forward* is an
//! **implicit GEMM**: the packing loop reads the input image through a
//! virtual im2col layout, so the `[c_in*kh*kw, ho*wo]` column matrix is
//! never materialized — only the backward pass still lowers explicitly.
//! Packing panels and the backward-path column matrices live in
//! **thread-local scratch buffers** that grow to a high-water mark and are
//! reused, so steady-state training steps perform no kernel-side heap
//! allocation beyond output tensors. The convolution bias is fused into the
//! GEMM epilogue (outputs are initialized from the bias rather than zero).
//!
//! Tensor storage is `Arc`-backed copy-on-write: `Tensor::clone` and
//! `reshape` are O(1) buffer shares, and a shared buffer is copied only at
//! the first mutation. This is what makes parameter binding on the autograd
//! tape clone-free. The shared elementwise forward kernels in [`eltwise`]
//! are the single source of truth for pointwise layer math, so the taped
//! and grad-free execution paths produce bitwise-identical activations.
//!
//! **Determinism:** every GEMM output element is produced by exactly one
//! thread with a fixed k-accumulation order, so matmul results are bitwise
//! identical for any thread count — and for any blocked schedule the
//! selector picks, since the k-panel depth `KC` is never tuned. Convolution
//! input gradients are per-sample and equally thread-count-invariant, and
//! depthwise `dw`/`db` are channel-owned (fully width-invariant); the dense
//! conv `dw`/`db` reductions sum per-chunk partials in a fixed chunk order,
//! which is deterministic for a given pool width (run-to-run) but may round
//! differently across widths.
//!
//! ## Example
//!
//! ```
//! use nb_tensor::{conv2d, ConvGeometry, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let image = Tensor::randn([1, 3, 8, 8], &mut rng);     // NCHW
//! let weight = Tensor::randn([16, 3, 3, 3], &mut rng);    // [out,in,kh,kw]
//! let feature = conv2d(&image, &weight, None, ConvGeometry::same(3, 2));
//! assert_eq!(feature.dims(), &[1, 16, 4, 4]);
//! ```

#![warn(missing_docs)]

mod conv;
pub mod depthwise;
pub mod eltwise;
mod error;
pub mod gemm;
mod matmul;
mod pool;
pub mod qgemm;
pub mod selector;
mod shape;
mod tensor;
pub mod threadpool;

pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_into, conv2d_into_explicit, conv2d_packed_into,
    conv2d_pointwise_mat_into, depthwise_conv2d, depthwise_conv2d_backward,
    depthwise_conv2d_fused_into, depthwise_conv2d_into, im2col,
};
pub use depthwise::{
    dw_channel_rows, qdepthwise_conv2d_into, qdw_channel_rows, qdw_channel_rows_requant,
    QDepthwiseW,
};
pub use eltwise::Epilogue;
pub use error::TensorError;
pub use gemm::{gemm, gemm_a_packed, gemm_b_packed, PackedA, PackedB};
pub use matmul::{available_threads, matmul_into};
pub use pool::{
    avgpool2d, avgpool2d_backward, global_avg_pool, global_avg_pool_backward, maxpool2d,
    maxpool2d_backward,
};
pub use qgemm::{
    activation_scale, max_abs, qgemm_conv, qgemm_conv_mat, qgemm_conv_mat_requant, qgemm_linear,
    quantize_activations, QIm2colRef, QPackedW, Q_ZERO,
};
pub use selector::{with_autotune_off, Schedule, Variant};
pub use shape::{ConvGeometry, Shape};
pub use tensor::Tensor;
pub use threadpool::{num_threads, parallel_for, with_thread_cap};
