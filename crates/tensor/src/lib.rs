//! # nb-tensor
//!
//! Dense `f32` tensors and the numeric kernels underneath the NetBooster
//! reproduction stack: elementwise math, matrix multiplication, dense and
//! depthwise 2-D convolution (with gradients), and pooling.
//!
//! Everything is CPU-only, contiguous, and row-major (`NCHW` for images).
//! Heavy kernels parallelize over the batch dimension with scoped threads.
//!
//! ## Example
//!
//! ```
//! use nb_tensor::{conv2d, ConvGeometry, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let image = Tensor::randn([1, 3, 8, 8], &mut rng);     // NCHW
//! let weight = Tensor::randn([16, 3, 3, 3], &mut rng);    // [out,in,kh,kw]
//! let feature = conv2d(&image, &weight, None, ConvGeometry::same(3, 2));
//! assert_eq!(feature.dims(), &[1, 16, 4, 4]);
//! ```

#![warn(missing_docs)]

mod conv;
mod error;
mod matmul;
mod pool;
mod shape;
mod tensor;

pub use conv::{
    col2im, conv2d, conv2d_backward, depthwise_conv2d, depthwise_conv2d_backward, im2col,
};
pub use error::TensorError;
pub use matmul::{available_threads, matmul_into};
pub use pool::{
    avgpool2d, avgpool2d_backward, global_avg_pool, global_avg_pool_backward, maxpool2d,
    maxpool2d_backward,
};
pub use shape::{ConvGeometry, Shape};
pub use tensor::Tensor;
