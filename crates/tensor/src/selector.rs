//! Shape-keyed GEMM variant selection with a persisted autotune cache.
//!
//! Every GEMM-shaped problem in the crate (matmul, the conv forward's
//! implicit-im2col GEMM, the prepacked serving paths) asks this module which
//! kernel variant to run, keyed on `(op, layout, m, k, n, threads)`. A
//! variant is a *schedule*: either the no-pack direct loops, or the blocked
//! packed kernel with a concrete `(MC, NC)` cache-block pair, plus a
//! parallelize-or-not hint. `KC` is never part of the variant space — the
//! k-panel depth fixes the floating-point accumulation order, and holding it
//! constant is what keeps every schedule in a family bitwise-comparable (see
//! "Determinism" below).
//!
//! ## Modes (`NB_AUTOTUNE`)
//!
//! - `off` — always return [`default_variant`], a pure function of the shape
//!   that reproduces the crate's pre-autotune dispatch exactly. CI and
//!   nb-verify pin this mode so reference runs are reproducible anywhere.
//! - `on` — on a cache miss, micro-benchmark the candidate variants for that
//!   key, remember the winner, and persist it to the JSON cache file.
//! - unset — read-only: use the cache file if it has an entry for the key,
//!   otherwise fall back to the deterministic default. Never benchmarks,
//!   never writes.
//!
//! The cache lives at `$NB_AUTOTUNE_CACHE`, else `~/.cache/nb-autotune.json`
//! (else the temp dir). Malformed files or entries are ignored, not errors:
//! autotuning is a performance feature and must never change correctness.
//!
//! ## Determinism
//!
//! Selection is memoized per process, so a key resolves to one variant for
//! the whole run even if the cache file changes underneath. The `threads`
//! key component is the *pool width* ([`crate::threadpool`]), not the capped
//! width, so `with_thread_cap` re-runs (the width-invariance tests) resolve
//! identically. Within the blocked family, `(MC, NC)` and the parallel hint
//! only reorder *which* output tiles are computed when — per-element
//! accumulation order is fixed by `KC` — so every blocked variant of a shape
//! produces identical bits; only `Direct` differs, exactly as the naive
//! small-problem path always has.

use crate::threadpool;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Which kernel family a GEMM-shaped problem comes from. Conv keeps its own
/// key namespace so tuning can specialize for the implicit-im2col operand
/// (whose packing cost differs from a plain matrix), while both conv
/// executors (direct and `CompiledPlan`) share one namespace and therefore
/// always agree on a variant — a prerequisite for the plan/infer and
/// implicit/explicit bitwise parity suites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Plain matrix multiply (matmul variants, linear layers, conv backward).
    Gemm,
    /// The conv forward GEMM: `[c_out, c_in*kh*kw] x [c_in*kh*kw, ho*wo]`.
    Conv,
    /// Int8 linear-layer GEMM ([`crate::qgemm`]). Exact integer accumulation
    /// makes every variant bitwise identical, so tuning here is purely a
    /// speed decision: scalar vs SIMD tile kernel, column-split or not.
    QGemm,
    /// Int8 conv forward GEMM over the virtual u8 im2col view.
    QConv,
    /// f32 depthwise forward ([`crate::depthwise`]), keyed
    /// `(c, kh*kw, ho*wo)`. Not a GEMM: `Direct` is the scalar stencil,
    /// any `Blocked` schedule the AVX2 row-strip kernel (block geometry
    /// ignored). Both produce identical bits, so tuning is speed-only.
    Depthwise,
    /// Int8 depthwise forward; same variant semantics as [`Op::Depthwise`].
    QDepthwise,
}

impl Op {
    fn tag(self) -> &'static str {
        match self {
            Op::Gemm => "gemm",
            Op::Conv => "conv",
            Op::QGemm => "qgemm",
            Op::QConv => "qconv",
            Op::Depthwise => "dw",
            Op::QDepthwise => "qdw",
        }
    }

    fn quantized(self) -> bool {
        matches!(self, Op::QGemm | Op::QConv | Op::QDepthwise)
    }
}

/// Operand storage layout: which of the two operands is read transposed.
/// The pack routines specialize on this, so it is part of the key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layout {
    /// Both operands row-major.
    NN,
    /// Right operand stored transposed (`matmul_nt`, conv `dW`).
    NT,
    /// Left operand stored transposed (`matmul_tn`, conv `dX`).
    TN,
    /// Both operands stored transposed.
    TT,
}

impl Layout {
    pub(crate) fn from_trans(a_trans: bool, b_trans: bool) -> Self {
        match (a_trans, b_trans) {
            (false, false) => Layout::NN,
            (false, true) => Layout::NT,
            (true, false) => Layout::TN,
            (true, true) => Layout::TT,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Layout::NN => "nn",
            Layout::NT => "nt",
            Layout::TN => "tn",
            Layout::TT => "tt",
        }
    }
}

/// Cache-block schedule. `Direct` is the no-pack naive path (tiny problems
/// and tiny-`k` shapes where packing traffic outweighs the blocked kernel);
/// `Blocked` is the packed BLIS-style kernel with the given `(MC, NC)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Schedule {
    /// No-pack naive loops.
    Direct,
    /// Packed BLIS-style kernel with the given cache-block geometry.
    Blocked {
        /// Rows of A per L2-resident block (multiple of `MR`).
        mc: usize,
        /// Columns of B per packed strip (multiple of `NR`).
        nc: usize,
    },
}

/// A fully resolved kernel choice for one shape key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Variant {
    /// Which kernel schedule to run.
    pub schedule: Schedule,
    /// Row-split across the worker pool. A hint, not a bit contract: the
    /// parallel split is `MR`-aligned and each chunk runs the full blocked
    /// algorithm, so bits never depend on this flag.
    pub parallel: bool,
}

impl Variant {
    /// Canonical string form, used in the JSON cache and in bench metadata.
    pub fn name(&self) -> String {
        let mut s = match self.schedule {
            Schedule::Direct => "direct".to_string(),
            Schedule::Blocked { mc, nc } => format!("blocked:mc{mc}:nc{nc}"),
        };
        if self.parallel {
            s.push_str(":par");
        }
        s
    }

    fn parse(s: &str) -> Option<Variant> {
        let (body, parallel) = match s.strip_suffix(":par") {
            Some(b) => (b, true),
            None => (s, false),
        };
        if body == "direct" {
            return Some(Variant {
                schedule: Schedule::Direct,
                parallel,
            });
        }
        let rest = body.strip_prefix("blocked:mc")?;
        let (mc_s, nc_s) = rest.split_once(":nc")?;
        let (mc, nc) = (mc_s.parse().ok()?, nc_s.parse().ok()?);
        // Reject geometry the packed kernel cannot run: MC must stay
        // MR-aligned (prepacked A slabs are indexed by MR sliver) and NC
        // NR-aligned (prepacked B slabs by NR sliver); the caps bound the
        // pack scratch.
        let ok = mc % crate::gemm::MR == 0
            && nc % crate::gemm::NR == 0
            && (crate::gemm::MR..=512).contains(&mc)
            && (crate::gemm::NR..=512).contains(&nc);
        ok.then_some(Variant {
            schedule: Schedule::Blocked { mc, nc },
            parallel,
        })
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Full selector key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Key {
    op: Op,
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
}

impl Key {
    fn render(&self) -> String {
        format!(
            "{}:{}:{}x{}x{}:t{}",
            self.op.tag(),
            self.layout.tag(),
            self.m,
            self.k,
            self.n,
            self.threads
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Off,
    ReadCache,
    Tune,
}

fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("NB_AUTOTUNE").as_deref() {
        Ok("off") | Ok("0") => Mode::Off,
        Ok("on") | Ok("1") => Mode::Tune,
        _ => Mode::ReadCache,
    })
}

thread_local! {
    /// Depth of nested [`with_autotune_off`] scopes on this thread.
    static FORCE_OFF: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Runs `f` with autotuning disabled on this thread: every selection inside
/// resolves to [`default_variant`] regardless of `NB_AUTOTUNE` or cache
/// contents. This is how nb-verify pins its reference executions.
pub fn with_autotune_off<R>(f: impl FnOnce() -> R) -> R {
    FORCE_OFF.with(|c| c.set(c.get() + 1));
    let result = f();
    FORCE_OFF.with(|c| c.set(c.get() - 1));
    result
}

/// The deterministic fallback: a pure function of the shape reproducing the
/// crate's fixed pre-autotune dispatch (naive under the small-problem cutoff,
/// the standard `MC=64 / NC=256` blocked schedule above it, parallel once the
/// problem clears the pool-dispatch threshold).
pub fn default_variant(m: usize, k: usize, n: usize) -> Variant {
    let mnk = m * n * k;
    if mnk < crate::gemm::SMALL_MNK {
        Variant {
            schedule: Schedule::Direct,
            parallel: false,
        }
    } else {
        Variant {
            schedule: Schedule::Blocked {
                mc: crate::gemm::MC_STD,
                nc: crate::gemm::NC_STD,
            },
            parallel: mnk >= crate::gemm::PARALLEL_MNK,
        }
    }
}

/// Picks the kernel variant for one GEMM-shaped problem. Degenerate shapes
/// (`m`, `n`, or `k` of zero) never reach selection — callers handle them
/// before dispatch.
pub fn select(op: Op, layout: Layout, m: usize, k: usize, n: usize) -> Variant {
    if FORCE_OFF.with(|c| c.get()) > 0 || mode() == Mode::Off {
        return default_variant(m, k, n);
    }
    let key = Key {
        op,
        layout,
        m,
        k,
        n,
        threads: threadpool::pool_width(),
    };
    let memo = memo().lock().unwrap_or_else(|e| e.into_inner());
    let mut memo = memo;
    if let Some(v) = memo.get(&key) {
        return *v;
    }
    let v = match mode() {
        Mode::Off => unreachable!("handled above"),
        Mode::ReadCache => cache_lookup(&key).unwrap_or_else(|| default_variant(m, k, n)),
        Mode::Tune => cache_lookup(&key).unwrap_or_else(|| {
            let winner = tune(&key);
            persist(&key, winner, &memo);
            winner
        }),
    };
    memo.insert(key, v);
    v
}

/// Variant name the selector would use for this problem right now — what
/// `bench_kernels` records as per-shape metadata.
pub fn describe(op: Op, a_trans: bool, b_trans: bool, m: usize, k: usize, n: usize) -> String {
    select(op, Layout::from_trans(a_trans, b_trans), m, k, n).name()
}

fn memo() -> &'static Mutex<HashMap<Key, Variant>> {
    static MEMO: OnceLock<Mutex<HashMap<Key, Variant>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

// ---------------------------------------------------------------------------
// Persisted cache
// ---------------------------------------------------------------------------

/// Resolved cache file path: `$NB_AUTOTUNE_CACHE`, `~/.cache/nb-autotune.json`,
/// or `<tmp>/nb-autotune.json`.
pub fn cache_path() -> PathBuf {
    if let Ok(p) = std::env::var("NB_AUTOTUNE_CACHE") {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    match std::env::var("HOME") {
        Ok(home) if !home.is_empty() => PathBuf::from(home).join(".cache/nb-autotune.json"),
        _ => std::env::temp_dir().join("nb-autotune.json"),
    }
}

fn cache_file() -> &'static HashMap<String, Variant> {
    static CACHE: OnceLock<HashMap<String, Variant>> = OnceLock::new();
    CACHE.get_or_init(|| {
        std::fs::read_to_string(cache_path())
            .ok()
            .map(|text| parse_cache(&text))
            .unwrap_or_default()
    })
}

fn cache_lookup(key: &Key) -> Option<Variant> {
    cache_file().get(&key.render()).copied()
}

/// Extracts `"key": "variant"` string pairs from the cache JSON. Scanning
/// instead of full JSON parsing: keys and variant names never contain escapes
/// or nested quotes, and any pair that fails [`Variant::parse`] is dropped.
fn parse_cache(text: &str) -> HashMap<String, Variant> {
    let mut out = HashMap::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let first = &after[..end];
        let mut tail = after[end + 1..].trim_start();
        if let Some(t) = tail.strip_prefix(':') {
            tail = t.trim_start();
            if let Some(t) = tail.strip_prefix('"') {
                if let Some(vend) = t.find('"') {
                    if let Some(v) = Variant::parse(&t[..vend]) {
                        out.insert(first.to_string(), v);
                    }
                    rest = &t[vend + 1..];
                    continue;
                }
            }
        }
        rest = tail;
    }
    out
}

/// Writes the merged cache (file contents + this process's tuned winners +
/// the new entry) back to the cache file. Failures are swallowed: the winner
/// is already memoized for this process.
fn persist(key: &Key, winner: Variant, memo: &HashMap<Key, Variant>) {
    let mut entries: Vec<(String, Variant)> =
        cache_file().iter().map(|(k, v)| (k.clone(), *v)).collect();
    for (k, v) in memo {
        entries.push((k.render(), *v));
    }
    entries.push((key.render(), winner));
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries.dedup_by(|a, b| a.0 == b.0);
    let mut json = String::from("{\n  \"version\": 1,\n  \"entries\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{}\": \"{}\"{}\n", k, v.name(), sep));
    }
    json.push_str("  }\n}\n");
    let path = cache_path();
    let _ = (|| -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("json.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    })();
}

// ---------------------------------------------------------------------------
// Micro-benchmark autotuner
// ---------------------------------------------------------------------------

/// Candidate variants for a key: the deterministic default, the no-pack
/// direct path where packing could plausibly lose (tiny `k` or a small
/// problem), the small-shape blocked schedule for the ≤64 dimensions tiny
/// models live in, and a wide-`MC` schedule for larger problems — each with
/// a parallel twin when the pool is wider than one thread.
fn candidates(key: &Key) -> Vec<Variant> {
    let (m, k, n) = (key.m, key.k, key.n);
    let mnk = m * n * k;
    let mut scheds = vec![Schedule::Blocked {
        mc: crate::gemm::MC_STD,
        nc: crate::gemm::NC_STD,
    }];
    // Small-shape schedule: both blocks resident in L1 for the ≤64 sizes.
    scheds.push(Schedule::Blocked { mc: 32, nc: 64 });
    if m > crate::gemm::MC_STD {
        scheds.push(Schedule::Blocked { mc: 128, nc: 256 });
    }
    if k <= 8 || mnk <= 2 * crate::gemm::SMALL_MNK {
        scheds.push(Schedule::Direct);
    }
    let mut out = Vec::with_capacity(scheds.len() * 2);
    for sched in scheds {
        out.push(Variant {
            schedule: sched,
            parallel: false,
        });
        if key.threads > 1 && m >= 2 * crate::gemm::MR && mnk >= 1 << 15 {
            out.push(Variant {
                schedule: sched,
                parallel: true,
            });
        }
    }
    out
}

/// Times each quantized candidate on synthetic u8/i8 operands; the quant
/// twin of [`tune`]. Results are bitwise identical across variants (exact
/// integer accumulation), so only the clock distinguishes them.
fn tune_quant(key: &Key) -> Variant {
    let (m, k, n) = (key.m, key.k, key.n);
    let fill = |len: usize, salt: u64| -> Vec<f32> {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    };
    let w = fill(m * k, 0x9e3779b9);
    let x = fill(k * n, 0x7f4a7c15);
    let wq = crate::qgemm::QPackedW::pack(&w, m, k);
    let x_scale = crate::qgemm::activation_scale(crate::qgemm::max_abs(&x));
    let mut qx = vec![0u8; k * n];
    crate::qgemm::quantize_activations(&x, x_scale, &mut qx);
    let mut c = vec![0.0f32; m * n];
    let cands = candidates(key);
    let flops = (2 * m * n * k).max(1) as u64;
    let reps = (2_000_000 / flops).clamp(2, 64) as usize;
    let mut best = (u128::MAX, cands[0]);
    for &cand in &cands {
        let bop = crate::qgemm::QBOperand::Mat {
            b: &qx,
            trans: false,
        };
        let run = |c: &mut [f32]| {
            crate::qgemm::run_qgemm_variant(
                cand,
                &wq,
                &bop,
                c,
                n,
                x_scale,
                None,
                crate::eltwise::Epilogue::None,
            )
        };
        run(&mut c);
        let mut elapsed = u128::MAX;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                run(&mut c);
            }
            elapsed = elapsed.min(t0.elapsed().as_nanos());
        }
        if elapsed < best.0 {
            best = (elapsed, cand);
        }
    }
    best.1
}

/// Times each candidate on synthetic operands of the key's shape and returns
/// the fastest (deterministic tie-break: first winner in candidate order).
fn tune(key: &Key) -> Variant {
    // Depthwise keys are not GEMM-shaped: their own tuner times the real
    // stencil kernel. Must run before the quantized dispatch below, which
    // would otherwise benchmark an m x k GEMM that never executes.
    match key.op {
        Op::Depthwise => return crate::depthwise::tune_depthwise(false, key.m, key.k, key.n),
        Op::QDepthwise => return crate::depthwise::tune_depthwise(true, key.m, key.k, key.n),
        _ => {}
    }
    if key.op.quantized() {
        return tune_quant(key);
    }
    let (m, k, n) = (key.m, key.k, key.n);
    let (a_trans, b_trans) = match key.layout {
        Layout::NN => (false, false),
        Layout::NT => (false, true),
        Layout::TN => (true, false),
        Layout::TT => (true, true),
    };
    // Deterministic pseudo-random fill; the values only need to defeat
    // trivial constant-folding, not model real data.
    let fill = |len: usize, salt: u64| -> Vec<f32> {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    };
    let a = fill(m * k, 0x9e3779b9);
    let b = fill(k * n, 0x7f4a7c15);
    let mut c = vec![0.0f32; m * n];
    let cands = candidates(key);
    // Budget: enough repetitions to get past timer noise on small shapes,
    // bounded so a cold cache warms in well under a second per key.
    let flops = (2 * m * n * k).max(1) as u64;
    let reps = (2_000_000 / flops).clamp(2, 64) as usize;
    let mut best = (u128::MAX, cands[0]);
    for &cand in &cands {
        // Warm the instruction path and scratch buffers once, untimed.
        crate::gemm::run_gemm_variant(cand, &a, a_trans, &b, b_trans, &mut c, m, k, n, None, false);
        let mut elapsed = u128::MAX;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                crate::gemm::run_gemm_variant(
                    cand, &a, a_trans, &b, b_trans, &mut c, m, k, n, None, false,
                );
            }
            elapsed = elapsed.min(t0.elapsed().as_nanos());
        }
        if elapsed < best.0 {
            best = (elapsed, cand);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_variant_mirrors_legacy_dispatch() {
        // Below the small cutoff: direct.
        let v = default_variant(8, 8, 8);
        assert_eq!(v.schedule, Schedule::Direct);
        assert!(!v.parallel);
        // Mid-size: standard blocked, serial.
        let v = default_variant(64, 64, 16);
        assert_eq!(
            v.schedule,
            Schedule::Blocked {
                mc: crate::gemm::MC_STD,
                nc: crate::gemm::NC_STD
            }
        );
        assert!(!v.parallel);
        // Large: standard blocked, parallel.
        let v = default_variant(128, 128, 128);
        assert!(v.parallel);
    }

    #[test]
    fn variant_name_roundtrips() {
        for v in [
            Variant {
                schedule: Schedule::Direct,
                parallel: false,
            },
            Variant {
                schedule: Schedule::Direct,
                parallel: true,
            },
            Variant {
                schedule: Schedule::Blocked { mc: 64, nc: 256 },
                parallel: false,
            },
            Variant {
                schedule: Schedule::Blocked { mc: 32, nc: 64 },
                parallel: true,
            },
        ] {
            assert_eq!(Variant::parse(&v.name()), Some(v), "{}", v.name());
        }
        // Invalid geometry is rejected, not trusted.
        assert_eq!(Variant::parse("blocked:mc3:nc256"), None);
        assert_eq!(Variant::parse("blocked:mc64:nc12"), None);
        assert_eq!(Variant::parse("blocked:mc4096:nc256"), None);
        assert_eq!(Variant::parse("banana"), None);
    }

    #[test]
    fn cache_parser_extracts_valid_pairs() {
        let text = r#"{
  "version": 1,
  "entries": {
    "gemm:nn:64x64x64:t2": "blocked:mc32:nc64",
    "conv:nn:16x144x576:t2": "blocked:mc64:nc256:par",
    "gemm:nn:8x8x8:t2": "direct",
    "gemm:nn:1x1x1:t2": "blocked:mc5:nc7"
  }
}"#;
        let map = parse_cache(text);
        assert_eq!(map.len(), 3, "invalid geometry entry must be dropped");
        assert_eq!(
            map["gemm:nn:64x64x64:t2"],
            Variant {
                schedule: Schedule::Blocked { mc: 32, nc: 64 },
                parallel: false
            }
        );
        assert_eq!(
            map["conv:nn:16x144x576:t2"],
            Variant {
                schedule: Schedule::Blocked { mc: 64, nc: 256 },
                parallel: true
            }
        );
        assert_eq!(
            map["gemm:nn:8x8x8:t2"],
            Variant {
                schedule: Schedule::Direct,
                parallel: false
            }
        );
    }

    #[test]
    fn forced_off_overrides_everything() {
        with_autotune_off(|| {
            let v = select(Op::Gemm, Layout::NN, 128, 128, 128);
            assert_eq!(v, default_variant(128, 128, 128));
        });
    }

    #[test]
    fn selection_is_memoized_and_stable() {
        let a = select(Op::Conv, Layout::NN, 16, 144, 576);
        for _ in 0..4 {
            assert_eq!(a, select(Op::Conv, Layout::NN, 16, 144, 576));
        }
    }
}
