//! Error types for fallible tensor construction and I/O.

use crate::Shape;
use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor constructors and serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided buffer length does not match the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
        /// The requested shape.
        shape: Shape,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// First shape.
        lhs: Shape,
        /// Second shape.
        rhs: Shape,
        /// The operation that required agreement.
        op: &'static str,
    },
    /// A serialized tensor stream was malformed.
    Corrupt(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch {
                expected,
                got,
                shape,
            } => write!(
                f,
                "buffer of {got} elements cannot be viewed as {shape} ({expected} elements)"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::Corrupt(msg) => write!(f, "corrupt tensor stream: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            got: 5,
            shape: Shape::new(vec![2, 3]),
        };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('6') && msg.contains("[2x3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<TensorError>();
    }
}
