//! 2-D convolution kernels: im2col lowering, dense and depthwise variants,
//! and their gradients.
//!
//! Layout conventions:
//! - activations: `NCHW`
//! - dense conv weights: `[c_out, c_in, kh, kw]`
//! - depthwise conv weights: `[c, kh, kw]` (one filter per channel)
//! - biases: `[c_out]`
//!
//! Dense convolution is lowered to matrix multiplication via
//! [`im2col`]; gradients re-lower with [`col2im`]. Depthwise convolution is
//! computed directly. Both parallelize over the batch dimension.

use crate::matmul::{available_threads, matmul_into};
use crate::{ConvGeometry, Tensor};

/// Unfolds one image `[c, h, w]` into a `[c*kh*kw, ho*wo]` column matrix.
///
/// `x` is the flat slice of one sample; `cols` must have length
/// `c * kh * kw * ho * wo` and is fully overwritten.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
pub fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
    cols: &mut [f32],
) {
    let (ho, wo) = geom.output_hw(h, w);
    assert_eq!(x.len(), c * h * w, "im2col input length");
    assert_eq!(
        cols.len(),
        c * geom.kh * geom.kw * ho * wo,
        "im2col output length"
    );
    let out_hw = ho * wo;
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &x[ci * h * w..(ci + 1) * h * w];
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let dst = &mut cols[row * out_hw..(row + 1) * out_hw];
                row += 1;
                for oi in 0..ho {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    let dst_row = &mut dst[oi * wo..(oi + 1) * wo];
                    if ii < 0 || ii >= h as isize {
                        dst_row.iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    let src_row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    for (oj, v) in dst_row.iter_mut().enumerate() {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        *v = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Folds a `[c*kh*kw, ho*wo]` column-gradient matrix back onto an image
/// gradient `[c, h, w]`, accumulating overlapping contributions.
///
/// `dx` must have length `c * h * w`; it is fully overwritten.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
pub fn col2im(
    dcols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
    dx: &mut [f32],
) {
    let (ho, wo) = geom.output_hw(h, w);
    assert_eq!(dx.len(), c * h * w, "col2im output length");
    assert_eq!(
        dcols.len(),
        c * geom.kh * geom.kw * ho * wo,
        "col2im input length"
    );
    dx.iter_mut().for_each(|v| *v = 0.0);
    let out_hw = ho * wo;
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &mut dx[ci * h * w..(ci + 1) * h * w];
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let src = &dcols[row * out_hw..(row + 1) * out_hw];
                row += 1;
                for oi in 0..ho {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let dst_row = &mut plane[ii as usize * w..(ii as usize + 1) * w];
                    let src_row = &src[oi * wo..(oi + 1) * wo];
                    for (oj, &g) in src_row.iter().enumerate() {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj >= 0 && jj < w as isize {
                            dst_row[jj as usize] += g;
                        }
                    }
                }
            }
        }
    }
}

fn conv_shapes(x: &Tensor, w: &Tensor, geom: ConvGeometry) -> (usize, usize, usize, usize, usize, usize, usize) {
    let (n, c_in, h, wd) = x.shape().nchw();
    let wd4 = w.dims();
    assert_eq!(wd4.len(), 4, "conv weight must be [c_out,c_in,kh,kw]");
    let (c_out, wc_in, kh, kw) = (wd4[0], wd4[1], wd4[2], wd4[3]);
    assert_eq!(
        wc_in, c_in,
        "conv channel mismatch: input {} vs weight {}",
        x.shape(),
        w.shape()
    );
    assert_eq!((kh, kw), (geom.kh, geom.kw), "weight kernel vs geometry");
    let (ho, wo) = geom.output_hw(h, wd);
    (n, c_in, h, wd, c_out, ho, wo)
}

/// Dense 2-D convolution (cross-correlation, as in every DL framework).
///
/// # Panics
///
/// Panics on any shape inconsistency between `x` `[n,c_in,h,w]`, `w`
/// `[c_out,c_in,kh,kw]`, `b` `[c_out]`, and `geom`.
pub fn conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
    let (n, c_in, h, wd, c_out, ho, wo) = conv_shapes(x, w, geom);
    if let Some(b) = b {
        assert_eq!(b.dims(), &[c_out], "conv bias shape");
    }
    let mut out = Tensor::zeros([n, c_out, ho, wo]);
    let in_sz = c_in * h * wd;
    let out_sz = c_out * ho * wo;
    let col_rows = c_in * geom.kh * geom.kw;
    let xs = x.as_slice();
    let ws = w.as_slice();
    let bias = b.map(Tensor::as_slice);
    let threads = available_threads().min(n.max(1));
    let per = n.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (blk, o_chunk) in out.as_mut_slice().chunks_mut(per * out_sz).enumerate() {
            let n0 = blk * per;
            s.spawn(move |_| {
                let mut cols = vec![0.0f32; col_rows * ho * wo];
                for (local, o_sample) in o_chunk.chunks_mut(out_sz).enumerate() {
                    let ni = n0 + local;
                    im2col(&xs[ni * in_sz..(ni + 1) * in_sz], c_in, h, wd, geom, &mut cols);
                    matmul_into(ws, &cols, o_sample, c_out, col_rows, ho * wo);
                    if let Some(bias) = bias {
                        for (co, ob) in o_sample.chunks_mut(ho * wo).enumerate() {
                            let bv = bias[co];
                            ob.iter_mut().for_each(|v| *v += bv);
                        }
                    }
                }
            });
        }
    })
    .expect("conv2d worker panicked");
    out
}

/// Gradients of [`conv2d`] with respect to input, weight, and bias.
///
/// Returns `(dx, dw, db)`; `db` is present iff `has_bias`.
///
/// # Panics
///
/// Panics on shape inconsistencies (same contract as [`conv2d`]).
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    geom: ConvGeometry,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c_in, h, wd, c_out, ho, wo) = conv_shapes(x, w, geom);
    assert_eq!(dy.dims(), &[n, c_out, ho, wo], "conv2d_backward dy shape");
    let col_rows = c_in * geom.kh * geom.kw;
    let in_sz = c_in * h * wd;
    let out_sz = c_out * ho * wo;
    let xs = x.as_slice();
    let dys = dy.as_slice();

    let mut dx = Tensor::zeros(x.shape().clone());
    let threads = available_threads().min(n.max(1));
    let per = n.div_ceil(threads);
    // W as [c_out, col_rows] matrix for dcols = W^T * dY.
    let w_mat = w.reshape([c_out, col_rows]);

    let partials: Vec<(Tensor, Tensor)> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (blk, dx_chunk) in dx.as_mut_slice().chunks_mut(per * in_sz).enumerate() {
            let n0 = blk * per;
            let w_mat = &w_mat;
            handles.push(s.spawn(move |_| {
                let mut dw_part = Tensor::zeros([c_out, col_rows]);
                let mut db_part = Tensor::zeros([c_out]);
                let mut cols = vec![0.0f32; col_rows * ho * wo];
                for (local, dx_sample) in dx_chunk.chunks_mut(in_sz).enumerate() {
                    let ni = n0 + local;
                    let dy_s = &dys[ni * out_sz..(ni + 1) * out_sz];
                    // dW += dY * cols^T
                    im2col(&xs[ni * in_sz..(ni + 1) * in_sz], c_in, h, wd, geom, &mut cols);
                    {
                        let dwp = dw_part.as_mut_slice();
                        for co in 0..c_out {
                            let dy_row = &dy_s[co * ho * wo..(co + 1) * ho * wo];
                            let dw_row = &mut dwp[co * col_rows..(co + 1) * col_rows];
                            for (r, dw_v) in dw_row.iter_mut().enumerate() {
                                let col_row = &cols[r * ho * wo..(r + 1) * ho * wo];
                                let mut acc = 0.0f32;
                                for (a, b) in dy_row.iter().zip(col_row) {
                                    acc += a * b;
                                }
                                *dw_v += acc;
                            }
                        }
                    }
                    if has_bias {
                        let dbp = db_part.as_mut_slice();
                        for co in 0..c_out {
                            let dy_row = &dy_s[co * ho * wo..(co + 1) * ho * wo];
                            dbp[co] += dy_row.iter().sum::<f32>();
                        }
                    }
                    // dcols = W^T * dY, then fold back to dx.
                    let dy_mat = Tensor::from_vec(dy_s.to_vec(), [c_out, ho * wo])
                        .expect("dy sample shape");
                    let dcols = w_mat.matmul_tn(&dy_mat);
                    col2im(dcols.as_slice(), c_in, h, wd, geom, dx_sample);
                }
                (dw_part, db_part)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("conv2d_backward worker panicked")).collect()
    })
    .expect("conv2d_backward scope failed");

    let mut dw = Tensor::zeros([c_out, col_rows]);
    let mut db = Tensor::zeros([c_out]);
    for (dw_p, db_p) in partials {
        dw.add_assign(&dw_p);
        db.add_assign(&db_p);
    }
    let dw = dw.into_reshape(w.shape().clone());
    (dx, dw, if has_bias { Some(db) } else { None })
}

fn dw_shapes(x: &Tensor, w: &Tensor, geom: ConvGeometry) -> (usize, usize, usize, usize, usize, usize) {
    let (n, c, h, wd) = x.shape().nchw();
    let wdims = w.dims();
    assert_eq!(wdims.len(), 3, "depthwise weight must be [c,kh,kw]");
    assert_eq!(wdims[0], c, "depthwise channel mismatch");
    assert_eq!((wdims[1], wdims[2]), (geom.kh, geom.kw), "depthwise kernel vs geometry");
    let (ho, wo) = geom.output_hw(h, wd);
    (n, c, h, wd, ho, wo)
}

/// Depthwise 2-D convolution: each channel is filtered independently.
///
/// # Panics
///
/// Panics on shape inconsistencies between `x` `[n,c,h,w]`, `w` `[c,kh,kw]`,
/// `b` `[c]`, and `geom`.
pub fn depthwise_conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
    let (n, c, h, wd, ho, wo) = dw_shapes(x, w, geom);
    if let Some(b) = b {
        assert_eq!(b.dims(), &[c], "depthwise bias shape");
    }
    let mut out = Tensor::zeros([n, c, ho, wo]);
    let xs = x.as_slice();
    let ws = w.as_slice();
    let bias = b.map(Tensor::as_slice);
    let in_sz = c * h * wd;
    let out_sz = c * ho * wo;
    let threads = available_threads().min(n.max(1));
    let per = n.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (blk, o_chunk) in out.as_mut_slice().chunks_mut(per * out_sz).enumerate() {
            let n0 = blk * per;
            s.spawn(move |_| {
                for (local, o_sample) in o_chunk.chunks_mut(out_sz).enumerate() {
                    let ni = n0 + local;
                    let x_s = &xs[ni * in_sz..(ni + 1) * in_sz];
                    for ci in 0..c {
                        let plane = &x_s[ci * h * wd..(ci + 1) * h * wd];
                        let ker = &ws[ci * geom.kh * geom.kw..(ci + 1) * geom.kh * geom.kw];
                        let o_plane = &mut o_sample[ci * ho * wo..(ci + 1) * ho * wo];
                        let bv = bias.map(|b| b[ci]).unwrap_or(0.0);
                        for oi in 0..ho {
                            for oj in 0..wo {
                                let mut acc = bv;
                                for ki in 0..geom.kh {
                                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                                    if ii < 0 || ii >= h as isize {
                                        continue;
                                    }
                                    for kj in 0..geom.kw {
                                        let jj =
                                            (oj * geom.sw + kj) as isize - geom.pw as isize;
                                        if jj < 0 || jj >= wd as isize {
                                            continue;
                                        }
                                        acc += plane[ii as usize * wd + jj as usize]
                                            * ker[ki * geom.kw + kj];
                                    }
                                }
                                o_plane[oi * wo + oj] = acc;
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("depthwise worker panicked");
    out
}

/// Gradients of [`depthwise_conv2d`]; returns `(dx, dw, db)`.
///
/// # Panics
///
/// Panics on shape inconsistencies (same contract as [`depthwise_conv2d`]).
pub fn depthwise_conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    geom: ConvGeometry,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c, h, wd, ho, wo) = dw_shapes(x, w, geom);
    assert_eq!(dy.dims(), &[n, c, ho, wo], "depthwise backward dy shape");
    let xs = x.as_slice();
    let ws = w.as_slice();
    let dys = dy.as_slice();
    let mut dx = Tensor::zeros(x.shape().clone());
    let mut dw = Tensor::zeros(w.shape().clone());
    let mut db = Tensor::zeros([c]);
    {
        let dxs = dx.as_mut_slice();
        let dws = dw.as_mut_slice();
        let dbs = db.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let plane = &xs[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
                let dplane = &mut dxs[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
                let ker = &ws[ci * geom.kh * geom.kw..(ci + 1) * geom.kh * geom.kw];
                let dker = &mut dws[ci * geom.kh * geom.kw..(ci + 1) * geom.kh * geom.kw];
                let dy_plane = &dys[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo];
                for oi in 0..ho {
                    for oj in 0..wo {
                        let g = dy_plane[oi * wo + oj];
                        if g == 0.0 {
                            continue;
                        }
                        dbs[ci] += g;
                        for ki in 0..geom.kh {
                            let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..geom.kw {
                                let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xi = ii as usize * wd + jj as usize;
                                dker[ki * geom.kw + kj] += g * plane[xi];
                                dplane[xi] += g * ker[ki * geom.kw + kj];
                            }
                        }
                    }
                }
            }
        }
    }
    (dx, dw, if has_bias { Some(db) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct O(n^7) reference convolution.
    fn conv_ref(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
        let (n, c_in, h, wd) = x.shape().nchw();
        let (c_out, _, kh, kw) = {
            let d = w.dims();
            (d[0], d[1], d[2], d[3])
        };
        let (ho, wo) = geom.output_hw(h, wd);
        let mut out = Tensor::zeros([n, c_out, ho, wo]);
        for ni in 0..n {
            for co in 0..c_out {
                for oi in 0..ho {
                    for oj in 0..wo {
                        let mut acc = b.map(|b| b.as_slice()[co]).unwrap_or(0.0);
                        for ci in 0..c_in {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                                    let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= wd as isize {
                                        continue;
                                    }
                                    acc += x.at4(ni, ci, ii as usize, jj as usize)
                                        * w.as_slice()
                                            [((co * c_in + ci) * kh + ki) * kw + kj];
                                }
                            }
                        }
                        *out.at4_mut(ni, co, oi, oj) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(k, s, p) in &[(1usize, 1usize, 0usize), (3, 1, 1), (3, 2, 1), (5, 1, 2), (5, 2, 2), (7, 1, 3)] {
            let geom = ConvGeometry::square(k, s, p);
            let x = Tensor::randn([2, 3, 9, 9], &mut rng);
            let w = Tensor::randn([4, 3, k, k], &mut rng);
            let b = Tensor::randn([4], &mut rng);
            let got = conv2d(&x, &w, Some(&b), geom);
            let want = conv_ref(&x, &w, Some(&b), geom);
            assert!(
                got.allclose(&want, 1e-3),
                "k={k} s={s} p={p} max diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn conv_no_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom = ConvGeometry::same(3, 1);
        let x = Tensor::randn([1, 2, 5, 5], &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], &mut rng);
        assert!(conv2d(&x, &w, None, geom).allclose(&conv_ref(&x, &w, None, geom), 1e-4));
    }

    #[test]
    fn pointwise_equals_per_pixel_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn([1, 4, 3, 3], &mut rng);
        let w = Tensor::randn([5, 4, 1, 1], &mut rng);
        let y = conv2d(&x, &w, None, ConvGeometry::pointwise());
        // check one pixel by hand
        for co in 0..5 {
            let mut acc = 0.0;
            for ci in 0..4 {
                acc += x.at4(0, ci, 1, 2) * w.as_slice()[co * 4 + ci];
            }
            assert!((y.at4(0, co, 1, 2) - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), c> == <x, col2im(c)> : the fold is the exact adjoint of
        // the unfold, which is what the gradient path relies on.
        let mut rng = StdRng::seed_from_u64(4);
        let geom = ConvGeometry::square(3, 2, 1);
        let (c, h, w) = (2usize, 7usize, 6usize);
        let (ho, wo) = geom.output_hw(h, w);
        let x = Tensor::randn([c * h * w], &mut rng);
        let cvec = Tensor::randn([c * 9 * ho * wo], &mut rng);
        let mut cols = vec![0.0; c * 9 * ho * wo];
        im2col(x.as_slice(), c, h, w, geom, &mut cols);
        let lhs: f32 = cols.iter().zip(cvec.as_slice()).map(|(a, b)| a * b).sum();
        let mut dx = vec![0.0; c * h * w];
        col2im(cvec.as_slice(), c, h, w, geom, &mut dx);
        let rhs: f32 = x.as_slice().iter().zip(&dx).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Numerical gradient of a scalar loss sum(conv * dy-weights).
    #[test]
    fn conv_backward_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let geom = ConvGeometry::square(3, 2, 1);
        let x = Tensor::randn([2, 2, 5, 5], &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], &mut rng);
        let b = Tensor::randn([3], &mut rng);
        let y = conv2d(&x, &w, Some(&b), geom);
        let dy = Tensor::randn(y.shape().clone(), &mut rng);
        let (dx, dw, db) = conv2d_backward(&x, &w, &dy, geom, true);
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d(x, w, Some(b), geom)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        // spot-check a handful of coordinates in each gradient
        for &i in &[0usize, 7, 31, 49] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{i}] numeric {num} analytic {}",
                dx.as_slice()[i]
            );
        }
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (num - dw.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dw[{i}] numeric {num} analytic {}",
                dw.as_slice()[i]
            );
        }
        let db = db.unwrap();
        for i in 0..3 {
            let mut bp = b.clone();
            bp.as_mut_slice()[i] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - db.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn depthwise_matches_grouped_dense() {
        // Depthwise conv == dense conv with block-diagonal weights.
        let mut rng = StdRng::seed_from_u64(6);
        let geom = ConvGeometry::same(3, 1);
        let c = 3;
        let x = Tensor::randn([2, c, 6, 6], &mut rng);
        let wd = Tensor::randn([c, 3, 3], &mut rng);
        let mut dense = Tensor::zeros([c, c, 3, 3]);
        for ci in 0..c {
            for ki in 0..3 {
                for kj in 0..3 {
                    dense.as_mut_slice()[((ci * c + ci) * 3 + ki) * 3 + kj] =
                        wd.as_slice()[(ci * 3 + ki) * 3 + kj];
                }
            }
        }
        let got = depthwise_conv2d(&x, &wd, None, geom);
        let want = conv2d(&x, &dense, None, geom);
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn depthwise_k1_is_channel_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn([1, 3, 4, 4], &mut rng);
        let w = Tensor::from_vec(vec![2.0, -1.0, 0.5], [3, 1, 1]).unwrap();
        let y = depthwise_conv2d(&x, &w, None, ConvGeometry::pointwise());
        for ci in 0..3 {
            for hi in 0..4 {
                for wi in 0..4 {
                    assert!(
                        (y.at4(0, ci, hi, wi) - x.at4(0, ci, hi, wi) * w.as_slice()[ci]).abs()
                            < 1e-6
                    );
                }
            }
        }
    }

    #[test]
    fn depthwise_backward_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(8);
        let geom = ConvGeometry::same(3, 2);
        let x = Tensor::randn([2, 2, 5, 5], &mut rng);
        let w = Tensor::randn([2, 3, 3], &mut rng);
        let y = depthwise_conv2d(&x, &w, None, geom);
        let dy = Tensor::randn(y.shape().clone(), &mut rng);
        let (dx, dw, db) = depthwise_conv2d_backward(&x, &w, &dy, geom, false);
        assert!(db.is_none());
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            depthwise_conv2d(x, w, None, geom)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 13, 29, 49] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()));
        }
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_channel_mismatch_panics() {
        let x = Tensor::zeros([1, 3, 4, 4]);
        let w = Tensor::zeros([2, 4, 1, 1]);
        let _ = conv2d(&x, &w, None, ConvGeometry::pointwise());
    }
}
