//! 2-D convolution kernels: im2col lowering, dense and depthwise variants,
//! and their gradients.
//!
//! Layout conventions:
//! - activations: `NCHW`
//! - dense conv weights: `[c_out, c_in, kh, kw]`
//! - depthwise conv weights: `[c, kh, kw]` (one filter per channel)
//! - biases: `[c_out]`
//!
//! Dense convolution *forward* is an implicit GEMM: the weight matrix
//! multiplies the input viewed through a virtual im2col layout
//! ([`crate::gemm::Im2colRef`]), so the GEMM packing loop gathers panel
//! slivers straight out of the image and the `[c_in*kh*kw, ho*wo]` column
//! matrix is never written to memory. The materialized twin
//! ([`conv2d_into_explicit`]) is retained for the differential verification
//! suites, and the *gradients* still lower explicitly through [`im2col`] /
//! [`col2im`] (the backward GEMMs read the column matrix twice, so
//! materializing it once pays for itself). Depthwise convolution is computed
//! directly. All kernels parallelize over the batch dimension on the
//! persistent worker pool, and the backward-path column matrices live in
//! thread-local scratch buffers, so a steady-state training step performs no
//! kernel-side heap allocation beyond the output tensors themselves. The
//! conv bias is fused into the GEMM epilogue rather than added in a second
//! pass.

use crate::eltwise::Epilogue;
use crate::gemm::{
    gemm, gemm_conv_batch, gemm_conv_explicit, gemm_conv_packed, gemm_conv_packed_mat, Im2colRef,
    PackedA,
};
use crate::selector::{self, Schedule};
use crate::threadpool::{self, with_scratch, SharedMut, CONV_COLS, CONV_DCOLS, CONV_DW_PARTS};
use crate::{ConvGeometry, Tensor};

/// Unfolds one image `[c, h, w]` into a `[c*kh*kw, ho*wo]` column matrix.
///
/// `x` is the flat slice of one sample; `cols` must have length
/// `c * kh * kw * ho * wo` and is fully overwritten.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
pub fn im2col(x: &[f32], c: usize, h: usize, w: usize, geom: ConvGeometry, cols: &mut [f32]) {
    let (ho, wo) = geom.output_hw(h, w);
    assert_eq!(x.len(), c * h * w, "im2col input length");
    assert_eq!(
        cols.len(),
        c * geom.kh * geom.kw * ho * wo,
        "im2col output length"
    );
    let out_hw = ho * wo;
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &x[ci * h * w..(ci + 1) * h * w];
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let dst = &mut cols[row * out_hw..(row + 1) * out_hw];
                row += 1;
                for oi in 0..ho {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    let dst_row = &mut dst[oi * wo..(oi + 1) * wo];
                    if ii < 0 || ii >= h as isize {
                        dst_row.iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    let src_row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    for (oj, v) in dst_row.iter_mut().enumerate() {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        *v = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Folds a `[c*kh*kw, ho*wo]` column-gradient matrix back onto an image
/// gradient `[c, h, w]`, accumulating overlapping contributions.
///
/// `dx` must have length `c * h * w`; it is fully overwritten.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the geometry.
pub fn col2im(dcols: &[f32], c: usize, h: usize, w: usize, geom: ConvGeometry, dx: &mut [f32]) {
    let (ho, wo) = geom.output_hw(h, w);
    assert_eq!(dx.len(), c * h * w, "col2im output length");
    assert_eq!(
        dcols.len(),
        c * geom.kh * geom.kw * ho * wo,
        "col2im input length"
    );
    dx.iter_mut().for_each(|v| *v = 0.0);
    let out_hw = ho * wo;
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &mut dx[ci * h * w..(ci + 1) * h * w];
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let src = &dcols[row * out_hw..(row + 1) * out_hw];
                row += 1;
                for oi in 0..ho {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let dst_row = &mut plane[ii as usize * w..(ii as usize + 1) * w];
                    let src_row = &src[oi * wo..(oi + 1) * wo];
                    for (oj, &g) in src_row.iter().enumerate() {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj >= 0 && jj < w as isize {
                            dst_row[jj as usize] += g;
                        }
                    }
                }
            }
        }
    }
}

fn conv_shapes(
    x: &Tensor,
    w: &Tensor,
    geom: ConvGeometry,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    let (n, c_in, h, wd) = x.shape().nchw();
    let wd4 = w.dims();
    assert_eq!(wd4.len(), 4, "conv weight must be [c_out,c_in,kh,kw]");
    let (c_out, wc_in, kh, kw) = (wd4[0], wd4[1], wd4[2], wd4[3]);
    assert_eq!(
        wc_in,
        c_in,
        "conv channel mismatch: input {} vs weight {}",
        x.shape(),
        w.shape()
    );
    assert_eq!((kh, kw), (geom.kh, geom.kw), "weight kernel vs geometry");
    let (ho, wo) = geom.output_hw(h, wd);
    (n, c_in, h, wd, c_out, ho, wo)
}

/// Dense 2-D convolution (cross-correlation, as in every DL framework).
///
/// # Panics
///
/// Panics on any shape inconsistency between `x` `[n,c_in,h,w]`, `w`
/// `[c_out,c_in,kh,kw]`, `b` `[c_out]`, and `geom`.
pub fn conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
    let (n, _, _, _, c_out, ho, wo) = conv_shapes(x, w, geom);
    let mut out = Tensor::zeros([n, c_out, ho, wo]);
    conv2d_into(x, w, b, geom, out.as_mut_slice());
    out
}

/// [`conv2d`] writing into a caller-provided flat output buffer of length
/// `n * c_out * ho * wo`. Every element of `out` is overwritten (the bias is
/// the GEMM row initializer), so the buffer's prior contents are irrelevant —
/// this is what lets inference contexts recycle activation buffers without a
/// zeroing pass.
///
/// The forward lowering is *implicit*: each sample is handed to the GEMM as
/// a virtual im2col view, so the packing loop reads the image directly and
/// no column matrix is materialized. Bits match [`conv2d_into_explicit`]
/// exactly — the packed panel bytes and the direct-path accumulation order
/// are both identical by construction.
///
/// # Panics
///
/// Panics on shape inconsistencies or a wrong `out` length.
pub fn conv2d_into(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    geom: ConvGeometry,
    out: &mut [f32],
) {
    let (n, c_in, h, wd, c_out, ho, wo) = conv_shapes(x, w, geom);
    if let Some(b) = b {
        assert_eq!(b.dims(), &[c_out], "conv bias shape");
    }
    assert_eq!(out.len(), n * c_out * ho * wo, "conv2d_into output length");
    let in_sz = c_in * h * wd;
    let xs = x.as_slice();
    let ws = w.as_slice();
    let bias = b.map(Tensor::as_slice);
    if n == 0 {
        return;
    }
    let im = Im2colRef {
        x: &xs[..in_sz],
        c_in,
        h,
        w: wd,
        geom,
        ho,
        wo,
    };
    // One weight pack for the whole batch; samples run in parallel on wide
    // pools. Bias rides along as the GEMM row initializer (one value per
    // output channel), so no second pass over the output is needed.
    gemm_conv_batch(ws, &im, xs, out, c_out, bias);
}

/// [`conv2d_into`] through the legacy explicit lowering: materialize each
/// sample's column matrix with [`im2col`], then run the same conv-keyed GEMM
/// on it. Kept as the differential twin of the implicit path — nb-verify's
/// `+implicit` suite checks the two agree bitwise across the conv geometry
/// grid and thread widths.
///
/// # Panics
///
/// Panics on shape inconsistencies or a wrong `out` length.
pub fn conv2d_into_explicit(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    geom: ConvGeometry,
    out: &mut [f32],
) {
    let (n, c_in, h, wd, c_out, ho, wo) = conv_shapes(x, w, geom);
    if let Some(b) = b {
        assert_eq!(b.dims(), &[c_out], "conv bias shape");
    }
    assert_eq!(
        out.len(),
        n * c_out * ho * wo,
        "conv2d_into_explicit output length"
    );
    let in_sz = c_in * h * wd;
    let out_sz = c_out * ho * wo;
    let col_rows = c_in * geom.kh * geom.kw;
    let xs = x.as_slice();
    let ws = w.as_slice();
    let bias = b.map(Tensor::as_slice);
    let shared_out = SharedMut::new(out);
    threadpool::parallel_for(n, &|ni| {
        // Safety: each task writes only its own sample's output window.
        let o_sample = unsafe { shared_out.slice(ni * out_sz, out_sz) };
        with_scratch(&CONV_COLS, col_rows * ho * wo, |cols| {
            im2col(&xs[ni * in_sz..(ni + 1) * in_sz], c_in, h, wd, geom, cols);
            gemm_conv_explicit(ws, cols, o_sample, c_out, col_rows, ho * wo, bias);
        });
    });
}

/// [`conv2d_into`] against a prepacked weight, with the bias as the GEMM row
/// initializer and an activation fused into the epilogue — the serving-path
/// kernel behind `CompiledPlan`.
///
/// `wp` packs the `[c_out, c_in*kh*kw]` weight matrix as the GEMM left
/// operand; the input rides through the same virtual im2col view as
/// [`conv2d_into`], so neither operand of the serving-path GEMM touches a
/// scratch matrix. Output bits match [`conv2d_into`] followed by a separate
/// elementwise activation pass for every thread count (see
/// [`crate::gemm::gemm_a_packed`]). 1x1 stride-1 unpadded convolutions skip
/// the virtual view's coordinate math entirely: the column matrix of a
/// pointwise conv is the input sample itself, so the sample slice feeds the
/// GEMM directly — same bytes, no copy.
///
/// # Panics
///
/// Panics on shape inconsistencies between `x` `[n,c_in,h,w]`, the packed
/// weight, `bias` `[c_out]`, `geom`, and `out`.
pub fn conv2d_packed_into(
    x: &Tensor,
    wp: &PackedA,
    bias: Option<&[f32]>,
    geom: ConvGeometry,
    act: Epilogue,
    out: &mut [f32],
) {
    let (n, c_in, h, wd) = x.shape().nchw();
    let col_rows = c_in * geom.kh * geom.kw;
    assert_eq!(wp.k(), col_rows, "packed conv weight inner dimension");
    let c_out = wp.m();
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "conv bias shape");
    }
    let (ho, wo) = geom.output_hw(h, wd);
    assert_eq!(
        out.len(),
        n * c_out * ho * wo,
        "conv2d_packed_into output length"
    );
    let in_sz = c_in * h * wd;
    let out_sz = c_out * ho * wo;
    let pointwise = geom.kh == 1 && geom.kw == 1 && geom.sh == 1 && geom.sw == 1 && geom.ph == 0;
    let pointwise = pointwise && geom.pw == 0;
    let xs = x.as_slice();
    let shared_out = SharedMut::new(out);
    threadpool::parallel_for(n, &|ni| {
        // Safety: each task writes only its own sample's output window.
        let o_sample = unsafe { shared_out.slice(ni * out_sz, out_sz) };
        let x_s = &xs[ni * in_sz..(ni + 1) * in_sz];
        if pointwise {
            gemm_conv_packed_mat(wp, x_s, o_sample, ho * wo, bias, act);
        } else {
            let im = Im2colRef {
                x: x_s,
                c_in,
                h,
                w: wd,
                geom,
                ho,
                wo,
            };
            gemm_conv_packed(wp, &im, o_sample, bias, act);
        }
    });
}

/// Gradients of [`conv2d`] with respect to input, weight, and bias.
///
/// Returns `(dx, dw, db)`; `db` is present iff `has_bias`.
///
/// # Panics
///
/// Panics on shape inconsistencies (same contract as [`conv2d`]).
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    geom: ConvGeometry,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c_in, h, wd, c_out, ho, wo) = conv_shapes(x, w, geom);
    assert_eq!(dy.dims(), &[n, c_out, ho, wo], "conv2d_backward dy shape");
    let col_rows = c_in * geom.kh * geom.kw;
    let in_sz = c_in * h * wd;
    let out_sz = c_out * ho * wo;
    let out_hw = ho * wo;
    let xs = x.as_slice();
    let dys = dy.as_slice();
    // The weight tensor is already the [c_out, col_rows] matrix, row-major.
    let ws = w.as_slice();

    let mut dx = Tensor::zeros(x.shape().clone());
    // Per-sample dW/db partials, written into disjoint windows of one caller
    // scratch buffer and reduced in ascending sample order below. The
    // partitioning is by *sample*, never by worker count, so the gradient
    // bits are a function of the batch alone — invariant under pool width,
    // `with_thread_cap`, and task scheduling. The data-parallel trainer's
    // bitwise dp(N) == dp(1) contract rests on this.
    let part_sz = c_out * col_rows + c_out;
    let shared_dx = SharedMut::new(dx.as_mut_slice());
    let mut dw = Tensor::zeros(w.shape().clone());
    let mut db = Tensor::zeros([c_out]);
    with_scratch(&CONV_DW_PARTS, n * part_sz, |parts| {
        let shared_parts = SharedMut::new(parts);
        threadpool::parallel_for(n, &|ni| {
            // Safety: sample windows of dx and the partials buffer are
            // disjoint across tasks.
            let part = unsafe { shared_parts.slice(ni * part_sz, part_sz) };
            let (dw_part, db_part) = part.split_at_mut(c_out * col_rows);
            let dx_sample = unsafe { shared_dx.slice(ni * in_sz, in_sz) };
            let dy_s = &dys[ni * out_sz..(ni + 1) * out_sz];
            with_scratch(&CONV_COLS, col_rows * out_hw, |cols| {
                im2col(&xs[ni * in_sz..(ni + 1) * in_sz], c_in, h, wd, geom, cols);
                // dW_s = dY_s * cols^T, overwriting the sample's window
                // (scratch is not pre-zeroed).
                gemm(
                    dy_s, false, cols, true, dw_part, c_out, out_hw, col_rows, None, false,
                );
            });
            for (co, db_v) in db_part.iter_mut().enumerate() {
                *db_v = if has_bias {
                    dy_s[co * out_hw..(co + 1) * out_hw].iter().sum::<f32>()
                } else {
                    0.0
                };
            }
            // dcols = W^T * dY_s (reading W transposed at pack time), folded
            // back onto this sample's dx — no per-sample tensor allocation.
            with_scratch(&CONV_DCOLS, col_rows * out_hw, |dcols| {
                gemm(
                    ws, true, dy_s, false, dcols, col_rows, c_out, out_hw, None, false,
                );
                col2im(dcols, c_in, h, wd, geom, dx_sample);
            });
        });
        // Fixed reduction order: ascending sample index, left to right.
        for ni in 0..n {
            let part = &parts[ni * part_sz..(ni + 1) * part_sz];
            let (dw_p, db_p) = part.split_at(c_out * col_rows);
            for (d, s) in dw.as_mut_slice().iter_mut().zip(dw_p) {
                *d += s;
            }
            for (d, s) in db.as_mut_slice().iter_mut().zip(db_p) {
                *d += s;
            }
        }
    });
    (dx, dw, if has_bias { Some(db) } else { None })
}

fn dw_shapes(
    x: &Tensor,
    w: &Tensor,
    geom: ConvGeometry,
) -> (usize, usize, usize, usize, usize, usize) {
    let (n, c, h, wd) = x.shape().nchw();
    let wdims = w.dims();
    assert_eq!(wdims.len(), 3, "depthwise weight must be [c,kh,kw]");
    assert_eq!(wdims[0], c, "depthwise channel mismatch");
    assert_eq!(
        (wdims[1], wdims[2]),
        (geom.kh, geom.kw),
        "depthwise kernel vs geometry"
    );
    let (ho, wo) = geom.output_hw(h, wd);
    (n, c, h, wd, ho, wo)
}

/// Depthwise 2-D convolution: each channel is filtered independently.
///
/// # Panics
///
/// Panics on shape inconsistencies between `x` `[n,c,h,w]`, `w` `[c,kh,kw]`,
/// `b` `[c]`, and `geom`.
pub fn depthwise_conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
    let (n, c, _, _, ho, wo) = dw_shapes(x, w, geom);
    let mut out = Tensor::zeros([n, c, ho, wo]);
    depthwise_conv2d_into(x, w, b, geom, out.as_mut_slice());
    out
}

/// [`depthwise_conv2d`] writing into a caller-provided flat output buffer of
/// length `n * c * ho * wo`; every element is overwritten. See
/// [`conv2d_into`] for the buffer-recycling rationale.
///
/// # Panics
///
/// Panics on shape inconsistencies or a wrong `out` length.
pub fn depthwise_conv2d_into(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    geom: ConvGeometry,
    out: &mut [f32],
) {
    let (n, c, _, _, ho, wo) = dw_shapes(x, w, geom);
    if let Some(b) = b {
        assert_eq!(b.dims(), &[c], "depthwise bias shape");
    }
    assert_eq!(out.len(), n * c * ho * wo, "depthwise_conv2d_into length");
    depthwise_dispatch(x, w, b, geom, Epilogue::None, out);
}

/// Shared forward driver behind [`depthwise_conv2d_into`] and
/// [`depthwise_conv2d_fused_into`]: one task per sample, with the (possibly
/// identity) epilogue applied to the finished sample inside the same task.
/// The per-channel stencil runs through [`crate::depthwise::dw_channel_rows`]
/// under the shape-keyed selector: `Direct` is the scalar reference, any
/// `Blocked` schedule the AVX2 row-strip kernel — bitwise identical either
/// way, so the choice (and `NB_AUTOTUNE`) is speed-only.
fn depthwise_dispatch(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    geom: ConvGeometry,
    act: Epilogue,
    out: &mut [f32],
) {
    let (n, c, h, wd, ho, wo) = dw_shapes(x, w, geom);
    if out.is_empty() {
        return;
    }
    let xs = x.as_slice();
    let ws = w.as_slice();
    let bias = b.map(Tensor::as_slice);
    let in_sz = c * h * wd;
    let out_sz = c * ho * wo;
    // Select once, outside the sample loop: the selector takes a lock.
    let variant = selector::select(
        selector::Op::Depthwise,
        selector::Layout::NN,
        c,
        geom.kh * geom.kw,
        ho * wo,
    );
    let simd = variant.schedule != Schedule::Direct;
    let shared_out = SharedMut::new(out);
    threadpool::parallel_for(n, &|ni| {
        // Safety: each task writes only its own sample's output window.
        let o_sample = unsafe { shared_out.slice(ni * out_sz, out_sz) };
        let x_s = &xs[ni * in_sz..(ni + 1) * in_sz];
        for ci in 0..c {
            let plane = &x_s[ci * h * wd..(ci + 1) * h * wd];
            let ker = &ws[ci * geom.kh * geom.kw..(ci + 1) * geom.kh * geom.kw];
            let o_plane = &mut o_sample[ci * ho * wo..(ci + 1) * ho * wo];
            let bv = bias.map(|b| b[ci]).unwrap_or(0.0);
            crate::depthwise::dw_channel_rows(
                plane, 0, h, wd, ker, bv, geom, wo, 0, ho, o_plane, simd,
            );
        }
        act.apply(o_sample);
    });
}

/// [`depthwise_conv2d_into`] with an activation fused into the epilogue.
///
/// The accumulation loops are identical to the unfused kernel (both run
/// through one shared driver); the epilogue runs over each finished sample
/// inside the same parallel task, so the bits match
/// [`depthwise_conv2d_into`] followed by a separate elementwise pass.
///
/// # Panics
///
/// Panics on shape inconsistencies or a wrong `out` length.
pub fn depthwise_conv2d_fused_into(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    geom: ConvGeometry,
    act: Epilogue,
    out: &mut [f32],
) {
    let (n, c, _, _, ho, wo) = dw_shapes(x, w, geom);
    assert_eq!(
        out.len(),
        n * c * ho * wo,
        "depthwise_conv2d_fused_into length"
    );
    if let Some(b) = b {
        assert_eq!(b.dims(), &[c], "depthwise bias shape");
    }
    depthwise_dispatch(x, w, b, geom, act, out);
}

/// The pointwise (1x1, stride-1, unpadded) conv forward over a materialized
/// `[c_in, n]` activation matrix against a prepacked weight: a pointwise
/// conv's im2col matrix *is* the input, so the GEMM runs on it directly.
/// This is the stage kernel the fused inverted-residual executor in `nb-nn`
/// drives over output-row strips; it shares the plan pointwise fast path's
/// kernel and conv selector namespace, so fused and unfused execution pick
/// the same schedule family for a given `n`.
///
/// # Panics
///
/// Panics if `x.len() != pa.k() * n` or `out.len() != pa.m() * n`.
pub fn conv2d_pointwise_mat_into(
    pa: &PackedA,
    x: &[f32],
    out: &mut [f32],
    n: usize,
    bias: Option<&[f32]>,
    act: Epilogue,
) {
    assert_eq!(out.len(), pa.m() * n, "pointwise conv output length");
    if out.is_empty() {
        return;
    }
    gemm_conv_packed_mat(pa, x, out, n, bias, act);
}

/// Serial depthwise backward for one channel across every sample. Kept as a
/// plain function (outside the worker closure) so the hot loops compile
/// against ordinary slice parameters. `dims` is `(c, h, w, ho, wo)` and
/// `kj_ranges[oj]` holds the in-bounds kernel-column range for output column
/// `oj` (precomputed once: it depends only on the geometry).
#[allow(clippy::too_many_arguments)]
fn dw_backward_channel(
    ci: usize,
    xs: &[f32],
    dys: &[f32],
    shared_dx: &SharedMut<f32>,
    ker: &[f32],
    dker: &mut [f32],
    dims: (usize, usize, usize, usize, usize),
    geom: ConvGeometry,
    kj_ranges: &[(usize, usize)],
) -> f32 {
    if geom.kh == 3 && geom.kw == 3 && geom.sh == 1 && geom.sw == 1 {
        return dw_backward_channel_3x3(ci, xs, dys, shared_dx, ker, dker, dims, geom, kj_ranges);
    }
    let (c, h, wd, ho, wo) = dims;
    let n = xs.len() / (c * h * wd);
    let mut db_acc = 0.0f32;
    for ni in 0..n {
        let plane = &xs[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
        let dy_plane = &dys[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo];
        // Safety: plane (ni, ci) is written only by channel ci's task.
        let dplane = unsafe { shared_dx.slice((ni * c + ci) * h * wd, h * wd) };
        for oi in 0..ho {
            // In-bounds kernel-row range for this output row, hoisted out of
            // the tap loops: ki must satisfy 0 <= oi*sh + ki - ph < h.
            let ki_lo = geom.ph.saturating_sub(oi * geom.sh);
            let ki_hi = (h + geom.ph).saturating_sub(oi * geom.sh).min(geom.kh);
            let dy_row = &dy_plane[oi * wo..(oi + 1) * wo];
            for (oj, &g) in dy_row.iter().enumerate() {
                // Zero upstream gradients (common after ReLU) contribute
                // nothing to any of the three outputs.
                if g == 0.0 {
                    continue;
                }
                db_acc += g;
                let (kj_lo, kj_hi) = kj_ranges[oj];
                for ki in ki_lo..ki_hi {
                    let ii = oi * geom.sh + ki - geom.ph;
                    let x_row = &plane[ii * wd..(ii + 1) * wd];
                    let dx_row = &mut dplane[ii * wd..(ii + 1) * wd];
                    let kr = &ker[ki * geom.kw..(ki + 1) * geom.kw];
                    let dkr = &mut dker[ki * geom.kw..(ki + 1) * geom.kw];
                    for kj in kj_lo..kj_hi {
                        let jj = oj * geom.sw + kj - geom.pw;
                        dkr[kj] += g * x_row[jj];
                        dx_row[jj] += g * kr[kj];
                    }
                }
            }
        }
    }
    db_acc
}

/// [`dw_backward_channel`] specialized for the ubiquitous 3x3 / stride-1
/// case. The nine taps are fully unrolled with the weights and the weight
/// gradient held in scalar locals, so `dw` accumulation stays in registers
/// instead of read-modify-writing `dker` through memory nine times per
/// output pixel — the dominant cost of the general loop on one thread.
/// Boundary pixels run the same unrolled taps behind per-tap range guards.
///
/// Accumulation order per output element is identical to the general path
/// (taps visited in `(ki, kj)` order for each `(ni, oi, oj)`, zero upstream
/// gradients skipped), and the scalar accumulators start from the same zero
/// `dker` would, so the results are bitwise the same.
#[allow(clippy::too_many_arguments)]
fn dw_backward_channel_3x3(
    ci: usize,
    xs: &[f32],
    dys: &[f32],
    shared_dx: &SharedMut<f32>,
    ker: &[f32],
    dker: &mut [f32],
    dims: (usize, usize, usize, usize, usize),
    geom: ConvGeometry,
    kj_ranges: &[(usize, usize)],
) -> f32 {
    let (c, h, wd, ho, wo) = dims;
    let (ph, pw) = (geom.ph, geom.pw);
    let n = xs.len() / (c * h * wd);
    let &[k0, k1, k2, k3, k4, k5, k6, k7, k8] = ker else {
        unreachable!("3x3 kernel slice")
    };
    let (mut d0, mut d1, mut d2, mut d3, mut d4) = (0.0f32, 0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut d5, mut d6, mut d7, mut d8) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut db_acc = 0.0f32;
    // Output columns whose full 3-tap window is interior: oj >= pw and
    // oj - pw + 2 < wd.
    let int_lo = pw.min(wo);
    let int_hi = (wd + pw).saturating_sub(2).min(wo).max(int_lo);
    for ni in 0..n {
        let plane = &xs[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
        let dy_plane = &dys[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo];
        // Safety: plane (ni, ci) is written only by channel ci's task.
        let dplane = unsafe { shared_dx.slice((ni * c + ci) * h * wd, h * wd) };
        for oi in 0..ho {
            let ki_lo = ph.saturating_sub(oi);
            let ki_hi = (h + ph).saturating_sub(oi).min(3);
            let dy_row = &dy_plane[oi * wo..(oi + 1) * wo];
            // All nine taps, each behind its in-bounds guard; used for every
            // pixel outside the fully interior fast path below.
            macro_rules! guarded_taps {
                ($oj:expr) => {{
                    let oj = $oj;
                    let g = dy_row[oj];
                    if g != 0.0 {
                        db_acc += g;
                        let (kj_lo, kj_hi) = kj_ranges[oj];
                        macro_rules! tap {
                            ($ki:expr, $kj:expr, $dk:ident, $kw:ident) => {
                                if ki_lo <= $ki && $ki < ki_hi && kj_lo <= $kj && $kj < kj_hi {
                                    let idx = (oi + $ki - ph) * wd + (oj + $kj - pw);
                                    $dk += g * plane[idx];
                                    dplane[idx] += g * $kw;
                                }
                            };
                        }
                        tap!(0, 0, d0, k0);
                        tap!(0, 1, d1, k1);
                        tap!(0, 2, d2, k2);
                        tap!(1, 0, d3, k3);
                        tap!(1, 1, d4, k4);
                        tap!(1, 2, d5, k5);
                        tap!(2, 0, d6, k6);
                        tap!(2, 1, d7, k7);
                        tap!(2, 2, d8, k8);
                    }
                }};
            }
            if ki_lo == 0 && ki_hi == 3 {
                let i0 = oi - ph;
                for oj in 0..int_lo {
                    guarded_taps!(oj);
                }
                for (oj, &g) in dy_row.iter().enumerate().take(int_hi).skip(int_lo) {
                    if g == 0.0 {
                        continue;
                    }
                    db_acc += g;
                    let j0 = oj - pw;
                    let x0 = &plane[i0 * wd + j0..i0 * wd + j0 + 3];
                    let x1 = &plane[(i0 + 1) * wd + j0..(i0 + 1) * wd + j0 + 3];
                    let x2 = &plane[(i0 + 2) * wd + j0..(i0 + 2) * wd + j0 + 3];
                    d0 += g * x0[0];
                    d1 += g * x0[1];
                    d2 += g * x0[2];
                    d3 += g * x1[0];
                    d4 += g * x1[1];
                    d5 += g * x1[2];
                    d6 += g * x2[0];
                    d7 += g * x2[1];
                    d8 += g * x2[2];
                    let r0 = &mut dplane[i0 * wd + j0..i0 * wd + j0 + 3];
                    r0[0] += g * k0;
                    r0[1] += g * k1;
                    r0[2] += g * k2;
                    let r1 = &mut dplane[(i0 + 1) * wd + j0..(i0 + 1) * wd + j0 + 3];
                    r1[0] += g * k3;
                    r1[1] += g * k4;
                    r1[2] += g * k5;
                    let r2 = &mut dplane[(i0 + 2) * wd + j0..(i0 + 2) * wd + j0 + 3];
                    r2[0] += g * k6;
                    r2[1] += g * k7;
                    r2[2] += g * k8;
                }
                for oj in int_hi..wo {
                    guarded_taps!(oj);
                }
            } else {
                for oj in 0..wo {
                    guarded_taps!(oj);
                }
            }
        }
    }
    dker.copy_from_slice(&[d0, d1, d2, d3, d4, d5, d6, d7, d8]);
    db_acc
}

/// Gradients of [`depthwise_conv2d`]; returns `(dx, dw, db)`.
///
/// Parallelizes over *channels*: depthwise gradients never mix channels, so
/// each task owns one channel's `dx` planes (across all samples) and its
/// `dw`/`db` rows outright — no mutex, no partial buffers, no reduction
/// pass. A channel's accumulation runs serially over samples in a fixed
/// order, which also makes `dw`/`db` thread-count-invariant (the sample-
/// chunked dense path is only width-stable).
///
/// # Panics
///
/// Panics on shape inconsistencies (same contract as [`depthwise_conv2d`]).
pub fn depthwise_conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    geom: ConvGeometry,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c, h, wd, ho, wo) = dw_shapes(x, w, geom);
    assert_eq!(dy.dims(), &[n, c, ho, wo], "depthwise backward dy shape");
    let xs = x.as_slice();
    let ws = w.as_slice();
    let dys = dy.as_slice();
    let ker_sz = geom.kh * geom.kw;
    let mut dx = Tensor::zeros(x.shape().clone());
    let mut dw = Tensor::zeros(w.shape().clone());
    let mut db = Tensor::zeros([c]);
    // In-bounds kernel-column range per output column, shared by every
    // channel: kj must satisfy 0 <= oj*sw + kj - pw < w.
    let kj_ranges: Vec<(usize, usize)> = (0..wo)
        .map(|oj| {
            let lo = geom.pw.saturating_sub(oj * geom.sw);
            let hi = (wd + geom.pw).saturating_sub(oj * geom.sw).min(geom.kw);
            (lo, hi.max(lo))
        })
        .collect();
    let shared_dx = SharedMut::new(dx.as_mut_slice());
    let shared_dw = SharedMut::new(dw.as_mut_slice());
    let shared_db = SharedMut::new(db.as_mut_slice());
    threadpool::parallel_for(c, &|ci| {
        // Safety: channel ci's dw row and db element belong to this task only.
        let dker = unsafe { shared_dw.slice(ci * ker_sz, ker_sz) };
        let db_c = unsafe { shared_db.slice(ci, 1) };
        db_c[0] = dw_backward_channel(
            ci,
            xs,
            dys,
            &shared_dx,
            &ws[ci * ker_sz..(ci + 1) * ker_sz],
            dker,
            (c, h, wd, ho, wo),
            geom,
            &kj_ranges,
        );
    });
    (dx, dw, if has_bias { Some(db) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct O(n^7) reference convolution.
    fn conv_ref(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
        let (n, c_in, h, wd) = x.shape().nchw();
        let (c_out, _, kh, kw) = {
            let d = w.dims();
            (d[0], d[1], d[2], d[3])
        };
        let (ho, wo) = geom.output_hw(h, wd);
        let mut out = Tensor::zeros([n, c_out, ho, wo]);
        for ni in 0..n {
            for co in 0..c_out {
                for oi in 0..ho {
                    for oj in 0..wo {
                        let mut acc = b.map(|b| b.as_slice()[co]).unwrap_or(0.0);
                        for ci in 0..c_in {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                                    let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= wd as isize {
                                        continue;
                                    }
                                    acc += x.at4(ni, ci, ii as usize, jj as usize)
                                        * w.as_slice()[((co * c_in + ci) * kh + ki) * kw + kj];
                                }
                            }
                        }
                        *out.at4_mut(ni, co, oi, oj) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(k, s, p) in &[
            (1usize, 1usize, 0usize),
            (3, 1, 1),
            (3, 2, 1),
            (5, 1, 2),
            (5, 2, 2),
            (7, 1, 3),
        ] {
            let geom = ConvGeometry::square(k, s, p);
            let x = Tensor::randn([2, 3, 9, 9], &mut rng);
            let w = Tensor::randn([4, 3, k, k], &mut rng);
            let b = Tensor::randn([4], &mut rng);
            let got = conv2d(&x, &w, Some(&b), geom);
            let want = conv_ref(&x, &w, Some(&b), geom);
            assert!(
                got.allclose(&want, 1e-3),
                "k={k} s={s} p={p} max diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn conv_no_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom = ConvGeometry::same(3, 1);
        let x = Tensor::randn([1, 2, 5, 5], &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], &mut rng);
        assert!(conv2d(&x, &w, None, geom).allclose(&conv_ref(&x, &w, None, geom), 1e-4));
    }

    #[test]
    fn pointwise_equals_per_pixel_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn([1, 4, 3, 3], &mut rng);
        let w = Tensor::randn([5, 4, 1, 1], &mut rng);
        let y = conv2d(&x, &w, None, ConvGeometry::pointwise());
        // check one pixel by hand
        for co in 0..5 {
            let mut acc = 0.0;
            for ci in 0..4 {
                acc += x.at4(0, ci, 1, 2) * w.as_slice()[co * 4 + ci];
            }
            assert!((y.at4(0, co, 1, 2) - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), c> == <x, col2im(c)> : the fold is the exact adjoint of
        // the unfold, which is what the gradient path relies on.
        let mut rng = StdRng::seed_from_u64(4);
        let geom = ConvGeometry::square(3, 2, 1);
        let (c, h, w) = (2usize, 7usize, 6usize);
        let (ho, wo) = geom.output_hw(h, w);
        let x = Tensor::randn([c * h * w], &mut rng);
        let cvec = Tensor::randn([c * 9 * ho * wo], &mut rng);
        let mut cols = vec![0.0; c * 9 * ho * wo];
        im2col(x.as_slice(), c, h, w, geom, &mut cols);
        let lhs: f32 = cols.iter().zip(cvec.as_slice()).map(|(a, b)| a * b).sum();
        let mut dx = vec![0.0; c * h * w];
        col2im(cvec.as_slice(), c, h, w, geom, &mut dx);
        let rhs: f32 = x.as_slice().iter().zip(&dx).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Numerical gradient of a scalar loss sum(conv * dy-weights).
    #[test]
    fn conv_backward_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let geom = ConvGeometry::square(3, 2, 1);
        let x = Tensor::randn([2, 2, 5, 5], &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], &mut rng);
        let b = Tensor::randn([3], &mut rng);
        let y = conv2d(&x, &w, Some(&b), geom);
        let dy = Tensor::randn(y.shape().clone(), &mut rng);
        let (dx, dw, db) = conv2d_backward(&x, &w, &dy, geom, true);
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d(x, w, Some(b), geom)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        // spot-check a handful of coordinates in each gradient
        for &i in &[0usize, 7, 31, 49] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{i}] numeric {num} analytic {}",
                dx.as_slice()[i]
            );
        }
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (num - dw.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dw[{i}] numeric {num} analytic {}",
                dw.as_slice()[i]
            );
        }
        let db = db.unwrap();
        for i in 0..3 {
            let mut bp = b.clone();
            bp.as_mut_slice()[i] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - db.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn depthwise_matches_grouped_dense() {
        // Depthwise conv == dense conv with block-diagonal weights.
        let mut rng = StdRng::seed_from_u64(6);
        let geom = ConvGeometry::same(3, 1);
        let c = 3;
        let x = Tensor::randn([2, c, 6, 6], &mut rng);
        let wd = Tensor::randn([c, 3, 3], &mut rng);
        let mut dense = Tensor::zeros([c, c, 3, 3]);
        for ci in 0..c {
            for ki in 0..3 {
                for kj in 0..3 {
                    dense.as_mut_slice()[((ci * c + ci) * 3 + ki) * 3 + kj] =
                        wd.as_slice()[(ci * 3 + ki) * 3 + kj];
                }
            }
        }
        let got = depthwise_conv2d(&x, &wd, None, geom);
        let want = conv2d(&x, &dense, None, geom);
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn depthwise_k1_is_channel_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn([1, 3, 4, 4], &mut rng);
        let w = Tensor::from_vec(vec![2.0, -1.0, 0.5], [3, 1, 1]).unwrap();
        let y = depthwise_conv2d(&x, &w, None, ConvGeometry::pointwise());
        for ci in 0..3 {
            for hi in 0..4 {
                for wi in 0..4 {
                    assert!(
                        (y.at4(0, ci, hi, wi) - x.at4(0, ci, hi, wi) * w.as_slice()[ci]).abs()
                            < 1e-6
                    );
                }
            }
        }
    }

    #[test]
    fn depthwise_backward_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(8);
        let geom = ConvGeometry::same(3, 2);
        let x = Tensor::randn([2, 2, 5, 5], &mut rng);
        let w = Tensor::randn([2, 3, 3], &mut rng);
        let y = depthwise_conv2d(&x, &w, None, geom);
        let dy = Tensor::randn(y.shape().clone(), &mut rng);
        let (dx, dw, db) = depthwise_conv2d_backward(&x, &w, &dy, geom, false);
        assert!(db.is_none());
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            depthwise_conv2d(x, w, None, geom)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 13, 29, 49] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()));
        }
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.as_slice()[i]).abs() < 2e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn implicit_forward_matches_explicit_bitwise() {
        use crate::selector::with_autotune_off;
        use crate::threadpool::with_thread_cap;
        let mut rng = StdRng::seed_from_u64(9);
        for &(k, s, p) in &[
            (1usize, 1usize, 0usize),
            (3, 1, 1),
            (3, 2, 1),
            (5, 1, 2),
            (5, 2, 2),
        ] {
            let geom = ConvGeometry::square(k, s, p);
            let x = Tensor::randn([2, 3, 11, 9], &mut rng);
            let w = Tensor::randn([6, 3, k, k], &mut rng);
            let b = Tensor::randn([6], &mut rng);
            let (ho, wo) = geom.output_hw(11, 9);
            with_autotune_off(|| {
                let mut implicit = vec![0.0f32; 2 * 6 * ho * wo];
                conv2d_into(&x, &w, Some(&b), geom, &mut implicit);
                let mut explicit = vec![0.0f32; 2 * 6 * ho * wo];
                conv2d_into_explicit(&x, &w, Some(&b), geom, &mut explicit);
                assert!(
                    implicit
                        .iter()
                        .zip(&explicit)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k={k} s={s} p={p}: implicit != explicit"
                );
                // And the implicit path is thread-width invariant.
                let mut serial = vec![0.0f32; 2 * 6 * ho * wo];
                with_thread_cap(1, || conv2d_into(&x, &w, Some(&b), geom, &mut serial));
                assert!(
                    implicit
                        .iter()
                        .zip(&serial)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k={k} s={s} p={p}: implicit not width-invariant"
                );
            });
        }
    }

    #[test]
    fn backward_gradients_are_width_invariant() {
        use crate::selector::with_autotune_off;
        use crate::threadpool::with_thread_cap;
        let mut rng = StdRng::seed_from_u64(21);
        let geom = ConvGeometry::square(3, 1, 1);
        let x = Tensor::randn([5, 3, 9, 9], &mut rng);
        let w = Tensor::randn([4, 3, 3, 3], &mut rng);
        let dy = Tensor::randn([5, 4, 9, 9], &mut rng);
        with_autotune_off(|| {
            let (dx, dw, db) = conv2d_backward(&x, &w, &dy, geom, true);
            let (dx1, dw1, db1) = with_thread_cap(1, || conv2d_backward(&x, &w, &dy, geom, true));
            for (name, a, b) in [
                ("dx", &dx, &dx1),
                ("dw", &dw, &dw1),
                ("db", db.as_ref().unwrap(), db1.as_ref().unwrap()),
            ] {
                assert!(
                    a.as_slice()
                        .iter()
                        .zip(b.as_slice())
                        .all(|(u, v)| u.to_bits() == v.to_bits()),
                    "{name} not width-invariant"
                );
            }
        });
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_channel_mismatch_panics() {
        let x = Tensor::zeros([1, 3, 4, 4]);
        let w = Tensor::zeros([2, 4, 1, 1]);
        let _ = conv2d(&x, &w, None, ConvGeometry::pointwise());
    }
}
