//! Spatial pooling kernels: max, average, and global average pooling, with
//! gradients.

use crate::{ConvGeometry, Tensor};

/// 2-D max pooling. Returns the pooled tensor and the flat argmax index (into
/// the input sample-channel plane) for each output element, which the
/// backward pass routes gradients through.
///
/// # Panics
///
/// Panics if `x` is not rank 4 or the window exceeds the padded input.
pub fn maxpool2d(x: &Tensor, geom: ConvGeometry) -> (Tensor, Vec<u32>) {
    let (n, c, h, w) = x.shape().nchw();
    let (ho, wo) = geom.output_hw(h, w);
    let mut out = Tensor::zeros([n, c, ho, wo]);
    let mut idx = vec![0u32; n * c * ho * wo];
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for nc in 0..n * c {
        let plane = &xs[nc * h * w..(nc + 1) * h * w];
        for oi in 0..ho {
            for oj in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for ki in 0..geom.kh {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        let p = ii as usize * w + jj as usize;
                        if plane[p] > best {
                            best = plane[p];
                            best_i = p;
                        }
                    }
                }
                let o = (nc * ho + oi) * wo + oj;
                os[o] = best;
                idx[o] = best_i as u32;
            }
        }
    }
    (out, idx)
}

/// Gradient of [`maxpool2d`]: routes each output gradient to its argmax.
///
/// # Panics
///
/// Panics if shapes disagree with the forward call that produced `idx`.
pub fn maxpool2d_backward(x_shape: &crate::Shape, dy: &Tensor, idx: &[u32]) -> Tensor {
    let (n, c, h, w) = x_shape.nchw();
    assert_eq!(idx.len(), dy.numel(), "maxpool idx/dy length mismatch");
    let (dn, dc, ho, wo) = dy.shape().nchw();
    assert_eq!((dn, dc), (n, c), "maxpool dy batch/channel mismatch");
    let mut dx = Tensor::zeros([n, c, h, w]);
    let dxs = dx.as_mut_slice();
    let dys = dy.as_slice();
    for nc in 0..n * c {
        let dplane = &mut dxs[nc * h * w..(nc + 1) * h * w];
        for o in 0..ho * wo {
            let flat = nc * ho * wo + o;
            dplane[idx[flat] as usize] += dys[flat];
        }
    }
    dx
}

/// 2-D average pooling (zero-padded positions count toward the divisor, i.e.
/// `count_include_pad = true`).
///
/// # Panics
///
/// Panics if `x` is not rank 4 or the window exceeds the padded input.
pub fn avgpool2d(x: &Tensor, geom: ConvGeometry) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let (ho, wo) = geom.output_hw(h, w);
    let inv = 1.0 / (geom.kh * geom.kw) as f32;
    let mut out = Tensor::zeros([n, c, ho, wo]);
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for nc in 0..n * c {
        let plane = &xs[nc * h * w..(nc + 1) * h * w];
        for oi in 0..ho {
            for oj in 0..wo {
                let mut acc = 0.0f32;
                for ki in 0..geom.kh {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        acc += plane[ii as usize * w + jj as usize];
                    }
                }
                os[(nc * ho + oi) * wo + oj] = acc * inv;
            }
        }
    }
    out
}

/// Gradient of [`avgpool2d`].
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn avgpool2d_backward(x_shape: &crate::Shape, dy: &Tensor, geom: ConvGeometry) -> Tensor {
    let (n, c, h, w) = x_shape.nchw();
    let (_, _, ho, wo) = dy.shape().nchw();
    let inv = 1.0 / (geom.kh * geom.kw) as f32;
    let mut dx = Tensor::zeros([n, c, h, w]);
    let dxs = dx.as_mut_slice();
    let dys = dy.as_slice();
    for nc in 0..n * c {
        let dplane = &mut dxs[nc * h * w..(nc + 1) * h * w];
        for oi in 0..ho {
            for oj in 0..wo {
                let g = dys[(nc * ho + oi) * wo + oj] * inv;
                for ki in 0..geom.kh {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        dplane[ii as usize * w + jj as usize] += g;
                    }
                }
            }
        }
    }
    dx
}

/// Global average pooling: `[n, c, h, w]` to `[n, c]`.
///
/// # Panics
///
/// Panics if `x` is not rank 4.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let inv = 1.0 / (h * w) as f32;
    let xs = x.as_slice();
    Tensor::from_fn([n, c], |i| {
        xs[i * h * w..(i + 1) * h * w].iter().sum::<f32>() * inv
    })
}

/// Gradient of [`global_avg_pool`]: spreads each channel gradient uniformly.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn global_avg_pool_backward(x_shape: &crate::Shape, dy: &Tensor) -> Tensor {
    let (n, c, h, w) = x_shape.nchw();
    assert_eq!(dy.dims(), &[n, c], "global_avg_pool_backward dy shape");
    let inv = 1.0 / (h * w) as f32;
    let dys = dy.as_slice();
    Tensor::from_fn([n, c, h, w], |i| dys[i / (h * w)] * inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn maxpool_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            [1, 1, 4, 4],
        )
        .unwrap();
        let (y, _) = maxpool2d(&x, ConvGeometry::square(2, 2, 0));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], [1, 1, 2, 2]).unwrap();
        let (y, idx) = maxpool2d(&x, ConvGeometry::square(2, 2, 0));
        assert_eq!(y.item(), 5.0);
        let dy = Tensor::ones([1, 1, 1, 1]);
        let dx = maxpool2d_backward(&Shape::new(vec![1, 1, 2, 2]), &dy, &idx);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_values() {
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [1, 1, 2, 2]).unwrap();
        let y = avgpool2d(&x, ConvGeometry::square(2, 2, 0));
        assert_eq!(y.item(), 5.0);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let dy = Tensor::from_vec(vec![4.0], [1, 1, 1, 1]).unwrap();
        let dx = avgpool2d_backward(
            &Shape::new(vec![1, 1, 2, 2]),
            &dy,
            ConvGeometry::square(2, 2, 0),
        );
        assert_eq!(dx.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn([2, 3, 4, 4], &mut rng);
        let y = global_avg_pool(&x);
        assert_eq!(y.dims(), &[2, 3]);
        // channel mean by hand
        let mut acc = 0.0;
        for h in 0..4 {
            for w in 0..4 {
                acc += x.at4(1, 2, h, w);
            }
        }
        assert!((y.at2(1, 2) - acc / 16.0).abs() < 1e-5);
        let dy = Tensor::ones([2, 3]);
        let dx = global_avg_pool_backward(x.shape(), &dy);
        assert!(dx.allclose(&Tensor::full([2, 3, 4, 4], 1.0 / 16.0), 1e-7));
    }

    #[test]
    fn avgpool_numeric_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom = ConvGeometry::square(3, 2, 1);
        let x = Tensor::randn([1, 2, 5, 5], &mut rng);
        let y = avgpool2d(&x, geom);
        let dy = Tensor::randn(y.shape().clone(), &mut rng);
        let dx = avgpool2d_backward(x.shape(), &dy, geom);
        let loss = |x: &Tensor| -> f32 {
            avgpool2d(x, geom)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for &i in &[0usize, 10, 24, 49] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 1e-2);
        }
    }
}
