//! The dense, contiguous, row-major `f32` tensor.

use crate::{Shape, TensorError};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// A dense `f32` tensor with contiguous row-major storage.
///
/// This is the single data type flowing through the whole NetBooster stack:
/// images, activations, weights, and gradients. Images use `NCHW` layout.
///
/// Storage is shared copy-on-write: `clone()` is O(1) (a refcount bump) and
/// the buffer is only copied when a shared tensor is mutated through
/// [`as_mut_slice`](Self::as_mut_slice) or one of the in-place ops. Reads
/// never copy.
///
/// # Examples
///
/// ```
/// use nb_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let b = Tensor::full([2, 2], 0.5);
/// let c = a.add(&b);
/// assert_eq!(c.as_slice(), &[1.5, 2.5, 3.5, 4.5]);
/// # Ok::<(), nb_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    // ----- constructors ---------------------------------------------------

    fn from_parts(shape: Shape, data: Vec<f32>) -> Self {
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_parts(shape, vec![0.0; n])
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_parts(shape, vec![value; n])
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Self::from_parts(Shape::scalar(), vec![value])
    }

    /// Builds a tensor from a flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: data.len(),
                shape,
            });
        }
        Ok(Self::from_parts(shape, data))
    }

    /// Builds a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_parts(shape, (0..n).map(f).collect())
    }

    /// Standard-normal random tensor (Box–Muller over the provided RNG).
    pub fn randn(shape: impl Into<Shape>, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Self::from_parts(shape, data)
    }

    /// Uniform random tensor over `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_parts(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
    }

    // ----- accessors ------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat storage.
    ///
    /// Copy-on-write: if the storage is shared with other tensors, this
    /// detaches by copying the buffer first; mutations are never visible
    /// through clones taken earlier.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its flat storage.
    ///
    /// Zero-copy when this tensor is the sole owner of its buffer; copies
    /// otherwise.
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// True when this tensor's buffer is shared with at least one clone.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// The value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a single-element tensor, got {}",
            self.shape
        );
        self.data[0]
    }

    /// Element at `(n, c, h, w)` of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4 or indices are out of bounds.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let (_, cc, hh, ww) = self.shape.nchw();
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Mutable element at `(n, c, h, w)` of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4 or indices are out of bounds.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let (_, cc, hh, ww) = self.shape.nchw();
        &mut Arc::make_mut(&mut self.data)[((n * cc + c) * hh + h) * ww + w]
    }

    /// Element at `(r, c)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2 or indices are out of bounds.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let (_, cols) = self.shape.rc();
        self.data[r * cols + c]
    }

    // ----- shape manipulation ---------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {}",
            self.shape,
            shape
        );
        Tensor {
            shape,
            // Arc clone: reshape is a zero-copy view of the same buffer.
            data: Arc::clone(&self.data),
        }
    }

    /// Consuming variant of [`reshape`](Self::reshape); avoids the copy.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn into_reshape(mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {}",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2.
    pub fn transpose2d(&self) -> Tensor {
        let (r, c) = self.shape.rc();
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Self::from_parts(Shape::new(vec![c, r]), out)
    }

    /// A contiguous sub-tensor of `len` entries along dimension 0 starting at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds dimension 0.
    pub fn narrow0(&self, start: usize, len: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "narrow0 on scalar");
        let d0 = self.shape.dim(0);
        assert!(
            start + len <= d0,
            "narrow0 range {start}..{} exceeds dim0 {d0}",
            start + len
        );
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = len;
        Self::from_parts(
            Shape::new(dims),
            self.data[start * inner..(start + len) * inner].to_vec(),
        )
    }

    /// Slices the leading output-channel and input-channel dimensions of a
    /// rank-4 conv weight: `w[out.0..out.0+out.1, inn.0..inn.0+inn.1, :, :]`.
    /// Used by NetAug-style width-sliced weight sharing on both execution
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4 or a range is out of bounds.
    pub fn narrow_out_in(&self, out: (usize, usize), inn: (usize, usize)) -> Tensor {
        let d = self.dims().to_vec();
        assert_eq!(d.len(), 4, "narrow_out_in requires rank-4 weight");
        assert!(
            out.0 + out.1 <= d[0] && inn.0 + inn.1 <= d[1],
            "narrow_out_in range"
        );
        let (kh, kw) = (d[2], d[3]);
        let src = self.as_slice();
        let mut dst = Tensor::zeros([out.1, inn.1, kh, kw]);
        {
            let ds = dst.as_mut_slice();
            for oi in 0..out.1 {
                for ii in 0..inn.1 {
                    let s0 = (((out.0 + oi) * d[1]) + (inn.0 + ii)) * kh * kw;
                    let d0 = (oi * inn.1 + ii) * kh * kw;
                    ds[d0..d0 + kh * kw].copy_from_slice(&src[s0..s0 + kh * kw]);
                }
            }
        }
        dst
    }

    /// Stacks tensors along a new leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes disagree.
    pub fn stack0(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack0 of no tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * inner.numel());
        for t in items {
            assert_eq!(
                t.shape, inner,
                "stack0 shape mismatch: {} vs {}",
                t.shape, inner
            );
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        Self::from_parts(Shape::new(dims), data)
    }

    // ----- elementwise ----------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Self::from_parts(
            self.shape.clone(),
            self.data.iter().map(|&x| f(x)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in Arc::make_mut(&mut self.data) {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_with shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Self::from_parts(
            self.shape.clone(),
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Elementwise sum. See [`zip_with`](Self::zip_with) for panics.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference. See [`zip_with`](Self::zip_with) for panics.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product. See [`zip_with`](Self::zip_with) for panics.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient. See [`zip_with`](Self::zip_with) for panics.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in Arc::make_mut(&mut self.data)
            .iter_mut()
            .zip(other.data.iter())
        {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(
            self.shape, other.shape,
            "add_scaled_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in Arc::make_mut(&mut self.data)
            .iter_mut()
            .zip(other.data.iter())
        {
            *a += alpha * b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in Arc::make_mut(&mut self.data) {
            *a *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation when unshared.
    pub fn fill_zero(&mut self) {
        Arc::make_mut(&mut self.data)
            .iter_mut()
            .for_each(|x| *x = 0.0);
    }

    // ----- reductions -----------------------------------------------------

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max_value(&self) -> f32 {
        assert!(self.numel() > 0, "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min_value(&self) -> f32 {
        assert!(self.numel() > 0, "min of empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of absolute values (L1 norm of the flattened tensor).
    pub fn abs_sum(&self) -> f32 {
        self.data.iter().map(|&x| x.abs() as f64).sum::<f64>() as f32
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        (self
            .data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// Index of the maximum along the last dimension, for each leading index.
    ///
    /// For a `[batch, classes]` tensor this returns the predicted class per
    /// sample (ties resolve to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors or a zero-size last dimension.
    pub fn argmax_last(&self) -> Vec<usize> {
        assert!(self.shape.rank() >= 1, "argmax_last on scalar");
        let last = self.shape.dim(self.shape.rank() - 1);
        assert!(last > 0, "argmax_last over empty dimension");
        self.data
            .chunks_exact(last)
            .map(|row| {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Largest absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, ... {:.4}], mean={:.4})",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.mean()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construct_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        assert_eq!(t.at2(0, 2), 3.0);
        assert_eq!(t.at2(1, 0), 4.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    fn from_vec_length_mismatch() {
        let err = Tensor::from_vec(vec![1.0; 5], [2, 3]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], [3]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[1.5, -1.5, 3.5]);
        assert_eq!(a.sub(&b).as_slice(), &[0.5, -2.5, 2.5]);
        assert_eq!(a.mul(&b).as_slice(), &[0.5, -1.0, 1.5]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn axpy_and_inplace() {
        let mut a = Tensor::zeros([4]);
        let b = Tensor::ones([4]);
        a.add_scaled_assign(&b, 0.25);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.25; 4]);
        a.scale_assign(4.0);
        assert_eq!(a.as_slice(), &[5.0; 4]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0, 4.0], [2, 2]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max_value(), 4.0);
        assert_eq!(t.min_value(), -3.0);
        assert_eq!(t.abs_sum(), 10.0);
        assert!((t.l2_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5], [2, 3]).unwrap();
        assert_eq!(t.argmax_last(), vec![1, 2]);
    }

    #[test]
    fn argmax_tie_resolves_low() {
        let t = Tensor::from_vec(vec![0.5, 0.5, 0.1], [1, 3]).unwrap();
        assert_eq!(t.argmax_last(), vec![0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]).unwrap();
        let tt = t.transpose2d();
        assert_eq!(tt.dims(), &[4, 3]);
        assert_eq!(tt.at2(2, 1), t.at2(1, 2));
        assert_eq!(tt.transpose2d(), t);
    }

    #[test]
    fn narrow_and_stack() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]).unwrap();
        let mid = t.narrow0(1, 1);
        assert_eq!(mid.dims(), &[1, 4]);
        assert_eq!(mid.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        let parts: Vec<Tensor> = (0..3).map(|i| t.narrow0(i, 1).into_reshape([4])).collect();
        let back = Tensor::stack0(&parts);
        assert_eq!(back.dims(), &[3, 4]);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform([1000], -2.0, 3.0, &mut rng);
        assert!(t.min_value() >= -2.0 && t.max_value() < 3.0);
    }

    #[test]
    fn nchw_indexing() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at4(1, 2, 3, 4), 7.0);
        assert_eq!(t.as_slice()[t.numel() - 1], 7.0);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::ones([3]);
        let b = a.add_scalar(1e-6);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_mismatch_panics() {
        let a = Tensor::ones([3]);
        let b = Tensor::ones([4]);
        let _ = a.add(&b);
    }

    #[test]
    fn clone_is_cow() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let b = a.clone();
        assert!(a.is_shared() && b.is_shared());
        a.as_mut_slice()[0] = 9.0; // detaches a from the shared buffer
        assert_eq!(a.as_slice(), &[9.0, 2.0, 3.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0], "clone unaffected");
        assert!(!b.is_shared(), "a detached, b is sole owner again");
    }

    #[test]
    fn into_vec_copies_only_when_shared() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = a.clone();
        assert_eq!(a.into_vec(), vec![1.0, 2.0]); // shared: copies
        assert_eq!(b.into_vec(), vec![1.0, 2.0]); // sole owner: moves
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]).unwrap();
        let r = t.reshape([3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.dims(), &[3, 2]);
    }
}
