//! Persistent worker pool for data-parallel kernels.
//!
//! The pool is process-wide and lazily initialized on first use; workers are
//! created once and then sleep on a condition variable between jobs, so the
//! per-call cost of going parallel is a queue push plus a wakeup instead of a
//! thread spawn. This is what lets the parallel thresholds in `matmul`/`conv`
//! sit far lower than they could with scoped spawning.
//!
//! ## Sizing
//!
//! The pool width defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `NB_NUM_THREADS` environment variable (read once,
//! at pool creation). Width 1 means no worker threads are ever spawned and
//! every kernel runs inline. [`with_thread_cap`] lowers the width for the
//! duration of a closure on the current thread only, which is how the test
//! suite checks multithread-vs-singlethread determinism inside one process.
//!
//! ## Execution model
//!
//! [`parallel_for`] runs `total` independent tasks. Tasks are claimed from a
//! shared atomic counter, so the mapping of task index to thread is dynamic,
//! but callers must make per-task work deterministic in the task index (all
//! kernels in this crate write disjoint output regions per task). The calling
//! thread participates in the job and only returns once every task has
//! finished, so borrows captured by the closure stay valid. Calls from inside
//! a worker (nested parallelism, e.g. a matmul inside a conv sample task) run
//! inline on that worker rather than deadlocking on the queue.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Erased pointer to the per-task closure of a running job.
///
/// Safety: the owning [`parallel_for`] call does not return until every task
/// has completed, so the pointee outlives every dereference; workers that pop
/// a job after its tasks are exhausted never dereference the pointer.
#[derive(Clone, Copy)]
struct TaskFn(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskFn {}
unsafe impl Sync for TaskFn {}

struct JobState {
    task: TaskFn,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Number of completed tasks.
    done: AtomicUsize,
    total: usize,
    finished: Mutex<bool>,
    cv: Condvar,
}

impl JobState {
    /// Claim and run tasks until none remain.
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // Safety: i < total, so the job is still live (see `TaskFn`).
            let f = unsafe { &*self.task.0 };
            f(i);
            // AcqRel chains every task's writes into the final increment, so
            // the thread that observes `done == total` (and the caller it
            // wakes) sees all output writes.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                *self.finished.lock().unwrap() = true;
                self.cv.notify_all();
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<JobState>>>,
    cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Worker threads spawned (pool width minus the participating caller).
    workers: usize,
}

thread_local! {
    /// True on pool worker threads; nested parallel_for calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread width cap installed by [`with_thread_cap`].
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let width = configured_width();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        let workers = width.saturating_sub(1);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("nb-worker-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let job = {
                            let mut q = shared.queue.lock().unwrap();
                            loop {
                                if let Some(job) = q.pop_front() {
                                    break job;
                                }
                                q = shared.cv.wait(q).unwrap();
                            }
                        };
                        job.participate();
                    }
                })
                .expect("failed to spawn nb-tensor worker thread");
        }
        Pool { shared, workers }
    })
}

/// Pool width configured from `NB_NUM_THREADS` or the machine parallelism.
fn configured_width() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let raw = std::env::var("NB_NUM_THREADS").ok();
    parse_thread_override(raw.as_deref()).unwrap_or(hw)
}

/// Parses an `NB_NUM_THREADS` value. `None` (unset) defers to the machine
/// parallelism; anything set must be a positive integer — a typo silently
/// falling back to the hardware width would make "pinned" benchmark and
/// verification runs lie about their thread count.
///
/// # Panics
///
/// Panics with a clear message on `0` or non-numeric input.
fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => panic!(
            "NB_NUM_THREADS must be a positive integer, got {raw:?} \
             (unset it to use the machine parallelism)"
        ),
    }
}

/// Full pool width (workers plus the participating caller), ignoring any
/// active [`with_thread_cap`].
///
/// This is the `threads` component of autotune selector keys: it is constant
/// for the life of the process, so a capped re-run (how the test suite checks
/// width invariance) still resolves to the same kernel variant and therefore
/// the same bits. Use [`num_threads`] for deciding how much parallelism to
/// actually spend.
pub(crate) fn pool_width() -> usize {
    pool().workers + 1
}

/// The number of threads data-parallel kernels may use, including the caller.
///
/// Honors the `NB_NUM_THREADS` override and any active [`with_thread_cap`].
pub fn num_threads() -> usize {
    let width = pool().workers + 1;
    match THREAD_CAP.with(|c| c.get()) {
        Some(cap) => width.min(cap.max(1)),
        None => width,
    }
}

/// Runs `f` with parallel kernels capped at `cap` threads on this thread.
///
/// Used by tests to compare single-threaded and multi-threaded execution in
/// one process; `NB_NUM_THREADS` covers the whole-process case.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_CAP.with(|c| c.replace(Some(cap)));
    let result = f();
    THREAD_CAP.with(|c| c.set(prev));
    result
}

/// Runs `f(0..total)` across the worker pool, returning when all tasks are
/// done. Tasks must be independent; each should write only its own output
/// region. Runs inline when the pool width is 1, the cap is 1, `total <= 1`,
/// or when called from inside a pool worker (nested parallelism).
pub fn parallel_for(total: usize, f: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    let pool = pool();
    let width = num_threads();
    if total == 1 || width <= 1 || pool.workers == 0 || IN_WORKER.with(|w| w.get()) {
        for i in 0..total {
            f(i);
        }
        return;
    }
    // Safety: we block on `finished` below, so `f` outlives the job.
    let task = TaskFn(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
            f as *const (dyn Fn(usize) + Sync),
        )
    });
    let job = Arc::new(JobState {
        task,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        total,
        finished: Mutex::new(false),
        cv: Condvar::new(),
    });
    let helpers = pool.workers.min(width - 1).min(total - 1);
    {
        let mut q = pool.shared.queue.lock().unwrap();
        for _ in 0..helpers {
            q.push_back(Arc::clone(&job));
        }
    }
    for _ in 0..helpers {
        pool.shared.cv.notify_one();
    }
    job.participate();
    let mut finished = job.finished.lock().unwrap();
    while !*finished {
        finished = job.cv.wait(finished).unwrap();
    }
}

/// A raw mutable view over a slice that tasks may write through in parallel.
///
/// Callers hand each task a *disjoint* `(offset, len)` window; creating two
/// overlapping windows concurrently is undefined behavior, which is why
/// [`SharedMut::slice`] is `unsafe`.
pub(crate) struct SharedMut<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for SharedMut<T> {}
unsafe impl<T: Send> Send for SharedMut<T> {}

impl<T> SharedMut<T> {
    pub(crate) fn new(data: &mut [T]) -> Self {
        SharedMut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// A mutable window at `offset..offset + len`.
    ///
    /// # Safety
    ///
    /// The window must be in bounds and must not overlap any other window
    /// alive at the same time.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self, offset: usize, len: usize) -> &mut [T] {
        debug_assert!(offset + len <= self.len, "SharedMut window out of bounds");
        std::slice::from_raw_parts_mut(self.ptr.add(offset), len)
    }
}

/// Thread-local scratch buffers, one static per concurrent use site.
///
/// `with_scratch` hands out the buffer stored under `key`, growing it to at
/// least `len` and clearing nothing: callers must fully overwrite what they
/// read. Reentrant use of the *same* key falls back to a fresh allocation
/// (the `Cell::take` leaves an empty vec behind), so nesting is safe, just
/// not free — distinct call sites should use distinct keys.
pub(crate) fn with_scratch<R>(
    key: &'static std::thread::LocalKey<Cell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    key.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let result = f(&mut buf[..len]);
        cell.set(buf);
        result
    })
}

thread_local! {
    /// Packed A panels for the blocked GEMM.
    pub(crate) static GEMM_PACK_A: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Packed B panels for the blocked GEMM.
    pub(crate) static GEMM_PACK_B: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Materialized im2col column matrix. The conv *forward* path no longer
    /// uses this — it reads the input through a virtual im2col view inside
    /// GEMM packing — so it only backs the backward pass (which reads the
    /// column matrix twice) and the explicit forward twin kept for the
    /// differential verification suites.
    pub(crate) static CONV_COLS: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Column-gradient matrix for conv backward.
    pub(crate) static CONV_DCOLS: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Per-sample dW/db partials for conv backward, reduced on the caller.
    pub(crate) static CONV_DW_PARTS: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn thread_override_parses_positive_integers() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_override(Some("1")), Some(1));
    }

    #[test]
    #[should_panic(expected = "NB_NUM_THREADS must be a positive integer")]
    fn thread_override_rejects_zero() {
        parse_thread_override(Some("0"));
    }

    #[test]
    #[should_panic(expected = "NB_NUM_THREADS must be a positive integer")]
    fn thread_override_rejects_non_numeric() {
        parse_thread_override(Some("all"));
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let counts: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        parallel_for(1000, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_tasks() {
        parallel_for(0, &|_| panic!("no tasks expected"));
        let hit = AtomicU32::new(0);
        parallel_for(1, &|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let total = AtomicU32::new(0);
        parallel_for(8, &|_| {
            parallel_for(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn thread_cap_forces_inline() {
        with_thread_cap(1, || {
            assert_eq!(num_threads(), 1);
            let main = std::thread::current().id();
            parallel_for(32, &|_| {
                assert_eq!(std::thread::current().id(), main);
            });
        });
    }

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 4096];
        let shared = SharedMut::new(&mut data);
        parallel_for(64, &|t| {
            let chunk = unsafe { shared.slice(t * 64, 64) };
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (t * 64 + i) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn scratch_reuse_and_reentrancy() {
        thread_local! {
            static KEY: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
        }
        with_scratch(&KEY, 16, |outer| {
            outer.fill(1.0);
            with_scratch(&KEY, 8, |inner| inner.fill(2.0));
            assert!(outer.iter().all(|&v| v == 1.0));
        });
        // The outer buffer was restored; a follow-up borrow sees >= capacity.
        with_scratch(&KEY, 4, |buf| assert_eq!(buf.len(), 4));
    }
}
