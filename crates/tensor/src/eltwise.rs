//! Shared elementwise forward kernels.
//!
//! These are the single source of truth for the pointwise math that both
//! execution paths run: the taped autograd forward (`nb-autograd`) and the
//! grad-free inference context (`nb-nn`'s `InferCtx`) call the same
//! functions here, so their outputs are bitwise identical by construction.
//! Every kernel is in-place over an exclusively-owned tensor (the COW layer
//! detaches shared buffers first), iterates in flat row-major order, and
//! uses exactly one f32 expression per element — keep it that way: any
//! reassociation or fusing here changes bits on *both* paths at once, which
//! is the point.

use crate::Tensor;

/// Adds a `[c]` bias across the channels of an `[n,c,h,w]` tensor in place.
///
/// # Panics
///
/// Panics if `x` is not rank 4 or `bias` is not `[c]`.
pub fn add_bias4_inplace(x: &mut Tensor, bias: &Tensor) {
    let (_, c, h, w) = x.shape().nchw();
    assert_eq!(bias.dims(), &[c], "add_bias4 bias shape");
    let bs = bias.as_slice();
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        *v += bs[(i / (h * w)) % c];
    }
}

/// Adds an `[f]` bias across the rows of an `[n,f]` tensor in place.
///
/// # Panics
///
/// Panics if `x` is not rank 2 or `bias` is not `[f]`.
pub fn add_bias2_inplace(x: &mut Tensor, bias: &Tensor) {
    let (_, f) = x.shape().rc();
    assert_eq!(bias.dims(), &[f], "add_bias2 bias shape");
    let bs = bias.as_slice();
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        *v += bs[i % f];
    }
}

/// Per-channel inverse standard deviation `1 / sqrt(var + eps)`.
pub fn bn_invstd(var: &Tensor, eps: f32) -> Tensor {
    var.map(|v| 1.0 / (v + eps).sqrt())
}

/// Applies the batch-norm affine transform
/// `y = gamma * (x - mean) * invstd + beta` per channel, in place, over an
/// `[n,c,h,w]` tensor.
///
/// # Panics
///
/// Panics if `x` is not rank 4 or the statistics are not `[c]`.
pub fn bn_apply_inplace(
    x: &mut Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    invstd: &Tensor,
) {
    let (_, c, h, w) = x.shape().nchw();
    assert_eq!(gamma.dims(), &[c], "bn gamma shape");
    assert_eq!(beta.dims(), &[c], "bn beta shape");
    assert_eq!(mean.dims(), &[c], "bn mean shape");
    assert_eq!(invstd.dims(), &[c], "bn invstd shape");
    let g = gamma.as_slice();
    let b = beta.as_slice();
    let ms = mean.as_slice();
    let is = invstd.as_slice();
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        let ci = (i / (h * w)) % c;
        *v = g[ci] * (*v - ms[ci]) * is[ci] + b[ci];
    }
}

/// Decayable ReLU `y = max(alpha*x, x)` in place (NetBooster Eq. 2).
pub fn relu_decay_inplace(x: &mut Tensor, alpha: f32) {
    relu_decay_slice(x.as_mut_slice(), alpha);
}

/// Decayable ReLU6 `y = max(alpha*x, x) - (1-alpha)*max(0, x-6)` in place.
pub fn relu6_decay_inplace(x: &mut Tensor, alpha: f32) {
    relu6_decay_slice(x.as_mut_slice(), alpha);
}

/// [`relu_decay_inplace`] over a raw buffer — the same single f32
/// expression, callable from kernel epilogues that hold a slice rather
/// than a tensor.
pub fn relu_decay_slice(x: &mut [f32], alpha: f32) {
    for v in x {
        *v = v.max(alpha * *v);
    }
}

/// [`relu6_decay_inplace`] over a raw buffer.
pub fn relu6_decay_slice(x: &mut [f32], alpha: f32) {
    for v in x {
        *v = v.max(alpha * *v) - (1.0 - alpha) * (*v - 6.0).max(0.0);
    }
}

/// A pointwise activation fused into a GEMM / convolution epilogue.
///
/// The variants delegate to the slice kernels above, so a fused epilogue
/// produces exactly the bits a separate elementwise pass would: fusing
/// changes *when* the expression runs, never *what* it computes.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Epilogue {
    /// No activation; the output is left as the kernel produced it.
    #[default]
    None,
    /// Decayable ReLU `y = max(alpha*x, x)`.
    Relu {
        /// PLT decay slope (1.0 = identity).
        alpha: f32,
    },
    /// Decayable ReLU6 `y = max(alpha*x, x) - (1-alpha)*max(0, x-6)`.
    Relu6 {
        /// PLT decay slope (1.0 = identity).
        alpha: f32,
    },
}

impl Epilogue {
    /// Applies the activation to a finished output buffer (no-op for
    /// [`Epilogue::None`]).
    #[inline]
    pub fn apply(self, x: &mut [f32]) {
        match self {
            Epilogue::None => {}
            Epilogue::Relu { alpha } => relu_decay_slice(x, alpha),
            Epilogue::Relu6 { alpha } => relu6_decay_slice(x, alpha),
        }
    }

    /// True when applying this epilogue would leave the buffer unchanged.
    pub fn is_identity(self) -> bool {
        match self {
            Epilogue::None => true,
            Epilogue::Relu { alpha } | Epilogue::Relu6 { alpha } => alpha >= 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias4_broadcasts_per_channel() {
        let mut x = Tensor::zeros([1, 2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        add_bias4_inplace(&mut x, &b);
        assert_eq!(x.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn bias2_broadcasts_per_row() {
        let mut x = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        add_bias2_inplace(&mut x, &b);
        assert_eq!(x.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bn_affine_matches_formula() {
        let mut x = Tensor::full([2, 1, 1, 1], 10.0);
        let invstd = bn_invstd(&Tensor::full([1], 4.0), 0.0);
        bn_apply_inplace(
            &mut x,
            &Tensor::full([1], 2.0),
            &Tensor::full([1], 1.0),
            &Tensor::full([1], 8.0),
            &invstd,
        );
        // 2 * (10-8)/2 + 1 = 3
        assert!(x.allclose(&Tensor::full([2, 1, 1, 1], 3.0), 1e-6));
    }

    #[test]
    fn relu_decay_endpoints() {
        let base = Tensor::from_vec(vec![-2.0, 3.0], [2]).unwrap();
        let mut t = base.clone();
        relu_decay_inplace(&mut t, 0.0);
        assert_eq!(t.as_slice(), &[0.0, 3.0]);
        let mut t = base.clone();
        relu_decay_inplace(&mut t, 1.0);
        assert_eq!(t.as_slice(), &[-2.0, 3.0]);
        let mut t = base;
        relu_decay_inplace(&mut t, 0.5);
        assert_eq!(t.as_slice(), &[-1.0, 3.0]);
    }

    #[test]
    fn relu6_decay_endpoints() {
        let base = Tensor::from_vec(vec![-2.0, 3.0, 8.0], [3]).unwrap();
        let mut t = base.clone();
        relu6_decay_inplace(&mut t, 0.0);
        assert_eq!(t.as_slice(), &[0.0, 3.0, 6.0]);
        let mut t = base;
        relu6_decay_inplace(&mut t, 1.0);
        assert_eq!(t.as_slice(), &[-2.0, 3.0, 8.0]);
    }
}
