//! Cache-blocked, packed GEMM — the single kernel behind every matmul
//! variant and the im2col convolution path.
//!
//! The kernel follows the classic BLIS/GotoBLAS decomposition: the `n`
//! dimension is split into `NC` strips, the `k` dimension into `KC` panels,
//! and the `m` dimension into `MC` blocks. For each `(KC, NC)` panel B is
//! packed into contiguous `KC x NR` slivers, and for each `(MC, KC)` block A
//! is packed into `KC x MR` slivers; an `MR x NR` register-tile microkernel
//! with a fully unrolled inner loop then walks the packed panels. Packing
//! happens in thread-local scratch buffers (see [`crate::threadpool`]) so
//! steady-state GEMMs allocate nothing.
//!
//! Builds target baseline `x86-64`, so on x86-64 hosts the tile loop
//! dispatches at runtime (via `is_x86_feature_detected!`) to an AVX2+FMA
//! microkernel with eight independent accumulator chains; every other
//! configuration uses the portable autovectorized kernel.
//!
//! Transposed operands (`matmul_nt`, `matmul_tn`, and the conv gradients)
//! are handled at pack time: the pack routines read A / B through either
//! layout, so all four variants share one microkernel and one parallel
//! scheduler. Parallelism splits the `m` dimension only; every output element
//! is produced by exactly one thread with a fixed k-accumulation order, so
//! results are bitwise identical regardless of thread count.

use crate::eltwise::Epilogue;
use crate::threadpool::{self, with_scratch, SharedMut, GEMM_PACK_A, GEMM_PACK_B};

/// Microkernel tile height (rows of C held in registers).
pub const MR: usize = 4;
/// Microkernel tile width (columns of C held in registers).
pub const NR: usize = 8;
/// Rows of A packed per L2-resident block (multiple of `MR`).
const MC: usize = 64;
/// Depth of a packed panel (inner dimension per pass).
const KC: usize = 256;
/// Columns of B packed per strip (multiple of `NR`).
const NC: usize = 256;

/// Below this many multiply-adds the naive loops beat packing overhead.
const SMALL_MNK: usize = 16 * 16 * 16;
/// Below this many multiply-adds a single thread beats pool dispatch.
const PARALLEL_MNK: usize = 1 << 17;

/// General matrix multiply: `C = A' * B'` (or `C += A' * B'`).
///
/// `A'` is the logical `m x k` left operand: the slice `a` stores it
/// row-major when `a_trans` is false, or as its `k x m` row-major transpose
/// when `a_trans` is true (so `matmul_tn` needs no materialized transpose).
/// `B'` is the logical `k x n` right operand with the same convention:
/// `b_trans` means `b` stores the `n x k` transpose.
///
/// When `accumulate` is false, `c` is overwritten; if `row_init` is given
/// (length `m`), element `c[i, j]` starts from `row_init[i]` instead of zero
/// — this is how the convolution forward pass fuses its bias add into the
/// GEMM epilogue. When `accumulate` is true, the product is added onto the
/// existing contents of `c` (`row_init` must be `None`).
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions or if
/// `row_init` is combined with `accumulate`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm lhs buffer length");
    assert_eq!(b.len(), k * n, "gemm rhs buffer length");
    assert_eq!(c.len(), m * n, "gemm out buffer length");
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "gemm row_init length");
        assert!(!accumulate, "gemm row_init requires accumulate = false");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // No products to add: the epilogue alone defines the output.
        if !accumulate {
            for i in 0..m {
                let base = row_init.map_or(0.0, |r| r[i]);
                c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
            }
        }
        return;
    }
    let mnk = m * n * k;
    if mnk < SMALL_MNK {
        gemm_naive(a, a_trans, b, b_trans, c, m, k, n, row_init, accumulate);
        return;
    }
    let threads = threadpool::num_threads();
    if mnk < PARALLEL_MNK || threads <= 1 || m < 2 * MR {
        gemm_blocked(
            a, a_trans, b, b_trans, c, 0, m, m, k, n, row_init, accumulate,
        );
        return;
    }
    // Split rows into MR-aligned chunks, one task each. Each task runs the
    // full blocked algorithm on its row range, so the k-order per output
    // element (and hence the bit pattern) is independent of the split.
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let tasks = m.div_ceil(chunk);
    let shared_c = SharedMut::new(c);
    threadpool::parallel_for(tasks, &|t| {
        let i0 = t * chunk;
        let rows = chunk.min(m - i0);
        // Safety: row ranges [i0, i0 + rows) are disjoint across tasks.
        let c_rows = unsafe { shared_c.slice(i0 * n, rows * n) };
        gemm_blocked(
            a, a_trans, b, b_trans, c_rows, i0, rows, m, k, n, row_init, accumulate,
        );
    });
}

/// Element of the logical `k x n` right operand (see [`gemm`] layout rules).
#[inline(always)]
fn b_at(b: &[f32], b_trans: bool, k: usize, n: usize, p: usize, j: usize) -> f32 {
    if b_trans {
        b[j * k + p]
    } else {
        b[p * n + j]
    }
}

/// Reference kernel: simple loops, no packing. Used for small problems and
/// as the ground truth in tests.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_naive(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    if !accumulate {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
    }
    match (a_trans, b_trans) {
        (false, false) => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &a_ip) in a_row.iter().enumerate() {
                    let b_row = &b[p * n..(p + 1) * n];
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_ip * b_pj;
                    }
                }
            }
        }
        (false, true) => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *c_ij += acc;
                }
            }
        }
        (true, false) => {
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &a_pi) in a_row.iter().enumerate() {
                    if a_pi == 0.0 {
                        continue;
                    }
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_pi * b_pj;
                    }
                }
            }
        }
        (true, true) => {
            for i in 0..m {
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[p * m + i] * b[j * k + p];
                    }
                    *c_ij += acc;
                }
            }
        }
    }
}

/// Packs the `kc x nc` panel of B starting at `(p0, j0)` into `NR`-wide
/// slivers: `bp[(jr * kc + p) * NR + j]` holds `B[p0 + p, j0 + jr * NR + j]`,
/// zero-padded past `n`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bp: &mut [f32],
    b: &[f32],
    b_trans: bool,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for jr in 0..panels {
        let j_base = j0 + jr * NR;
        let width = NR.min(j0 + nc - j_base);
        let dst = &mut bp[jr * kc * NR..(jr * kc + kc) * NR];
        if !b_trans && width == NR {
            for (p, chunk) in dst.chunks_exact_mut(NR).enumerate() {
                chunk.copy_from_slice(&b[(p0 + p) * n + j_base..(p0 + p) * n + j_base + NR]);
            }
        } else {
            for (p, chunk) in dst.chunks_exact_mut(NR).enumerate() {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = if j < width {
                        b_at(b, b_trans, k, n, p0 + p, j_base + j)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs the `mc x kc` block of A starting at `(i0, p0)` into `MR`-tall
/// slivers: `ap[(ir * kc + p) * MR + r]` holds `A[i0 + ir * MR + r, p0 + p]`,
/// zero-padded past `m`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ap: &mut [f32],
    a: &[f32],
    a_trans: bool,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    for ir in 0..panels {
        let i_base = i0 + ir * MR;
        let height = MR.min(i0 + mc - i_base);
        let dst = &mut ap[ir * kc * MR..(ir * kc + kc) * MR];
        if a_trans {
            for (p, chunk) in dst.chunks_exact_mut(MR).enumerate() {
                let a_row = &a[(p0 + p) * m + i_base..(p0 + p) * m + i_base + height];
                for (r, v) in chunk.iter_mut().enumerate() {
                    *v = if r < height { a_row[r] } else { 0.0 };
                }
            }
        } else {
            for (p, chunk) in dst.chunks_exact_mut(MR).enumerate() {
                for (r, v) in chunk.iter_mut().enumerate() {
                    *v = if r < height {
                        a[(i_base + r) * k + p0 + p]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// `MR x NR` register tile over packed slivers: the hot loop of the crate.
/// `ap` is one `kc x MR` sliver, `bp` one `kc x NR` sliver.
#[inline(always)]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a_p, b_p) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        // Fixed-size views so LLVM unrolls and vectorizes without bounds
        // checks; MR broadcasts against one NR-wide row per k step.
        let a_p: &[f32; MR] = a_p.try_into().unwrap();
        let b_p: &[f32; NR] = b_p.try_into().unwrap();
        for r in 0..MR {
            let a_v = a_p[r];
            for j in 0..NR {
                acc[r][j] += a_v * b_p[j];
            }
        }
    }
}

/// True when the runtime CPU supports the AVX2+FMA microkernel. The builds
/// target baseline `x86-64`, so this is a runtime decision, not a compile
/// flag; detection results are cached by `is_x86_feature_detected!`.
#[inline]
fn use_fma_kernel() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dispatches one register tile to the best available microkernel.
#[inline(always)]
fn run_microkernel(fma: bool, kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if fma {
        // Safety: `fma` is only true when AVX2+FMA were detected at runtime,
        // and the slivers are at least `kc` packed rows long.
        unsafe { x86::microkernel_fma(kc, ap, bp, acc) };
        return;
    }
    let _ = fma;
    microkernel(kc, ap, bp, acc);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// AVX2+FMA twin of [`super::microkernel`]: each C row is one `ymm`
    /// accumulator, and k is unrolled by two into separate accumulator banks
    /// (8 independent FMA chains) so the loop is throughput-bound instead of
    /// FMA-latency-bound. The banks are summed at the end, so the k-reduction
    /// is pairwise — still a fixed order, just not the serial order of the
    /// scalar kernel.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` target features at runtime, and sliver
    /// slices holding at least `kc` packed rows (`kc * MR` / `kc * NR`
    /// elements).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel_fma(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        let mut a_ptr = ap.as_ptr();
        let mut b_ptr = bp.as_ptr();
        let mut e0 = _mm256_setzero_ps();
        let mut e1 = _mm256_setzero_ps();
        let mut e2 = _mm256_setzero_ps();
        let mut e3 = _mm256_setzero_ps();
        let mut o0 = _mm256_setzero_ps();
        let mut o1 = _mm256_setzero_ps();
        let mut o2 = _mm256_setzero_ps();
        let mut o3 = _mm256_setzero_ps();
        for _ in 0..kc / 2 {
            let b0 = _mm256_loadu_ps(b_ptr);
            e0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr), b0, e0);
            e1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(1)), b0, e1);
            e2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(2)), b0, e2);
            e3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(3)), b0, e3);
            let b1 = _mm256_loadu_ps(b_ptr.add(NR));
            o0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR)), b1, o0);
            o1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR + 1)), b1, o1);
            o2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR + 2)), b1, o2);
            o3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR + 3)), b1, o3);
            a_ptr = a_ptr.add(2 * MR);
            b_ptr = b_ptr.add(2 * NR);
        }
        if kc % 2 == 1 {
            let b0 = _mm256_loadu_ps(b_ptr);
            e0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr), b0, e0);
            e1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(1)), b0, e1);
            e2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(2)), b0, e2);
            e3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(3)), b0, e3);
        }
        let rows = [
            _mm256_add_ps(e0, o0),
            _mm256_add_ps(e1, o1),
            _mm256_add_ps(e2, o2),
            _mm256_add_ps(e3, o3),
        ];
        for (row, sum) in acc.iter_mut().zip(rows) {
            let prev = _mm256_loadu_ps(row.as_ptr());
            _mm256_storeu_ps(row.as_mut_ptr(), _mm256_add_ps(prev, sum));
        }
    }
}

/// Blocked GEMM over the row range `[i0, i0 + mc)` of the full problem.
/// `c` holds exactly those rows (`mc x n`, row-major).
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    i0: usize,
    mc_total: usize,
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    let fma = use_fma_kernel();
    with_scratch(&GEMM_PACK_B, KC * NC.div_ceil(NR) * NR, |bp| {
        with_scratch(&GEMM_PACK_A, KC * MC.div_ceil(MR) * MR, |ap| {
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                for pc in (0..k).step_by(KC) {
                    let kc = KC.min(k - pc);
                    pack_b(bp, b, b_trans, k, n, pc, kc, jc, nc);
                    let first = pc == 0;
                    for ic in (0..mc_total).step_by(MC) {
                        let mc = MC.min(mc_total - ic);
                        pack_a(ap, a, a_trans, m, k, i0 + ic, mc, pc, kc);
                        macro_kernel(
                            ap, bp, c, ic, mc, jc, nc, n, kc, i0, row_init, accumulate, first, fma,
                        );
                    }
                }
            }
        })
    })
}

/// Walks the packed block: one microkernel call per `MR x NR` tile, then the
/// epilogue writes the tile into C (initializing from zero / `row_init` on
/// the first k-panel, accumulating afterwards).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    n: usize,
    kc: usize,
    i0: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
    first: bool,
    fma: bool,
) {
    for jr in 0..nc.div_ceil(NR) {
        let j_base = jc + jr * NR;
        let width = NR.min(jc + nc - j_base);
        let b_sliver = &bp[jr * kc * NR..(jr * kc + kc) * NR];
        for ir in 0..mc.div_ceil(MR) {
            let i_base = ic + ir * MR;
            let height = MR.min(ic + mc - i_base);
            let a_sliver = &ap[ir * kc * MR..(ir * kc + kc) * MR];
            let mut acc = [[0.0f32; NR]; MR];
            run_microkernel(fma, kc, a_sliver, b_sliver, &mut acc);
            for r in 0..height {
                let c_row = &mut c[(i_base + r) * n + j_base..(i_base + r) * n + j_base + width];
                if first && !accumulate {
                    let base = row_init.map_or(0.0, |init| init[i0 + i_base + r]);
                    for (c_v, &t) in c_row.iter_mut().zip(&acc[r]) {
                        *c_v = base + t;
                    }
                } else {
                    for (c_v, &t) in c_row.iter_mut().zip(&acc[r]) {
                        *c_v += t;
                    }
                }
            }
        }
    }
}

/// A left operand packed once into the GEMM panel format.
///
/// The panel layout is byte-identical to what [`gemm`] packs per call: for
/// each `KC`-deep k-panel starting at `pc`, all `m.div_ceil(MR)` row slivers
/// are stored contiguously at `pc * m.div_ceil(MR) * MR`, each sliver being
/// `kc x MR` (zero-padded past `m`). The blocked kernel then slices straight
/// into the prepacked buffer instead of repacking, so results stay bitwise
/// identical to the pack-on-demand path. The raw operand is retained so the
/// small-problem dispatch can run the same naive loops [`gemm`] would.
pub struct PackedA {
    panels: Vec<f32>,
    raw: Vec<f32>,
    trans: bool,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs the logical `m x k` left operand (layout rules as in [`gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(a: &[f32], a_trans: bool, m: usize, k: usize) -> Self {
        assert_eq!(a.len(), m * k, "PackedA operand length");
        let mb = m.div_ceil(MR);
        let mut panels = vec![0.0f32; k * mb * MR];
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let slab = &mut panels[pc * mb * MR..(pc + kc) * mb * MR];
            pack_a(slab, a, a_trans, m, k, 0, m, pc, kc);
        }
        PackedA {
            panels,
            raw: a.to_vec(),
            trans: a_trans,
            m,
            k,
        }
    }

    /// Logical row count `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical inner dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Heap bytes held by this pack (panels + retained raw operand).
    pub fn bytes(&self) -> usize {
        (self.panels.len() + self.raw.len()) * std::mem::size_of::<f32>()
    }
}

/// A right operand packed once into the GEMM panel format.
///
/// Mirror image of [`PackedA`]: for each k-panel at `pc`, all
/// `n.div_ceil(NR)` column slivers live contiguously at
/// `pc * n.div_ceil(NR) * NR`, each `kc x NR` and zero-padded past `n`.
pub struct PackedB {
    panels: Vec<f32>,
    raw: Vec<f32>,
    trans: bool,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs the logical `k x n` right operand (layout rules as in [`gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f32], b_trans: bool, k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "PackedB operand length");
        let nb = n.div_ceil(NR);
        let mut panels = vec![0.0f32; k * nb * NR];
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let slab = &mut panels[pc * nb * NR..(pc + kc) * nb * NR];
            pack_b(slab, b, b_trans, k, n, pc, kc, 0, n);
        }
        PackedB {
            panels,
            raw: b.to_vec(),
            trans: b_trans,
            k,
            n,
        }
    }

    /// Logical inner dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical column count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Heap bytes held by this pack (panels + retained raw operand).
    pub fn bytes(&self) -> usize {
        (self.panels.len() + self.raw.len()) * std::mem::size_of::<f32>()
    }
}

/// [`gemm`] with a prepacked left operand and a fused activation epilogue:
/// `C = act(A' * B' + row_init)`.
///
/// Dispatch mirrors [`gemm`] exactly (naive below the small-problem cutoff,
/// serial or row-split blocked otherwise), and the prepacked panels are
/// byte-identical to what the blocked path would pack, so the output bits
/// match `gemm` followed by a separate elementwise activation pass for every
/// thread count. The epilogue is applied per row-chunk on the parallel path,
/// which is equivalent because it is pointwise.
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn gemm_a_packed(
    pa: &PackedA,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    n: usize,
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "gemm_a_packed rhs buffer length");
    assert_eq!(c.len(), m * n, "gemm_a_packed out buffer length");
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "gemm_a_packed row_init length");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
        act.apply(c);
        return;
    }
    let mnk = m * n * k;
    if mnk < SMALL_MNK {
        gemm_naive(&pa.raw, pa.trans, b, b_trans, c, m, k, n, row_init, false);
        act.apply(c);
        return;
    }
    let threads = threadpool::num_threads();
    if mnk < PARALLEL_MNK || threads <= 1 || m < 2 * MR {
        gemm_blocked_pa(pa, b, b_trans, c, 0, m, n, row_init);
        act.apply(c);
        return;
    }
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let tasks = m.div_ceil(chunk);
    let shared_c = SharedMut::new(c);
    threadpool::parallel_for(tasks, &|t| {
        let i0 = t * chunk;
        let rows = chunk.min(m - i0);
        // Safety: row ranges [i0, i0 + rows) are disjoint across tasks.
        let c_rows = unsafe { shared_c.slice(i0 * n, rows * n) };
        gemm_blocked_pa(pa, b, b_trans, c_rows, i0, rows, n, row_init);
        act.apply(c_rows);
    });
}

/// [`gemm`] with a prepacked right operand and a fused activation epilogue:
/// `C = act(A' * B' + row_init)`. See [`gemm_a_packed`] for the bitwise
/// contract; this is its mirror for linear layers, where the weight is the
/// right operand.
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn gemm_b_packed(
    a: &[f32],
    a_trans: bool,
    pb: &PackedB,
    c: &mut [f32],
    m: usize,
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    let (k, n) = (pb.k, pb.n);
    assert_eq!(a.len(), m * k, "gemm_b_packed lhs buffer length");
    assert_eq!(c.len(), m * n, "gemm_b_packed out buffer length");
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "gemm_b_packed row_init length");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
        act.apply(c);
        return;
    }
    let mnk = m * n * k;
    if mnk < SMALL_MNK {
        gemm_naive(a, a_trans, &pb.raw, pb.trans, c, m, k, n, row_init, false);
        act.apply(c);
        return;
    }
    let threads = threadpool::num_threads();
    if mnk < PARALLEL_MNK || threads <= 1 || m < 2 * MR {
        gemm_blocked_pb(a, a_trans, pb, c, 0, m, m, row_init);
        act.apply(c);
        return;
    }
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let tasks = m.div_ceil(chunk);
    let shared_c = SharedMut::new(c);
    threadpool::parallel_for(tasks, &|t| {
        let i0 = t * chunk;
        let rows = chunk.min(m - i0);
        // Safety: row ranges [i0, i0 + rows) are disjoint across tasks.
        let c_rows = unsafe { shared_c.slice(i0 * n, rows * n) };
        gemm_blocked_pb(a, a_trans, pb, c_rows, i0, rows, m, row_init);
        act.apply(c_rows);
    });
}

/// [`gemm_blocked`] with A read from prepacked panels instead of repacking.
/// `MC` is a multiple of `MR` and the parallel row split is `MR`-aligned, so
/// `(i0 + ic) / MR` lands exactly on a sliver boundary and the existing
/// [`macro_kernel`] indexing works unchanged on the slab tail.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_pa(
    pa: &PackedA,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    i0: usize,
    mc_total: usize,
    n: usize,
    row_init: Option<&[f32]>,
) {
    let (m, k) = (pa.m, pa.k);
    let mb = m.div_ceil(MR);
    let fma = use_fma_kernel();
    with_scratch(&GEMM_PACK_B, KC * NC.div_ceil(NR) * NR, |bp| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(bp, b, b_trans, k, n, pc, kc, jc, nc);
                let first = pc == 0;
                let slab = &pa.panels[pc * mb * MR..];
                for ic in (0..mc_total).step_by(MC) {
                    let mc = MC.min(mc_total - ic);
                    let ap = &slab[(i0 + ic) / MR * kc * MR..];
                    macro_kernel(
                        ap, bp, c, ic, mc, jc, nc, n, kc, i0, row_init, false, first, fma,
                    );
                }
            }
        }
    })
}

/// [`gemm_blocked`] with B read from prepacked panels instead of repacking.
/// `NC` is a multiple of `NR`, so `jc / NR` lands exactly on a sliver
/// boundary within the k-panel's slab.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_pb(
    a: &[f32],
    a_trans: bool,
    pb: &PackedB,
    c: &mut [f32],
    i0: usize,
    mc_total: usize,
    m: usize,
    row_init: Option<&[f32]>,
) {
    let (k, n) = (pb.k, pb.n);
    let nb = n.div_ceil(NR);
    let fma = use_fma_kernel();
    with_scratch(&GEMM_PACK_A, KC * MC.div_ceil(MR) * MR, |ap| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let bp = &pb.panels[pc * nb * NR + jc / NR * kc * NR..];
                let first = pc == 0;
                for ic in (0..mc_total).step_by(MC) {
                    let mc = MC.min(mc_total - ic);
                    pack_a(ap, a, a_trans, m, k, i0 + ic, mc, pc, kc);
                    macro_kernel(
                        ap, bp, c, ic, mc, jc, nc, n, kc, i0, row_init, false, first, fma,
                    );
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threadpool::with_thread_cap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    /// Shapes chosen to stress every tail: non-multiples of MR/NR/MC/KC/NC,
    /// unit dimensions, and panel-boundary +/- 1 cases.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (5, 1, 9),
        (1, 300, 1),
        (4, 8, 8),
        (7, 13, 11),
        (16, 16, 16),
        (33, 65, 17),
        (64, 64, 64),
        (65, 255, 63),
        (40, 256, 24),
        (40, 257, 24),
        (3, 513, 130),
        (130, 30, 300),
        (128, 128, 128),
    ];

    fn check_variant(a_trans: bool, b_trans: bool) {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            gemm(&a, a_trans, &b, b_trans, &mut got, m, k, n, None, false);
            gemm_naive(&a, a_trans, &b, b_trans, &mut want, m, k, n, None, false);
            let diff = got
                .iter()
                .zip(&want)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(
                diff <= 1e-4 * (k as f32).sqrt(),
                "({m},{k},{n}) at={a_trans} bt={b_trans}: max diff {diff}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_nn() {
        check_variant(false, false);
    }

    #[test]
    fn blocked_matches_naive_nt() {
        check_variant(false, true);
    }

    #[test]
    fn blocked_matches_naive_tn() {
        check_variant(true, false);
    }

    #[test]
    fn blocked_matches_naive_tt() {
        check_variant(true, true);
    }

    #[test]
    fn row_init_seeds_output() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (65, 129, 33)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let init = fill(m, &mut rng);
            let mut got = vec![0.0f32; m * n];
            gemm(&a, false, &b, false, &mut got, m, k, n, Some(&init), false);
            let mut want = vec![0.0f32; m * n];
            gemm_naive(&a, false, &b, false, &mut want, m, k, n, Some(&init), false);
            let diff = got
                .iter()
                .zip(&want)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(diff <= 1e-4 * (k as f32).sqrt(), "({m},{k},{n}): {diff}");
        }
    }

    #[test]
    fn accumulate_adds_onto_existing() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (33, 70, 29);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let start = fill(m * n, &mut rng);
        let mut got = start.clone();
        gemm(&a, false, &b, false, &mut got, m, k, n, None, true);
        let mut prod = vec![0.0f32; m * n];
        gemm_naive(&a, false, &b, false, &mut prod, m, k, n, None, false);
        for i in 0..m * n {
            assert!((got[i] - (start[i] + prod[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn k_zero_writes_init() {
        let mut c = vec![9.0f32; 6];
        gemm(
            &[],
            false,
            &[],
            false,
            &mut c,
            2,
            0,
            3,
            Some(&[1.0, 2.0]),
            false,
        );
        assert_eq!(c, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let mut c2 = vec![5.0f32; 6];
        gemm(&[], false, &[], false, &mut c2, 2, 0, 3, None, true);
        assert_eq!(c2, vec![5.0f32; 6]);
    }

    #[test]
    fn packed_a_matches_gemm_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let init = fill(m, &mut rng);
            for (a_trans, row_init) in [(false, None), (true, Some(&init[..]))] {
                let stored = if a_trans {
                    // Re-lay A as its k x m transpose.
                    let mut t = vec![0.0f32; m * k];
                    for i in 0..m {
                        for p in 0..k {
                            t[p * m + i] = a[i * k + p];
                        }
                    }
                    t
                } else {
                    a.clone()
                };
                let pa = PackedA::pack(&stored, a_trans, m, k);
                let mut got = vec![0.0f32; m * n];
                gemm_a_packed(&pa, &b, false, &mut got, n, row_init, Epilogue::None);
                let mut want = vec![0.0f32; m * n];
                gemm(
                    &stored, a_trans, &b, false, &mut want, m, k, n, row_init, false,
                );
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "({m},{k},{n}) at={a_trans}: packed A not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn packed_b_matches_gemm_bitwise() {
        let mut rng = StdRng::seed_from_u64(22);
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            for b_trans in [false, true] {
                let stored = if b_trans {
                    let mut t = vec![0.0f32; k * n];
                    for p in 0..k {
                        for j in 0..n {
                            t[j * k + p] = b[p * n + j];
                        }
                    }
                    t
                } else {
                    b.clone()
                };
                let pb = PackedB::pack(&stored, b_trans, k, n);
                let mut got = vec![0.0f32; m * n];
                gemm_b_packed(&a, false, &pb, &mut got, m, None, Epilogue::None);
                let mut want = vec![0.0f32; m * n];
                gemm(&a, false, &stored, b_trans, &mut want, m, k, n, None, false);
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "({m},{k},{n}) bt={b_trans}: packed B not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn packed_epilogue_matches_separate_pass_bitwise() {
        use crate::eltwise::{relu6_decay_slice, relu_decay_slice};
        let mut rng = StdRng::seed_from_u64(23);
        // One shape per dispatch tier: naive, serial blocked, parallel blocked.
        for &(m, k, n) in &[(7usize, 13usize, 11usize), (40, 256, 24), (128, 128, 128)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let init = fill(m, &mut rng);
            let pa = PackedA::pack(&a, false, m, k);
            for alpha in [0.0f32, 0.25] {
                #[allow(clippy::type_complexity)]
                let cases: [(Epilogue, fn(&mut [f32], f32)); 2] = [
                    (Epilogue::Relu { alpha }, relu_decay_slice),
                    (Epilogue::Relu6 { alpha }, relu6_decay_slice),
                ];
                for (act, reference) in cases {
                    let mut got = vec![0.0f32; m * n];
                    gemm_a_packed(&pa, &b, false, &mut got, n, Some(&init), act);
                    let mut want = vec![0.0f32; m * n];
                    gemm(&a, false, &b, false, &mut want, m, k, n, Some(&init), false);
                    reference(&mut want, alpha);
                    assert!(
                        got.iter()
                            .zip(&want)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "({m},{k},{n}) {act:?}: fused epilogue not bitwise equal"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_thread_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(24);
        let (m, k, n) = (97usize, 301usize, 83usize);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let pa = PackedA::pack(&a, false, m, k);
        let mut wide = vec![0.0f32; m * n];
        gemm_a_packed(
            &pa,
            &b,
            false,
            &mut wide,
            n,
            None,
            Epilogue::Relu { alpha: 0.1 },
        );
        let mut narrow = vec![0.0f32; m * n];
        with_thread_cap(1, || {
            gemm_a_packed(
                &pa,
                &b,
                false,
                &mut narrow,
                n,
                None,
                Epilogue::Relu { alpha: 0.1 },
            );
        });
        assert!(wide
            .iter()
            .zip(&narrow)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(9);
        // Big enough to take the parallel path at default width.
        for &(m, k, n) in &[(128usize, 128usize, 128usize), (97, 301, 83)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let mut wide = vec![0.0f32; m * n];
            gemm(&a, false, &b, false, &mut wide, m, k, n, None, false);
            let mut narrow = vec![0.0f32; m * n];
            with_thread_cap(1, || {
                gemm(&a, false, &b, false, &mut narrow, m, k, n, None, false);
            });
            assert!(
                wide.iter()
                    .zip(&narrow)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n}) not bitwise equal across thread counts"
            );
        }
    }
}
