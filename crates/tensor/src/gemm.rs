//! Cache-blocked, packed GEMM — the single kernel behind every matmul
//! variant and the convolution forward path.
//!
//! The kernel follows the classic BLIS/GotoBLAS decomposition: the `n`
//! dimension is split into `NC` strips, the `k` dimension into `KC` panels,
//! and the `m` dimension into `MC` blocks. For each `(KC, NC)` panel B is
//! packed into contiguous `KC x NR` slivers, and for each `(MC, KC)` block A
//! is packed into `KC x MR` slivers; an `MR x NR` register-tile microkernel
//! with a fully unrolled inner loop then walks the packed panels. Packing
//! happens in thread-local scratch buffers (see [`crate::threadpool`]) so
//! steady-state GEMMs allocate nothing.
//!
//! Which schedule runs — the no-pack direct loops, or the blocked kernel
//! with a concrete `(MC, NC)` pair, serial or row-split — is decided per
//! shape by [`crate::selector`]. `KC` is fixed: it pins the per-element
//! accumulation order, which is what keeps all blocked schedules of a shape
//! bitwise-identical and lets the autotuner swap them freely.
//!
//! The right operand does not have to be a materialized matrix: the conv
//! forward path hands the packing loop an [`Im2colRef`], a *virtual* im2col
//! layout that gathers panel slivers straight out of the input image. The
//! packed bytes are identical to packing a materialized column matrix, so
//! the implicit path is bitwise-equal to the explicit one while never
//! writing the `[c_in*kh*kw, ho*wo]` buffer at all.
//!
//! Builds target baseline `x86-64`, so on x86-64 hosts the tile loop
//! dispatches at runtime (via `is_x86_feature_detected!`) to an AVX2+FMA
//! microkernel with eight independent accumulator chains; every other
//! configuration uses the portable autovectorized kernel.
//!
//! Transposed operands (`matmul_nt`, `matmul_tn`, and the conv gradients)
//! are handled at pack time: the pack routines read A / B through either
//! layout, so all four variants share one microkernel and one parallel
//! scheduler. Parallelism splits the `m` dimension only; every output element
//! is produced by exactly one thread with a fixed k-accumulation order, so
//! results are bitwise identical regardless of thread count.

use crate::eltwise::Epilogue;
use crate::selector::{self, Layout, Op, Schedule, Variant};
use crate::threadpool::{self, with_scratch, SharedMut, GEMM_PACK_A, GEMM_PACK_B};
use crate::ConvGeometry;

/// Microkernel tile height (rows of C held in registers).
pub const MR: usize = 4;
/// Microkernel tile width (columns of C held in registers).
pub const NR: usize = 8;
/// Standard-schedule rows of A packed per L2-resident block (multiple of
/// `MR`). The autotuner may select other MC values; this is the default.
pub(crate) const MC_STD: usize = 64;
/// Depth of a packed panel (inner dimension per pass). Not tunable: the
/// k-split order fixes the accumulation order and therefore the output bits.
const KC: usize = 256;
/// Standard-schedule columns of B packed per strip (multiple of `NR`).
pub(crate) const NC_STD: usize = 256;

/// Below this many multiply-adds the naive loops beat packing overhead.
pub(crate) const SMALL_MNK: usize = 16 * 16 * 16;
/// Below this many multiply-adds a single thread beats pool dispatch.
pub(crate) const PARALLEL_MNK: usize = 1 << 17;

/// General matrix multiply: `C = A' * B'` (or `C += A' * B'`).
///
/// `A'` is the logical `m x k` left operand: the slice `a` stores it
/// row-major when `a_trans` is false, or as its `k x m` row-major transpose
/// when `a_trans` is true (so `matmul_tn` needs no materialized transpose).
/// `B'` is the logical `k x n` right operand with the same convention:
/// `b_trans` means `b` stores the `n x k` transpose.
///
/// When `accumulate` is false, `c` is overwritten; if `row_init` is given
/// (length `m`), element `c[i, j]` starts from `row_init[i]` instead of zero
/// — this is how the convolution forward pass fuses its bias add into the
/// GEMM epilogue. When `accumulate` is true, the product is added onto the
/// existing contents of `c` (`row_init` must be `None`).
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions or if
/// `row_init` is combined with `accumulate`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm lhs buffer length");
    assert_eq!(b.len(), k * n, "gemm rhs buffer length");
    assert_eq!(c.len(), m * n, "gemm out buffer length");
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "gemm row_init length");
        assert!(!accumulate, "gemm row_init requires accumulate = false");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // No products to add: the epilogue alone defines the output.
        if !accumulate {
            for i in 0..m {
                let base = row_init.map_or(0.0, |r| r[i]);
                c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
            }
        }
        return;
    }
    let variant = selector::select(Op::Gemm, Layout::from_trans(a_trans, b_trans), m, k, n);
    run_gemm_variant(
        variant, a, a_trans, b, b_trans, c, m, k, n, row_init, accumulate,
    );
}

/// Executes one already-selected variant on matrix operands. This is the
/// entry the autotuner times candidates through; it must never re-enter the
/// selector.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_gemm_variant(
    variant: Variant,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    let bop = BOperand::Mat { b, trans: b_trans };
    run_variant(variant, a, a_trans, &bop, c, m, k, n, row_init, accumulate);
}

/// Shared executor behind [`gemm`] and the implicit-conv entry points.
#[allow(clippy::too_many_arguments)]
fn run_variant(
    variant: Variant,
    a: &[f32],
    a_trans: bool,
    bop: &BOperand,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    let (mc_blk, nc_blk) = match variant.schedule {
        Schedule::Direct => {
            match bop {
                BOperand::Mat { b, trans } => {
                    gemm_naive(a, a_trans, b, *trans, c, m, k, n, row_init, accumulate);
                }
                BOperand::Im2col(im) => {
                    gemm_naive_im2col(a, a_trans, im, c, m, k, n, row_init, accumulate);
                }
            }
            return;
        }
        Schedule::Blocked { mc, nc } => (mc, nc),
    };
    let threads = threadpool::num_threads();
    if !variant.parallel || threads <= 1 || m < 2 * MR {
        gemm_blocked(
            a, a_trans, bop, c, 0, m, m, k, n, row_init, accumulate, mc_blk, nc_blk,
        );
        return;
    }
    // Split rows into MR-aligned chunks, one task each. Each task runs the
    // full blocked algorithm on its row range, so the k-order per output
    // element (and hence the bit pattern) is independent of the split.
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let tasks = m.div_ceil(chunk);
    let shared_c = SharedMut::new(c);
    threadpool::parallel_for(tasks, &|t| {
        let i0 = t * chunk;
        let rows = chunk.min(m - i0);
        // Safety: row ranges [i0, i0 + rows) are disjoint across tasks.
        let c_rows = unsafe { shared_c.slice(i0 * n, rows * n) };
        gemm_blocked(
            a, a_trans, bop, c_rows, i0, rows, m, k, n, row_init, accumulate, mc_blk, nc_blk,
        );
    });
}

/// Element of the logical `k x n` right operand (see [`gemm`] layout rules).
#[inline(always)]
fn b_at(b: &[f32], b_trans: bool, k: usize, n: usize, p: usize, j: usize) -> f32 {
    if b_trans {
        b[j * k + p]
    } else {
        b[p * n + j]
    }
}

/// Reference kernel: simple loops, no packing. Used for small problems and
/// as the ground truth in tests.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_naive(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    if !accumulate {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
    }
    match (a_trans, b_trans) {
        (false, false) => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &a_ip) in a_row.iter().enumerate() {
                    let b_row = &b[p * n..(p + 1) * n];
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_ip * b_pj;
                    }
                }
            }
        }
        (false, true) => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *c_ij += acc;
                }
            }
        }
        (true, false) => {
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &a_pi) in a_row.iter().enumerate() {
                    if a_pi == 0.0 {
                        continue;
                    }
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_pi * b_pj;
                    }
                }
            }
        }
        (true, true) => {
            for i in 0..m {
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[p * m + i] * b[j * k + p];
                    }
                    *c_ij += acc;
                }
            }
        }
    }
}

/// [`gemm_naive`] with the right operand read through a virtual im2col
/// layout. Loop structure and accumulation order replicate the `(NN)` arm of
/// [`gemm_naive`] exactly — including the multiply-by-zero terms for padded
/// taps — so the output bits match running `gemm_naive` on a materialized
/// column matrix. Only the untransposed-A layout exists: conv weights are
/// always stored `[c_out, c_in*kh*kw]` row-major.
#[allow(clippy::too_many_arguments)]
fn gemm_naive_im2col(
    a: &[f32],
    a_trans: bool,
    im: &Im2colRef,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    assert!(!a_trans, "implicit conv GEMM requires row-major weights");
    if !accumulate {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            for (j, c_ij) in c_row.iter_mut().enumerate() {
                *c_ij += a_ip * im.at(p, j);
            }
        }
    }
}

/// A convolution input viewed as its im2col column matrix without
/// materializing it: row `p = (ci*kh + ki)*kw + kj`, column `j = oi*wo + oj`
/// maps to input element `(ci, oi*sh + ki - ph, oj*sw + kj - pw)`, with
/// zeros outside the image. [`Im2colRef::pack`] gathers `KC x NR` panel
/// slivers in exactly the layout [`pack_b`] would produce from the
/// materialized matrix, which is what makes the implicit conv path
/// bitwise-equal to the explicit one.
#[derive(Clone, Copy)]
pub(crate) struct Im2colRef<'a> {
    /// One sample, `[c_in, h, w]` flat.
    pub x: &'a [f32],
    pub c_in: usize,
    pub h: usize,
    pub w: usize,
    pub geom: ConvGeometry,
    pub ho: usize,
    pub wo: usize,
}

impl Im2colRef<'_> {
    /// Virtual row count: `c_in * kh * kw`.
    pub(crate) fn rows(&self) -> usize {
        self.c_in * self.geom.kh * self.geom.kw
    }

    /// Virtual column count: `ho * wo`.
    pub(crate) fn cols(&self) -> usize {
        self.ho * self.wo
    }

    /// Element `(p, j)` of the virtual column matrix.
    #[inline]
    fn at(&self, p: usize, j: usize) -> f32 {
        let ker = self.geom.kh * self.geom.kw;
        let ci = p / ker;
        let r = p % ker;
        let (ki, kj) = (r / self.geom.kw, r % self.geom.kw);
        let (oi, oj) = (j / self.wo, j % self.wo);
        let ii = (oi * self.geom.sh + ki) as isize - self.geom.ph as isize;
        let jj = (oj * self.geom.sw + kj) as isize - self.geom.pw as isize;
        if ii < 0 || ii >= self.h as isize || jj < 0 || jj >= self.w as isize {
            0.0
        } else {
            self.x[(ci * self.h + ii as usize) * self.w + jj as usize]
        }
    }

    /// Packs the `kc x nc` virtual panel at `(p0, j0)` into `NR`-wide
    /// slivers, byte-identical to [`pack_b`] over the materialized matrix.
    ///
    /// The inner loop walks virtual rows with an incrementally maintained
    /// `(ci, ki, kj)` decomposition; sliver columns that stay inside one
    /// output row of a stride-1 conv and land fully interior reduce to a
    /// `copy_from_slice` from the input row — the common case for the
    /// `NR`-aligned strips of TinyNet feature maps.
    fn pack(&self, bp: &mut [f32], p0: usize, kc: usize, j0: usize, nc: usize) {
        let (kh, kw) = (self.geom.kh, self.geom.kw);
        let (sh, sw) = (self.geom.sh, self.geom.sw);
        let (ph, pw) = (self.geom.ph, self.geom.pw);
        let (h, w, wo) = (self.h, self.w, self.wo);
        let panels = nc.div_ceil(NR);
        for jr in 0..panels {
            let j_base = j0 + jr * NR;
            let width = NR.min(j0 + nc - j_base);
            let dst = &mut bp[jr * kc * NR..(jr * kc + kc) * NR];
            let (oi0, oj0) = (j_base / wo, j_base % wo);
            // All `width` columns share one output row iff they don't wrap.
            let single_row = oj0 + width <= wo;
            let mut ci = p0 / (kh * kw);
            let rem = p0 % (kh * kw);
            let (mut ki, mut kj) = (rem / kw, rem % kw);
            for (p, chunk) in dst.chunks_exact_mut(NR).take(kc).enumerate() {
                // `chunks_exact_mut` guarantees the sliver length; the
                // fixed-size view turns the 8-float copies and zero fills
                // below into single vector moves instead of memcpy/memset
                // calls — the per-sliver call overhead dominates the pack
                // otherwise.
                let fixed: &mut [f32; NR] = chunk.try_into().expect("NR-wide sliver");
                if single_row {
                    let ii = (oi0 * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        *fixed = [0.0; NR];
                    } else {
                        let src_row =
                            &self.x[(ci * h + ii as usize) * w..(ci * h + ii as usize + 1) * w];
                        let jj0 = (oj0 * sw + kj) as isize - pw as isize;
                        if sw == 1 && jj0 >= 0 && jj0 as usize + width <= w {
                            if width == NR {
                                let src: &[f32; NR] = (&src_row[jj0 as usize..jj0 as usize + NR])
                                    .try_into()
                                    .expect("NR-wide source");
                                *fixed = *src;
                            } else {
                                fixed[..width]
                                    .copy_from_slice(&src_row[jj0 as usize..jj0 as usize + width]);
                                fixed[width..].fill(0.0);
                            }
                        } else if sw == 1 {
                            // Partially out-of-bounds row: zero prefix and
                            // suffix around one contiguous in-bounds copy.
                            let lo = (-jj0).clamp(0, width as isize) as usize;
                            let hi = (w as isize - jj0).clamp(0, width as isize) as usize;
                            let hi = hi.max(lo);
                            *fixed = [0.0; NR];
                            if hi > lo {
                                fixed[lo..hi].copy_from_slice(
                                    &src_row[(jj0 + lo as isize) as usize..][..hi - lo],
                                );
                            }
                        } else {
                            for (j, v) in fixed.iter_mut().enumerate() {
                                *v = if j < width {
                                    let jj = jj0 + (j * sw) as isize;
                                    if jj < 0 || jj >= w as isize {
                                        0.0
                                    } else {
                                        src_row[jj as usize]
                                    }
                                } else {
                                    0.0
                                };
                            }
                        }
                    }
                } else {
                    // Sliver wraps across output rows: general gather.
                    for (j, v) in fixed.iter_mut().enumerate() {
                        *v = if j < width {
                            self.at(p0 + p, j_base + j)
                        } else {
                            0.0
                        };
                    }
                }
                kj += 1;
                if kj == kw {
                    kj = 0;
                    ki += 1;
                    if ki == kh {
                        ki = 0;
                        ci += 1;
                    }
                }
            }
        }
    }
}

/// The right operand of the blocked kernel: either a materialized matrix
/// (possibly stored transposed) or a virtual im2col view of a conv input.
pub(crate) enum BOperand<'a> {
    Mat { b: &'a [f32], trans: bool },
    Im2col(&'a Im2colRef<'a>),
}

impl BOperand<'_> {
    /// Packs the `kc x nc` panel at `(p0, j0)`; identical output layout for
    /// both sources.
    #[allow(clippy::too_many_arguments)]
    fn pack_panel(
        &self,
        bp: &mut [f32],
        k: usize,
        n: usize,
        p0: usize,
        kc: usize,
        j0: usize,
        nc: usize,
    ) {
        match self {
            BOperand::Mat { b, trans } => pack_b(bp, b, *trans, k, n, p0, kc, j0, nc),
            BOperand::Im2col(im) => im.pack(bp, p0, kc, j0, nc),
        }
    }
}

/// Packs the `kc x nc` panel of B starting at `(p0, j0)` into `NR`-wide
/// slivers: `bp[(jr * kc + p) * NR + j]` holds `B[p0 + p, j0 + jr * NR + j]`,
/// zero-padded past `n`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bp: &mut [f32],
    b: &[f32],
    b_trans: bool,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for jr in 0..panels {
        let j_base = j0 + jr * NR;
        let width = NR.min(j0 + nc - j_base);
        let dst = &mut bp[jr * kc * NR..(jr * kc + kc) * NR];
        if !b_trans && width == NR {
            for (p, chunk) in dst.chunks_exact_mut(NR).enumerate() {
                chunk.copy_from_slice(&b[(p0 + p) * n + j_base..(p0 + p) * n + j_base + NR]);
            }
        } else {
            for (p, chunk) in dst.chunks_exact_mut(NR).enumerate() {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = if j < width {
                        b_at(b, b_trans, k, n, p0 + p, j_base + j)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs the `mc x kc` block of A starting at `(i0, p0)` into `MR`-tall
/// slivers: `ap[(ir * kc + p) * MR + r]` holds `A[i0 + ir * MR + r, p0 + p]`,
/// zero-padded past `m`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ap: &mut [f32],
    a: &[f32],
    a_trans: bool,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    for ir in 0..panels {
        let i_base = i0 + ir * MR;
        let height = MR.min(i0 + mc - i_base);
        let dst = &mut ap[ir * kc * MR..(ir * kc + kc) * MR];
        if a_trans {
            for (p, chunk) in dst.chunks_exact_mut(MR).enumerate() {
                let a_row = &a[(p0 + p) * m + i_base..(p0 + p) * m + i_base + height];
                for (r, v) in chunk.iter_mut().enumerate() {
                    *v = if r < height { a_row[r] } else { 0.0 };
                }
            }
        } else {
            for (p, chunk) in dst.chunks_exact_mut(MR).enumerate() {
                for (r, v) in chunk.iter_mut().enumerate() {
                    *v = if r < height {
                        a[(i_base + r) * k + p0 + p]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs the whole `m x k` left operand into the [`PackedA`] panel layout:
/// for each `KC`-deep k-panel starting at `pc`, all `m.div_ceil(MR)` row
/// slivers stored contiguously at `pc * m.div_ceil(MR) * MR`. Byte-identical
/// to what [`gemm_blocked`] packs on demand, panel by panel.
fn pack_a_full(panels: &mut [f32], a: &[f32], a_trans: bool, m: usize, k: usize) {
    let mb = m.div_ceil(MR);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let slab = &mut panels[pc * mb * MR..(pc + kc) * mb * MR];
        pack_a(slab, a, a_trans, m, k, 0, m, pc, kc);
    }
}

/// `MR x NR` register tile over packed slivers: the hot loop of the crate.
/// `ap` is one `kc x MR` sliver, `bp` one `kc x NR` sliver.
#[inline(always)]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a_p, b_p) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        // Fixed-size views so LLVM unrolls and vectorizes without bounds
        // checks; MR broadcasts against one NR-wide row per k step.
        let a_p: &[f32; MR] = a_p.try_into().unwrap();
        let b_p: &[f32; NR] = b_p.try_into().unwrap();
        for r in 0..MR {
            let a_v = a_p[r];
            for j in 0..NR {
                acc[r][j] += a_v * b_p[j];
            }
        }
    }
}

/// True when the runtime CPU supports the AVX2+FMA microkernel. The builds
/// target baseline `x86-64`, so this is a runtime decision, not a compile
/// flag; detection results are cached by `is_x86_feature_detected!`.
#[inline]
fn use_fma_kernel() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dispatches one register tile to the best available microkernel.
#[inline(always)]
fn run_microkernel(fma: bool, kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if fma {
        // Safety: `fma` is only true when AVX2+FMA were detected at runtime,
        // and the slivers are at least `kc` packed rows long.
        unsafe { x86::microkernel_fma(kc, ap, bp, acc) };
        return;
    }
    let _ = fma;
    microkernel(kc, ap, bp, acc);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// AVX2+FMA twin of [`super::microkernel`]: each C row is one `ymm`
    /// accumulator, and k is unrolled by two into separate accumulator banks
    /// (8 independent FMA chains) so the loop is throughput-bound instead of
    /// FMA-latency-bound. The banks are summed at the end, so the k-reduction
    /// is pairwise — still a fixed order, just not the serial order of the
    /// scalar kernel.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` target features at runtime, and sliver
    /// slices holding at least `kc` packed rows (`kc * MR` / `kc * NR`
    /// elements).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel_fma(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        let mut a_ptr = ap.as_ptr();
        let mut b_ptr = bp.as_ptr();
        let mut e0 = _mm256_setzero_ps();
        let mut e1 = _mm256_setzero_ps();
        let mut e2 = _mm256_setzero_ps();
        let mut e3 = _mm256_setzero_ps();
        let mut o0 = _mm256_setzero_ps();
        let mut o1 = _mm256_setzero_ps();
        let mut o2 = _mm256_setzero_ps();
        let mut o3 = _mm256_setzero_ps();
        for _ in 0..kc / 2 {
            let b0 = _mm256_loadu_ps(b_ptr);
            e0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr), b0, e0);
            e1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(1)), b0, e1);
            e2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(2)), b0, e2);
            e3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(3)), b0, e3);
            let b1 = _mm256_loadu_ps(b_ptr.add(NR));
            o0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR)), b1, o0);
            o1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR + 1)), b1, o1);
            o2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR + 2)), b1, o2);
            o3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(MR + 3)), b1, o3);
            a_ptr = a_ptr.add(2 * MR);
            b_ptr = b_ptr.add(2 * NR);
        }
        if kc % 2 == 1 {
            let b0 = _mm256_loadu_ps(b_ptr);
            e0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr), b0, e0);
            e1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(1)), b0, e1);
            e2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(2)), b0, e2);
            e3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_ptr.add(3)), b0, e3);
        }
        let rows = [
            _mm256_add_ps(e0, o0),
            _mm256_add_ps(e1, o1),
            _mm256_add_ps(e2, o2),
            _mm256_add_ps(e3, o3),
        ];
        for (row, sum) in acc.iter_mut().zip(rows) {
            let prev = _mm256_loadu_ps(row.as_ptr());
            _mm256_storeu_ps(row.as_mut_ptr(), _mm256_add_ps(prev, sum));
        }
    }
}

/// Blocked GEMM over the row range `[i0, i0 + mc_total)` of the full problem
/// with the given `(MC, NC)` schedule. `c` holds exactly those rows
/// (`mc_total x n`, row-major).
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    a: &[f32],
    a_trans: bool,
    bop: &BOperand,
    c: &mut [f32],
    i0: usize,
    mc_total: usize,
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
    mc_blk: usize,
    nc_blk: usize,
) {
    let fma = use_fma_kernel();
    with_scratch(&GEMM_PACK_B, KC * nc_blk.div_ceil(NR) * NR, |bp| {
        with_scratch(&GEMM_PACK_A, KC * mc_blk.div_ceil(MR) * MR, |ap| {
            for jc in (0..n).step_by(nc_blk) {
                let nc = nc_blk.min(n - jc);
                for pc in (0..k).step_by(KC) {
                    let kc = KC.min(k - pc);
                    bop.pack_panel(bp, k, n, pc, kc, jc, nc);
                    let first = pc == 0;
                    for ic in (0..mc_total).step_by(mc_blk) {
                        let mc = mc_blk.min(mc_total - ic);
                        pack_a(ap, a, a_trans, m, k, i0 + ic, mc, pc, kc);
                        macro_kernel(
                            ap, bp, c, ic, mc, jc, nc, n, kc, i0, row_init, accumulate, first, fma,
                        );
                    }
                }
            }
        })
    })
}

/// Walks the packed block: one microkernel call per `MR x NR` tile, then the
/// epilogue writes the tile into C (initializing from zero / `row_init` on
/// the first k-panel, accumulating afterwards).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    n: usize,
    kc: usize,
    i0: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
    first: bool,
    fma: bool,
) {
    for jr in 0..nc.div_ceil(NR) {
        let j_base = jc + jr * NR;
        let width = NR.min(jc + nc - j_base);
        let b_sliver = &bp[jr * kc * NR..(jr * kc + kc) * NR];
        for ir in 0..mc.div_ceil(MR) {
            let i_base = ic + ir * MR;
            let height = MR.min(ic + mc - i_base);
            let a_sliver = &ap[ir * kc * MR..(ir * kc + kc) * MR];
            let mut acc = [[0.0f32; NR]; MR];
            run_microkernel(fma, kc, a_sliver, b_sliver, &mut acc);
            for r in 0..height {
                let c_row = &mut c[(i_base + r) * n + j_base..(i_base + r) * n + j_base + width];
                if first && !accumulate {
                    let base = row_init.map_or(0.0, |init| init[i0 + i_base + r]);
                    for (c_v, &t) in c_row.iter_mut().zip(&acc[r]) {
                        *c_v = base + t;
                    }
                } else {
                    for (c_v, &t) in c_row.iter_mut().zip(&acc[r]) {
                        *c_v += t;
                    }
                }
            }
        }
    }
}

/// A left operand packed once into the GEMM panel format.
///
/// The panel layout is byte-identical to what [`gemm`] packs per call: for
/// each `KC`-deep k-panel starting at `pc`, all `m.div_ceil(MR)` row slivers
/// are stored contiguously at `pc * m.div_ceil(MR) * MR`, each sliver being
/// `kc x MR` (zero-padded past `m`). The blocked kernel then slices straight
/// into the prepacked buffer instead of repacking, so results stay bitwise
/// identical to the pack-on-demand path — for any `(MC, NC)` schedule the
/// selector picks, since the layout depends only on `KC` and `MR`. The raw
/// operand is retained so the small-problem dispatch can run the same naive
/// loops [`gemm`] would.
pub struct PackedA {
    panels: Vec<f32>,
    raw: Vec<f32>,
    trans: bool,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs the logical `m x k` left operand (layout rules as in [`gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(a: &[f32], a_trans: bool, m: usize, k: usize) -> Self {
        assert_eq!(a.len(), m * k, "PackedA operand length");
        let mb = m.div_ceil(MR);
        let mut panels = vec![0.0f32; k * mb * MR];
        pack_a_full(&mut panels, a, a_trans, m, k);
        PackedA {
            panels,
            raw: a.to_vec(),
            trans: a_trans,
            m,
            k,
        }
    }

    /// Logical row count `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical inner dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Heap bytes held by this pack (panels + retained raw operand).
    pub fn bytes(&self) -> usize {
        (self.panels.len() + self.raw.len()) * std::mem::size_of::<f32>()
    }
}

/// A right operand packed once into the GEMM panel format.
///
/// Mirror image of [`PackedA`]: for each k-panel at `pc`, all
/// `n.div_ceil(NR)` column slivers live contiguously at
/// `pc * n.div_ceil(NR) * NR`, each `kc x NR` and zero-padded past `n`.
pub struct PackedB {
    panels: Vec<f32>,
    raw: Vec<f32>,
    trans: bool,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs the logical `k x n` right operand (layout rules as in [`gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f32], b_trans: bool, k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "PackedB operand length");
        let nb = n.div_ceil(NR);
        let mut panels = vec![0.0f32; k * nb * NR];
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let slab = &mut panels[pc * nb * NR..(pc + kc) * nb * NR];
            pack_b(slab, b, b_trans, k, n, pc, kc, 0, n);
        }
        PackedB {
            panels,
            raw: b.to_vec(),
            trans: b_trans,
            k,
            n,
        }
    }

    /// Logical inner dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical column count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Heap bytes held by this pack (panels + retained raw operand).
    pub fn bytes(&self) -> usize {
        (self.panels.len() + self.raw.len()) * std::mem::size_of::<f32>()
    }
}

/// [`gemm`] with a prepacked left operand and a fused activation epilogue:
/// `C = act(A' * B' + row_init)`.
///
/// Dispatch mirrors [`gemm`] exactly (same selector keys, so the same
/// variant runs), and the prepacked panels are byte-identical to what the
/// blocked path would pack, so the output bits match `gemm` followed by a
/// separate elementwise activation pass for every thread count. The epilogue
/// is applied per row-chunk on the parallel path, which is equivalent
/// because it is pointwise.
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn gemm_a_packed(
    pa: &PackedA,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    n: usize,
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    assert_eq!(b.len(), pa.k * n, "gemm_a_packed rhs buffer length");
    let bop = BOperand::Mat { b, trans: b_trans };
    gemm_a_packed_driver(Op::Gemm, pa, &bop, b_trans, c, n, row_init, act);
}

/// The conv forward GEMM against a prepacked weight and a *virtual* im2col
/// right operand — the serving-path kernel behind `CompiledPlan`. See
/// [`Im2colRef`] for the bitwise contract with the explicit path.
pub(crate) fn gemm_conv_packed(
    pa: &PackedA,
    im: &Im2colRef,
    c: &mut [f32],
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    assert_eq!(im.rows(), pa.k, "implicit conv operand inner dimension");
    let n = im.cols();
    let bop = BOperand::Im2col(im);
    gemm_a_packed_driver(Op::Conv, pa, &bop, false, c, n, row_init, act);
}

/// The conv forward GEMM against a prepacked weight and a *materialized*
/// right operand, still under the conv key namespace. The 1x1 stride-1
/// unpadded fast path uses this: a pointwise conv's column matrix is the
/// input sample itself, so packing the sample directly produces the same
/// panel bytes as the virtual view with none of the coordinate math.
pub(crate) fn gemm_conv_packed_mat(
    pa: &PackedA,
    b: &[f32],
    c: &mut [f32],
    n: usize,
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    assert_eq!(b.len(), pa.k * n, "pointwise conv operand length");
    let bop = BOperand::Mat { b, trans: false };
    gemm_a_packed_driver(Op::Conv, pa, &bop, false, c, n, row_init, act);
}

/// The conv forward GEMM over an explicitly materialized im2col matrix —
/// the differential twin of [`gemm_conv_batch`], kept for the verification
/// suites. It shares the conv key namespace, so both executors always run
/// the same variant and stay bitwise-comparable under any autotune mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_conv_explicit(
    ws: &[f32],
    cols: &[f32],
    c: &mut [f32],
    c_out: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
) {
    assert_eq!(ws.len(), c_out * k, "explicit conv weight length");
    assert_eq!(cols.len(), k * n, "explicit conv column matrix length");
    assert_eq!(c.len(), c_out * n, "explicit conv output length");
    if c_out == 0 || n == 0 {
        return;
    }
    let variant = selector::select(Op::Conv, Layout::NN, c_out, k, n);
    run_gemm_variant(
        variant, ws, false, cols, false, c, c_out, k, n, row_init, false,
    );
}

/// The conv forward GEMM with an unpacked weight matrix and virtual im2col
/// right operands — the training/infer-path kernel behind `conv2d_into`.
///
/// Batched: the weight matrix is packed into panel form **once**, in
/// thread-local scratch, and reused by every sample's GEMM instead of being
/// repacked per sample. `im` is the virtual im2col view of sample 0;
/// sample `i` applies the same geometry to `batch[i * in_sz..]`. Samples
/// run in parallel when the pool is wider than one thread (each worker
/// packs its B panels into its own scratch).
///
/// Bitwise identical to running each sample's GEMM through [`gemm`] on the
/// materialized column matrix: the prepacked panel bytes match the
/// pack-on-demand path and the per-sample GEMMs are independent.
pub(crate) fn gemm_conv_batch(
    ws: &[f32],
    im: &Im2colRef,
    batch: &[f32],
    out: &mut [f32],
    c_out: usize,
    row_init: Option<&[f32]>,
) {
    let (k, n) = (im.rows(), im.cols());
    assert_eq!(ws.len(), c_out * k, "implicit conv weight length");
    let in_sz = im.c_in * im.h * im.w;
    if in_sz == 0 || k == 0 || batch.is_empty() {
        // Degenerate operand: every output row is just its initializer.
        for (row, o) in out.chunks_exact_mut(n.max(1)).enumerate() {
            let base = row_init.map_or(0.0, |r| r[row % c_out.max(1)]);
            o.iter_mut().for_each(|v| *v = base);
        }
        return;
    }
    assert_eq!(batch.len() % in_sz, 0, "implicit conv batch length");
    let ns = batch.len() / in_sz;
    let out_sz = c_out * n;
    assert_eq!(out.len(), ns * out_sz, "implicit conv output length");
    if c_out == 0 || n == 0 {
        return;
    }
    let sample = |ni: usize| Im2colRef {
        x: &batch[ni * in_sz..(ni + 1) * in_sz],
        ..*im
    };
    let variant = selector::select(Op::Conv, Layout::NN, c_out, k, n);
    let threads = threadpool::num_threads();
    if let Schedule::Blocked { .. } = variant.schedule {
        let mb = c_out.div_ceil(MR);
        with_scratch(&GEMM_PACK_A, k * mb * MR, |ap| {
            pack_a_full(ap, ws, false, c_out, k);
            let panels: &[f32] = ap;
            if threads > 1 && ns > 1 {
                let shared_out = SharedMut::new(out);
                threadpool::parallel_for(ns, &|ni| {
                    // Safety: each task writes only its own sample's window.
                    let o = unsafe { shared_out.slice(ni * out_sz, out_sz) };
                    let sm = sample(ni);
                    let bop = BOperand::Im2col(&sm);
                    gemm_blocked_pa(
                        panels,
                        c_out,
                        k,
                        &bop,
                        o,
                        0,
                        c_out,
                        n,
                        row_init,
                        variant.schedule,
                    );
                });
            } else {
                for (ni, o) in out.chunks_exact_mut(out_sz).enumerate() {
                    let sm = sample(ni);
                    let bop = BOperand::Im2col(&sm);
                    gemm_blocked_pa(
                        panels,
                        c_out,
                        k,
                        &bop,
                        o,
                        0,
                        c_out,
                        n,
                        row_init,
                        variant.schedule,
                    );
                }
            }
        });
    } else if threads > 1 && ns > 1 {
        let shared_out = SharedMut::new(out);
        threadpool::parallel_for(ns, &|ni| {
            // Safety: each task writes only its own sample's window.
            let o = unsafe { shared_out.slice(ni * out_sz, out_sz) };
            let sm = sample(ni);
            gemm_naive_im2col(ws, false, &sm, o, c_out, k, n, row_init, false);
        });
    } else {
        for (ni, o) in out.chunks_exact_mut(out_sz).enumerate() {
            let sm = sample(ni);
            gemm_naive_im2col(ws, false, &sm, o, c_out, k, n, row_init, false);
        }
    }
}

/// Shared driver for the prepacked-A entry points.
#[allow(clippy::too_many_arguments)]
fn gemm_a_packed_driver(
    op: Op,
    pa: &PackedA,
    bop: &BOperand,
    b_trans: bool,
    c: &mut [f32],
    n: usize,
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(c.len(), m * n, "gemm_a_packed out buffer length");
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "gemm_a_packed row_init length");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
        act.apply(c);
        return;
    }
    let variant = selector::select(op, Layout::from_trans(pa.trans, b_trans), m, k, n);
    match variant.schedule {
        Schedule::Direct => {
            match bop {
                BOperand::Mat { b, trans } => {
                    gemm_naive(&pa.raw, pa.trans, b, *trans, c, m, k, n, row_init, false);
                }
                BOperand::Im2col(im) => {
                    gemm_naive_im2col(&pa.raw, pa.trans, im, c, m, k, n, row_init, false);
                }
            }
            act.apply(c);
            return;
        }
        Schedule::Blocked { .. } => {}
    }
    let threads = threadpool::num_threads();
    if !variant.parallel || threads <= 1 || m < 2 * MR {
        gemm_blocked_pa(
            &pa.panels,
            m,
            k,
            bop,
            c,
            0,
            m,
            n,
            row_init,
            variant.schedule,
        );
        act.apply(c);
        return;
    }
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let tasks = m.div_ceil(chunk);
    let shared_c = SharedMut::new(c);
    threadpool::parallel_for(tasks, &|t| {
        let i0 = t * chunk;
        let rows = chunk.min(m - i0);
        // Safety: row ranges [i0, i0 + rows) are disjoint across tasks.
        let c_rows = unsafe { shared_c.slice(i0 * n, rows * n) };
        gemm_blocked_pa(
            &pa.panels,
            m,
            k,
            bop,
            c_rows,
            i0,
            rows,
            n,
            row_init,
            variant.schedule,
        );
        act.apply(c_rows);
    });
}

/// [`gemm`] with a prepacked right operand and a fused activation epilogue:
/// `C = act(A' * B' + row_init)`. See [`gemm_a_packed`] for the bitwise
/// contract; this is its mirror for linear layers, where the weight is the
/// right operand.
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn gemm_b_packed(
    a: &[f32],
    a_trans: bool,
    pb: &PackedB,
    c: &mut [f32],
    m: usize,
    row_init: Option<&[f32]>,
    act: Epilogue,
) {
    let (k, n) = (pb.k, pb.n);
    assert_eq!(a.len(), m * k, "gemm_b_packed lhs buffer length");
    assert_eq!(c.len(), m * n, "gemm_b_packed out buffer length");
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "gemm_b_packed row_init length");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            let base = row_init.map_or(0.0, |r| r[i]);
            c[i * n..(i + 1) * n].iter_mut().for_each(|v| *v = base);
        }
        act.apply(c);
        return;
    }
    let variant = selector::select(Op::Gemm, Layout::from_trans(a_trans, pb.trans), m, k, n);
    match variant.schedule {
        Schedule::Direct => {
            gemm_naive(a, a_trans, &pb.raw, pb.trans, c, m, k, n, row_init, false);
            act.apply(c);
            return;
        }
        Schedule::Blocked { .. } => {}
    }
    let threads = threadpool::num_threads();
    if !variant.parallel || threads <= 1 || m < 2 * MR {
        gemm_blocked_pb(a, a_trans, pb, c, 0, m, m, row_init, variant.schedule);
        act.apply(c);
        return;
    }
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let tasks = m.div_ceil(chunk);
    let shared_c = SharedMut::new(c);
    threadpool::parallel_for(tasks, &|t| {
        let i0 = t * chunk;
        let rows = chunk.min(m - i0);
        // Safety: row ranges [i0, i0 + rows) are disjoint across tasks.
        let c_rows = unsafe { shared_c.slice(i0 * n, rows * n) };
        gemm_blocked_pb(
            a,
            a_trans,
            pb,
            c_rows,
            i0,
            rows,
            m,
            row_init,
            variant.schedule,
        );
        act.apply(c_rows);
    });
}

/// [`gemm_blocked`] with A read from prepacked panels instead of repacking.
/// Every selectable `MC` is a multiple of `MR` and the parallel row split is
/// `MR`-aligned, so `(i0 + ic) / MR` lands exactly on a sliver boundary and
/// the existing [`macro_kernel`] indexing works unchanged on the slab tail.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_pa(
    panels: &[f32],
    m: usize,
    k: usize,
    bop: &BOperand,
    c: &mut [f32],
    i0: usize,
    mc_total: usize,
    n: usize,
    row_init: Option<&[f32]>,
    schedule: Schedule,
) {
    let Schedule::Blocked {
        mc: mc_blk,
        nc: nc_blk,
    } = schedule
    else {
        unreachable!("gemm_blocked_pa requires a blocked schedule")
    };
    let mb = m.div_ceil(MR);
    let fma = use_fma_kernel();
    with_scratch(&GEMM_PACK_B, KC * nc_blk.div_ceil(NR) * NR, |bp| {
        for jc in (0..n).step_by(nc_blk) {
            let nc = nc_blk.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                bop.pack_panel(bp, k, n, pc, kc, jc, nc);
                let first = pc == 0;
                let slab = &panels[pc * mb * MR..];
                for ic in (0..mc_total).step_by(mc_blk) {
                    let mc = mc_blk.min(mc_total - ic);
                    let ap = &slab[(i0 + ic) / MR * kc * MR..];
                    macro_kernel(
                        ap, bp, c, ic, mc, jc, nc, n, kc, i0, row_init, false, first, fma,
                    );
                }
            }
        }
    })
}

/// [`gemm_blocked`] with B read from prepacked panels instead of repacking.
/// Every selectable `NC` is a multiple of `NR`, so `jc / NR` lands exactly
/// on a sliver boundary within the k-panel's slab.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_pb(
    a: &[f32],
    a_trans: bool,
    pb: &PackedB,
    c: &mut [f32],
    i0: usize,
    mc_total: usize,
    m: usize,
    row_init: Option<&[f32]>,
    schedule: Schedule,
) {
    let Schedule::Blocked {
        mc: mc_blk,
        nc: nc_blk,
    } = schedule
    else {
        unreachable!("gemm_blocked_pb requires a blocked schedule")
    };
    let (k, n) = (pb.k, pb.n);
    let nb = n.div_ceil(NR);
    let fma = use_fma_kernel();
    with_scratch(&GEMM_PACK_A, KC * mc_blk.div_ceil(MR) * MR, |ap| {
        for jc in (0..n).step_by(nc_blk) {
            let nc = nc_blk.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let bp = &pb.panels[pc * nb * NR + jc / NR * kc * NR..];
                let first = pc == 0;
                for ic in (0..mc_total).step_by(mc_blk) {
                    let mc = mc_blk.min(mc_total - ic);
                    pack_a(ap, a, a_trans, m, k, i0 + ic, mc, pc, kc);
                    macro_kernel(
                        ap, bp, c, ic, mc, jc, nc, n, kc, i0, row_init, false, first, fma,
                    );
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::with_autotune_off;
    use crate::threadpool::with_thread_cap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    /// Shapes chosen to stress every tail: non-multiples of MR/NR/MC/KC/NC,
    /// unit dimensions, and panel-boundary +/- 1 cases.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (5, 1, 9),
        (1, 300, 1),
        (4, 8, 8),
        (7, 13, 11),
        (16, 16, 16),
        (33, 65, 17),
        (64, 64, 64),
        (65, 255, 63),
        (40, 256, 24),
        (40, 257, 24),
        (3, 513, 130),
        (130, 30, 300),
        (128, 128, 128),
    ];

    fn check_variant(a_trans: bool, b_trans: bool) {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            gemm(&a, a_trans, &b, b_trans, &mut got, m, k, n, None, false);
            gemm_naive(&a, a_trans, &b, b_trans, &mut want, m, k, n, None, false);
            let diff = got
                .iter()
                .zip(&want)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(
                diff <= 1e-4 * (k as f32).sqrt(),
                "({m},{k},{n}) at={a_trans} bt={b_trans}: max diff {diff}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_nn() {
        check_variant(false, false);
    }

    #[test]
    fn blocked_matches_naive_nt() {
        check_variant(false, true);
    }

    #[test]
    fn blocked_matches_naive_tn() {
        check_variant(true, false);
    }

    #[test]
    fn blocked_matches_naive_tt() {
        check_variant(true, true);
    }

    #[test]
    fn all_blocked_schedules_are_bitwise_equal() {
        // The autotuner's freedom rests on this: (MC, NC) and the parallel
        // hint reorder tile traversal but never the per-element k-order, so
        // every blocked schedule of a shape must produce identical bits.
        let mut rng = StdRng::seed_from_u64(77);
        for &(m, k, n) in &[(33usize, 65usize, 17usize), (65, 255, 63), (128, 128, 128)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let mut reference = vec![0.0f32; m * n];
            run_gemm_variant(
                Variant {
                    schedule: Schedule::Blocked {
                        mc: MC_STD,
                        nc: NC_STD,
                    },
                    parallel: false,
                },
                &a,
                false,
                &b,
                false,
                &mut reference,
                m,
                k,
                n,
                None,
                false,
            );
            for schedule in [
                Schedule::Blocked { mc: 32, nc: 64 },
                Schedule::Blocked { mc: 128, nc: 256 },
                Schedule::Blocked { mc: 4, nc: 8 },
            ] {
                for parallel in [false, true] {
                    let mut got = vec![0.0f32; m * n];
                    run_gemm_variant(
                        Variant { schedule, parallel },
                        &a,
                        false,
                        &b,
                        false,
                        &mut got,
                        m,
                        k,
                        n,
                        None,
                        false,
                    );
                    assert!(
                        got.iter()
                            .zip(&reference)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "({m},{k},{n}) {schedule:?} par={parallel} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn row_init_seeds_output() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (65, 129, 33)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let init = fill(m, &mut rng);
            let mut got = vec![0.0f32; m * n];
            gemm(&a, false, &b, false, &mut got, m, k, n, Some(&init), false);
            let mut want = vec![0.0f32; m * n];
            gemm_naive(&a, false, &b, false, &mut want, m, k, n, Some(&init), false);
            let diff = got
                .iter()
                .zip(&want)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(diff <= 1e-4 * (k as f32).sqrt(), "({m},{k},{n}): {diff}");
        }
    }

    #[test]
    fn accumulate_adds_onto_existing() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (33, 70, 29);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let start = fill(m * n, &mut rng);
        let mut got = start.clone();
        gemm(&a, false, &b, false, &mut got, m, k, n, None, true);
        let mut prod = vec![0.0f32; m * n];
        gemm_naive(&a, false, &b, false, &mut prod, m, k, n, None, false);
        for i in 0..m * n {
            assert!((got[i] - (start[i] + prod[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn k_zero_writes_init() {
        let mut c = vec![9.0f32; 6];
        gemm(
            &[],
            false,
            &[],
            false,
            &mut c,
            2,
            0,
            3,
            Some(&[1.0, 2.0]),
            false,
        );
        assert_eq!(c, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let mut c2 = vec![5.0f32; 6];
        gemm(&[], false, &[], false, &mut c2, 2, 0, 3, None, true);
        assert_eq!(c2, vec![5.0f32; 6]);
    }

    #[test]
    fn packed_a_matches_gemm_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let init = fill(m, &mut rng);
            for (a_trans, row_init) in [(false, None), (true, Some(&init[..]))] {
                let stored = if a_trans {
                    // Re-lay A as its k x m transpose.
                    let mut t = vec![0.0f32; m * k];
                    for i in 0..m {
                        for p in 0..k {
                            t[p * m + i] = a[i * k + p];
                        }
                    }
                    t
                } else {
                    a.clone()
                };
                let pa = PackedA::pack(&stored, a_trans, m, k);
                let mut got = vec![0.0f32; m * n];
                gemm_a_packed(&pa, &b, false, &mut got, n, row_init, Epilogue::None);
                let mut want = vec![0.0f32; m * n];
                gemm(
                    &stored, a_trans, &b, false, &mut want, m, k, n, row_init, false,
                );
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "({m},{k},{n}) at={a_trans}: packed A not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn packed_b_matches_gemm_bitwise() {
        let mut rng = StdRng::seed_from_u64(22);
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            for b_trans in [false, true] {
                let stored = if b_trans {
                    let mut t = vec![0.0f32; k * n];
                    for p in 0..k {
                        for j in 0..n {
                            t[j * k + p] = b[p * n + j];
                        }
                    }
                    t
                } else {
                    b.clone()
                };
                let pb = PackedB::pack(&stored, b_trans, k, n);
                let mut got = vec![0.0f32; m * n];
                gemm_b_packed(&a, false, &pb, &mut got, m, None, Epilogue::None);
                let mut want = vec![0.0f32; m * n];
                gemm(&a, false, &stored, b_trans, &mut want, m, k, n, None, false);
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "({m},{k},{n}) bt={b_trans}: packed B not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn packed_epilogue_matches_separate_pass_bitwise() {
        use crate::eltwise::{relu6_decay_slice, relu_decay_slice};
        let mut rng = StdRng::seed_from_u64(23);
        // One shape per dispatch tier: naive, serial blocked, parallel blocked.
        for &(m, k, n) in &[(7usize, 13usize, 11usize), (40, 256, 24), (128, 128, 128)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let init = fill(m, &mut rng);
            let pa = PackedA::pack(&a, false, m, k);
            for alpha in [0.0f32, 0.25] {
                #[allow(clippy::type_complexity)]
                let cases: [(Epilogue, fn(&mut [f32], f32)); 2] = [
                    (Epilogue::Relu { alpha }, relu_decay_slice),
                    (Epilogue::Relu6 { alpha }, relu6_decay_slice),
                ];
                for (act, reference) in cases {
                    let mut got = vec![0.0f32; m * n];
                    gemm_a_packed(&pa, &b, false, &mut got, n, Some(&init), act);
                    let mut want = vec![0.0f32; m * n];
                    gemm(&a, false, &b, false, &mut want, m, k, n, Some(&init), false);
                    reference(&mut want, alpha);
                    assert!(
                        got.iter()
                            .zip(&want)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "({m},{k},{n}) {act:?}: fused epilogue not bitwise equal"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_thread_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(24);
        let (m, k, n) = (97usize, 301usize, 83usize);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let pa = PackedA::pack(&a, false, m, k);
        let mut wide = vec![0.0f32; m * n];
        gemm_a_packed(
            &pa,
            &b,
            false,
            &mut wide,
            n,
            None,
            Epilogue::Relu { alpha: 0.1 },
        );
        let mut narrow = vec![0.0f32; m * n];
        with_thread_cap(1, || {
            gemm_a_packed(
                &pa,
                &b,
                false,
                &mut narrow,
                n,
                None,
                Epilogue::Relu { alpha: 0.1 },
            );
        });
        assert!(wide
            .iter()
            .zip(&narrow)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(9);
        // Big enough to take the parallel path at default width.
        for &(m, k, n) in &[(128usize, 128usize, 128usize), (97, 301, 83)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let mut wide = vec![0.0f32; m * n];
            gemm(&a, false, &b, false, &mut wide, m, k, n, None, false);
            let mut narrow = vec![0.0f32; m * n];
            with_thread_cap(1, || {
                gemm(&a, false, &b, false, &mut narrow, m, k, n, None, false);
            });
            assert!(
                wide.iter()
                    .zip(&narrow)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n}) not bitwise equal across thread counts"
            );
        }
    }

    /// Materializes the full im2col matrix through the virtual view, for
    /// comparison against [`crate::conv::im2col`].
    fn materialize(im: &Im2colRef) -> Vec<f32> {
        let (k, n) = (im.rows(), im.cols());
        let mut cols = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                cols[p * n + j] = im.at(p, j);
            }
        }
        cols
    }

    #[test]
    fn virtual_pack_matches_explicit_pack_bytes() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(c_in, h, w, ks, stride, pad) in &[
            (3usize, 9usize, 9usize, 3usize, 1usize, 1usize),
            (2, 7, 6, 3, 2, 1),
            (4, 8, 8, 5, 1, 2),
            (1, 5, 5, 1, 1, 0),
            (2, 6, 11, 3, 1, 0),
            (3, 16, 16, 5, 2, 2),
        ] {
            let geom = ConvGeometry::square(ks, stride, pad);
            let (ho, wo) = geom.output_hw(h, w);
            let x = fill(c_in * h * w, &mut rng);
            let im = Im2colRef {
                x: &x,
                c_in,
                h,
                w,
                geom,
                ho,
                wo,
            };
            let (k, n) = (im.rows(), im.cols());
            let cols = materialize(&im);
            // Panel grid crossing KC and NR boundaries plus ragged tails.
            for &(p0, kc) in &[(0usize, k.min(5)), (k / 2, k - k / 2), (0, k)] {
                for &(j0, nc) in &[
                    (0usize, n),
                    (0, n.min(13)),
                    (8.min(n - 1), n - 8.min(n - 1)),
                ] {
                    let len = kc * nc.div_ceil(NR) * NR;
                    let mut virt = vec![7.0f32; len];
                    let mut expl = vec![7.0f32; len];
                    im.pack(&mut virt, p0, kc, j0, nc);
                    pack_b(&mut expl, &cols, false, k, n, p0, kc, j0, nc);
                    assert!(
                        virt.iter()
                            .zip(&expl)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "c={c_in} h={h} w={w} k={ks} s={stride} p={pad} \
                         panel p0={p0} kc={kc} j0={j0} nc={nc}: pack bytes diverge"
                    );
                }
            }
        }
    }

    #[test]
    fn implicit_gemm_matches_explicit_bitwise() {
        let mut rng = StdRng::seed_from_u64(32);
        for &(c_out, c_in, h, w, ks, stride, pad) in &[
            (4usize, 3usize, 9usize, 9usize, 3usize, 1usize, 1usize),
            (16, 16, 16, 16, 3, 1, 1),
            (8, 4, 10, 10, 5, 2, 2),
            (5, 2, 6, 6, 1, 1, 0),
        ] {
            let geom = ConvGeometry::square(ks, stride, pad);
            let (ho, wo) = geom.output_hw(h, w);
            let x = fill(c_in * h * w, &mut rng);
            let ws = fill(c_out * c_in * ks * ks, &mut rng);
            let bias = fill(c_out, &mut rng);
            let im = Im2colRef {
                x: &x,
                c_in,
                h,
                w,
                geom,
                ho,
                wo,
            };
            let (k, n) = (im.rows(), im.cols());
            let cols = materialize(&im);
            with_autotune_off(|| {
                let mut implicit = vec![0.0f32; c_out * n];
                gemm_conv_batch(&ws, &im, &x, &mut implicit, c_out, Some(&bias));
                let mut explicit = vec![0.0f32; c_out * n];
                gemm(
                    &ws,
                    false,
                    &cols,
                    false,
                    &mut explicit,
                    c_out,
                    k,
                    n,
                    Some(&bias),
                    false,
                );
                assert!(
                    implicit
                        .iter()
                        .zip(&explicit)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "co={c_out} ci={c_in} k={ks} s={stride} p={pad}: implicit != explicit"
                );
                // Prepacked-weight implicit path, with a fused epilogue.
                let pa = PackedA::pack(&ws, false, c_out, k);
                let mut packed = vec![0.0f32; c_out * n];
                gemm_conv_packed(
                    &pa,
                    &im,
                    &mut packed,
                    Some(&bias),
                    Epilogue::Relu { alpha: 0.0 },
                );
                let mut reference = explicit.clone();
                crate::eltwise::relu_decay_slice(&mut reference, 0.0);
                assert!(
                    packed
                        .iter()
                        .zip(&reference)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "co={c_out} ci={c_in} k={ks}: packed implicit != explicit + act"
                );
            });
        }
    }
}
