//! Int8 quantized GEMM: the inference-only twin of [`crate::gemm`].
//!
//! ## Number format
//!
//! - **Weights** are quantized per output channel (per GEMM row) to a
//!   *symmetric* 7-bit range: `qw = clamp(round(w / sw), -63, 63)` with
//!   `sw = max|w_row| / 63`. The ±63 bound (not ±127) is what makes the
//!   AVX2 kernel exact: `pmaddubsw` saturates its i16 pair-sums, and
//!   `255·63 + 255·63 = 32130 ≤ 32767` while 8-bit weights would overflow.
//! - **Activations** are quantized per tensor to u8 with a fixed zero point
//!   of [`Q_ZERO`] `= 128`: `qx = clamp(round(x / sx) + 128, 0, 255)` with
//!   `sx = max|x| / 127` calibrated offline. Conv padding quantizes real
//!   zeros, so the virtual im2col view pads with 128, not 0.
//!
//! The kernel accumulates `Σ qx·qw` in i32 — never overflowing, since
//! `|Σ| ≤ k·255·63` stays under 2³¹ for any `k` this crate meets — and the
//! epilogue removes the zero point exactly via the precomputed row sums:
//! `Σ (qx_true + 128)·qw = Σ qx_true·qw + 128·Σ qw`. Dequantization is then
//! one f32 multiply per element, `y = acc · (sw·sx) + bias`, followed by the
//! shared [`Epilogue`] slice kernels.
//!
//! ## Determinism
//!
//! Integer accumulation is exact under any order, so *every* variant —
//! scalar or AVX2, any blocking, any thread width, any column split — emits
//! identical bits. The quantized plan columns in nb-verify lean on this:
//! thread-width invariance and serve-vs-solo parity hold bitwise with no
//! tolerance machinery at all. The only approximation in the whole path is
//! the quantization itself, which the `+plan-quant` accuracy budget bounds.

use crate::eltwise::Epilogue;
use crate::selector::{self, Layout, Op, Schedule, Variant};
use crate::shape::ConvGeometry;
use crate::threadpool::{self, SharedMut};
use std::cell::Cell;

/// Rows per register tile (output channels per kernel call).
pub(crate) const QMR: usize = 4;
/// Columns per packed strip (one `ymm` of i32 lanes).
pub(crate) const QNR: usize = 8;
/// k values folded per `pmaddubsw`/`pmaddwd` pair.
const KQ: usize = 4;
/// Largest quantized weight magnitude; see the module docs for why not 127.
pub const QW_MAX: i32 = 63;
/// Activation zero point: u8 128 encodes real 0.0.
pub const Q_ZERO: u8 = 128;

/// Per-tensor activation scale for a calibrated max-abs range. A dead range
/// (all-zero calibration tensor) maps to scale 1.0 so dequant stays finite.
pub fn activation_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Largest absolute value in a buffer (0.0 for empty).
pub fn max_abs(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Quantizes a f32 buffer to u8 around [`Q_ZERO`]: the runtime half of the
/// activation format above.
///
/// Rounding is **ties-to-even** — the hardware default the AVX2 path's
/// `vcvtps2dq` uses — and the scalar fallback matches it with
/// [`f32::round_ties_even`], so the quantized bytes are identical on every
/// CPU. The clamp runs after the integer zero-point shift, exactly like the
/// `packus` saturation chain in the vector path.
pub fn quantize_activations(x: &[f32], scale: f32, out: &mut [u8]) {
    assert_eq!(x.len(), out.len(), "quantize_activations length");
    let inv = 1.0 / scale;
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if use_avx2_kernel() {
        done = x.len() - x.len() % 32;
        if done > 0 {
            // Safety: AVX2 detected at runtime; `done` is a multiple of 32
            // within both slices.
            unsafe { qx86::quantize_avx2(&x[..done], inv, &mut out[..done]) };
        }
    }
    for (o, &v) in out[done..].iter_mut().zip(&x[done..]) {
        *o = ((v * inv).round_ties_even() as i32 + Q_ZERO as i32).clamp(0, 255) as u8;
    }
}

/// A weight matrix quantized per row and prepacked for the i8 kernel.
///
/// Layout: rows are grouped into [`QMR`]-tall slivers, k into [`KQ`]-deep
/// quads; `sliv[((ir·kq + q)·QMR + r)·KQ + t]` holds `qw[ir·QMR + r][q·KQ + t]`,
/// zero-padded past `m` and `k`. Zero k-padding is load-bearing: padded
/// activation bytes multiply against weight 0, so the packed kernel is exact
/// for any `k`, and the per-row `rowsums` (over real k only) make the
/// zero-point correction exact too.
pub struct QPackedW {
    sliv: Vec<i8>,
    scales: Vec<f32>,
    rowsums: Vec<i32>,
    m: usize,
    k: usize,
}

impl QPackedW {
    /// Quantizes and packs the row-major `m x k` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != m * k`.
    pub fn pack(w: &[f32], m: usize, k: usize) -> Self {
        assert_eq!(w.len(), m * k, "QPackedW operand length");
        let kq = k.div_ceil(KQ);
        let mb = m.div_ceil(QMR);
        let mut sliv = vec![0i8; mb * kq * QMR * KQ];
        let mut scales = vec![1.0f32; m];
        let mut rowsums = vec![0i32; m];
        for i in 0..m {
            let row = &w[i * k..(i + 1) * k];
            let amax = max_abs(row);
            let scale = if amax > 0.0 {
                amax / QW_MAX as f32
            } else {
                1.0
            };
            scales[i] = scale;
            let (ir, r) = (i / QMR, i % QMR);
            let base = ir * kq * QMR * KQ + r * KQ;
            let mut sum = 0i32;
            for (p, &v) in row.iter().enumerate() {
                let q = ((v / scale).round() as i32).clamp(-QW_MAX, QW_MAX);
                sum += q;
                sliv[base + (p / KQ) * QMR * KQ + (p % KQ)] = q as i8;
            }
            rowsums[i] = sum;
        }
        QPackedW {
            sliv,
            scales,
            rowsums,
            m,
            k,
        }
    }

    /// Logical row count (output channels).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical inner dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Heap bytes held: i8 panels plus the f32 scale and i32 rowsum tables.
    /// This is what plan `packed_bytes` (and therefore the nb-serve LRU
    /// charge) accounts for a quantized layer — roughly a quarter of the
    /// f32 [`crate::PackedA`] footprint.
    pub fn bytes(&self) -> usize {
        self.sliv.len() + (self.scales.len() + self.rowsums.len()) * 4
    }
}

/// A conv input viewed as its u8 im2col column matrix: the quantized twin of
/// the f32 `Im2colRef`, padding with [`Q_ZERO`] (quantized 0.0) instead of 0.
pub struct QIm2colRef<'a> {
    /// One quantized sample, `[c_in, h, w]` flat.
    pub x: &'a [u8],
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Conv geometry (kernel, stride, padding).
    pub geom: ConvGeometry,
    /// Output height.
    pub ho: usize,
    /// Output width.
    pub wo: usize,
}

impl QIm2colRef<'_> {
    /// Virtual row count: `c_in * kh * kw`.
    pub fn rows(&self) -> usize {
        self.c_in * self.geom.kh * self.geom.kw
    }

    /// Virtual column count: `ho * wo`.
    pub fn cols(&self) -> usize {
        self.ho * self.wo
    }

    /// Packs the [`QNR`]-wide strip at column `j0` into the kernel layout
    /// `dst[q·QNR·KQ + j·KQ + t] = B[q·KQ + t, j0 + j]`, padding columns past
    /// `width` and rows past `k` with [`Q_ZERO`].
    ///
    /// Structured as the f32 `Im2colRef::pack`: each virtual row is gathered
    /// into a fixed [`QNR`]-byte buffer (a single `copy_from_slice` for the
    /// common stride-1 interior case), then [`interleave_quad`] scatters four
    /// of them into the `[j][t]` order `pmaddubsw` wants — all over
    /// fixed-size arrays, so no per-byte bounds checks survive.
    fn pack_strip(&self, dst: &mut [u8], j0: usize, width: usize) {
        let (kh, kw) = (self.geom.kh, self.geom.kw);
        let (sh, sw) = (self.geom.sh, self.geom.sw);
        let (ph, pw) = (self.geom.ph, self.geom.pw);
        let (h, w, wo) = (self.h, self.w, self.wo);
        let k = self.rows();
        let (oi0, oj0) = (j0 / wo, j0 % wo);
        // All `width` columns share one output row iff the strip doesn't wrap.
        let single_row = oj0 + width <= wo;
        let (mut ci, mut ki, mut kj) = (0usize, 0usize, 0usize);
        let mut rows = [[Q_ZERO; QNR]; KQ];
        for (q, quad) in dst.chunks_exact_mut(QNR * KQ).enumerate() {
            for (t, row) in rows.iter_mut().enumerate() {
                if q * KQ + t >= k {
                    *row = [Q_ZERO; QNR];
                    continue;
                }
                if single_row {
                    let ii = (oi0 * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        *row = [Q_ZERO; QNR];
                    } else {
                        let src_row =
                            &self.x[(ci * h + ii as usize) * w..(ci * h + ii as usize + 1) * w];
                        let jj0 = (oj0 * sw + kj) as isize - pw as isize;
                        if sw == 1 && jj0 >= 0 && jj0 as usize + width <= w {
                            if width == QNR {
                                *row = (&src_row[jj0 as usize..jj0 as usize + QNR])
                                    .try_into()
                                    .expect("QNR-wide source");
                            } else {
                                row[..width]
                                    .copy_from_slice(&src_row[jj0 as usize..jj0 as usize + width]);
                                row[width..].fill(Q_ZERO);
                            }
                        } else {
                            for (j, v) in row.iter_mut().enumerate() {
                                *v = if j < width {
                                    let jj = jj0 + (j * sw) as isize;
                                    if jj < 0 || jj >= w as isize {
                                        Q_ZERO
                                    } else {
                                        src_row[jj as usize]
                                    }
                                } else {
                                    Q_ZERO
                                };
                            }
                        }
                    }
                } else {
                    // Strip wraps across output rows: general gather.
                    let (mut oi, mut oj) = (oi0, oj0);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = if j < width {
                            let ii = (oi * sh + ki) as isize - ph as isize;
                            let jj = (oj * sw + kj) as isize - pw as isize;
                            let val = if ii < 0 || ii >= h as isize || jj < 0 || jj >= w as isize {
                                Q_ZERO
                            } else {
                                self.x[(ci * h + ii as usize) * w + jj as usize]
                            };
                            oj += 1;
                            if oj == wo {
                                oj = 0;
                                oi += 1;
                            }
                            val
                        } else {
                            Q_ZERO
                        };
                    }
                }
                kj += 1;
                if kj == kw {
                    kj = 0;
                    ki += 1;
                    if ki == kh {
                        ki = 0;
                        ci += 1;
                    }
                }
            }
            interleave_quad(quad, &rows);
        }
    }
}

/// Scatters four gathered [`QNR`]-byte virtual rows into one packed quad in
/// the `[j][t]` interleave the kernel's 16-bit pair-sums require.
///
/// On x86_64 the 4x8 byte transpose is three levels of `punpck` (SSE2 is
/// baseline there — no runtime gate); elsewhere a fixed-size scalar scatter.
#[inline(always)]
fn interleave_quad(dst: &mut [u8], rows: &[[u8; QNR]; KQ]) {
    let d: &mut [u8; QNR * KQ] = dst.try_into().expect("quad-sized chunk");
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::*;
        // Safety: SSE2 is part of the x86_64 baseline; loads read 8 bytes
        // from [u8; 8] rows and stores write the 32-byte fixed-size quad.
        unsafe {
            let r0 = _mm_loadl_epi64(rows[0].as_ptr() as *const __m128i);
            let r1 = _mm_loadl_epi64(rows[1].as_ptr() as *const __m128i);
            let r2 = _mm_loadl_epi64(rows[2].as_ptr() as *const __m128i);
            let r3 = _mm_loadl_epi64(rows[3].as_ptr() as *const __m128i);
            let lo01 = _mm_unpacklo_epi8(r0, r1);
            let lo23 = _mm_unpacklo_epi8(r2, r3);
            _mm_storeu_si128(
                d.as_mut_ptr() as *mut __m128i,
                _mm_unpacklo_epi16(lo01, lo23),
            );
            _mm_storeu_si128(
                d.as_mut_ptr().add(16) as *mut __m128i,
                _mm_unpackhi_epi16(lo01, lo23),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    for j in 0..QNR {
        for (t, row) in rows.iter().enumerate() {
            d[j * KQ + t] = row[j];
        }
    }
}

/// The right operand of the quantized kernel: a materialized u8 matrix
/// (stored `k x n` row-major, or transposed) or a virtual im2col view.
pub enum QBOperand<'a> {
    /// Materialized matrix. With `trans`, element `(p, j)` reads `b[j·k + p]`
    /// — how the linear path views a `[rows, k]` activation batch.
    Mat {
        /// Backing u8 buffer.
        b: &'a [u8],
        /// Whether the buffer is stored transposed (`n x k`).
        trans: bool,
    },
    /// Virtual im2col view of a quantized conv input.
    Im2col(&'a QIm2colRef<'a>),
}

impl QBOperand<'_> {
    fn pack_strip(&self, dst: &mut [u8], k: usize, n: usize, j0: usize, width: usize) {
        match self {
            QBOperand::Mat { b, trans: false } => {
                let mut rows = [[Q_ZERO; QNR]; KQ];
                for (q, quad) in dst.chunks_exact_mut(QNR * KQ).enumerate() {
                    for (t, row) in rows.iter_mut().enumerate() {
                        let p = q * KQ + t;
                        if p >= k {
                            *row = [Q_ZERO; QNR];
                        } else if width == QNR {
                            // Fixed-size view: one 8-byte move, no memmove
                            // call for a runtime length.
                            *row = (&b[p * n + j0..p * n + j0 + QNR])
                                .try_into()
                                .expect("QNR-wide source");
                        } else {
                            row[..width].copy_from_slice(&b[p * n + j0..p * n + j0 + width]);
                            row[width..].fill(Q_ZERO);
                        }
                    }
                    interleave_quad(quad, &rows);
                }
            }
            QBOperand::Mat { b, trans: true } => {
                // Transposed source: column `j` of the strip is the
                // contiguous row `b[(j0+j)·k ..]`, and the quad interleave
                // `[j][t]` makes each destination group a contiguous 4-byte
                // copy from it — no transpose needed at all.
                let kq = k.div_ceil(KQ);
                for j in 0..QNR {
                    if j >= width {
                        for q in 0..kq {
                            dst[q * QNR * KQ + j * KQ..q * QNR * KQ + (j + 1) * KQ].fill(Q_ZERO);
                        }
                        continue;
                    }
                    let src = &b[(j0 + j) * k..(j0 + j + 1) * k];
                    for (q, quad) in src.chunks_exact(KQ).enumerate() {
                        dst[q * QNR * KQ + j * KQ..q * QNR * KQ + (j + 1) * KQ]
                            .copy_from_slice(quad);
                    }
                    let rem = k % KQ;
                    if rem > 0 {
                        let q = k / KQ;
                        let d = &mut dst[q * QNR * KQ + j * KQ..q * QNR * KQ + (j + 1) * KQ];
                        for (t, v) in d.iter_mut().enumerate() {
                            *v = if t < rem { src[q * KQ + t] } else { Q_ZERO };
                        }
                    }
                }
            }
            QBOperand::Im2col(im) => im.pack_strip(dst, j0, width),
        }
    }
}

/// Scalar register tile: `QMR x QNR` i32 accumulators over one packed weight
/// sliver and one packed strip. Integer math, so this *is* the reference —
/// the AVX2 twin below produces identical bits by construction.
fn qmicrokernel(kq: usize, wsliv: &[i8], bq: &[u8], acc: &mut [[i32; QNR]; QMR]) {
    for q in 0..kq {
        let wq = &wsliv[q * QMR * KQ..(q + 1) * QMR * KQ];
        let bqv = &bq[q * QNR * KQ..(q + 1) * QNR * KQ];
        for (r, row) in acc.iter_mut().enumerate() {
            for (j, a) in row.iter_mut().enumerate() {
                for t in 0..KQ {
                    *a += wq[r * KQ + t] as i32 * bqv[j * KQ + t] as i32;
                }
            }
        }
    }
}

/// True when the AVX2 i8 kernel can run. FMA is irrelevant here; AVX2 alone
/// provides `vpmaddubsw`/`vpmaddwd`.
#[inline]
fn use_avx2_kernel() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod qx86 {
    use super::{Epilogue, KQ, QMR, QNR};
    use core::arch::x86_64::*;

    /// AVX2 twin of [`super::qmicrokernel`]: per k-quad, one 32-byte strip
    /// load covers all [`QNR`] columns, and each row broadcasts its 4 weight
    /// bytes with `vpbroadcastd`; `maddubs(u8·i8) → i16` pairs then
    /// `madd(·, 1) → i32` fold the quad, exactly — the ±63 weight bound rules
    /// out i16 saturation (see module docs) and i32 addition is associative,
    /// so the bits match the scalar kernel for every input.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` target feature at runtime; `wsliv` must hold at
    /// least `kq·QMR·KQ` bytes and `bq` at least `kq·QNR·KQ`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qmicrokernel_avx2(
        kq: usize,
        wsliv: &[i8],
        bq: &[u8],
        acc: &mut [[i32; QNR]; QMR],
    ) {
        debug_assert!(wsliv.len() >= kq * QMR * KQ && bq.len() >= kq * QNR * KQ);
        let ones = _mm256_set1_epi16(1);
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut w_ptr = wsliv.as_ptr() as *const i32;
        let mut b_ptr = bq.as_ptr();
        for _ in 0..kq {
            let b = _mm256_loadu_si256(b_ptr as *const __m256i);
            let w0 = _mm256_set1_epi32(w_ptr.read_unaligned());
            a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(_mm256_maddubs_epi16(b, w0), ones));
            let w1 = _mm256_set1_epi32(w_ptr.add(1).read_unaligned());
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(_mm256_maddubs_epi16(b, w1), ones));
            let w2 = _mm256_set1_epi32(w_ptr.add(2).read_unaligned());
            a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(_mm256_maddubs_epi16(b, w2), ones));
            let w3 = _mm256_set1_epi32(w_ptr.add(3).read_unaligned());
            a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(_mm256_maddubs_epi16(b, w3), ones));
            w_ptr = w_ptr.add(QMR);
            b_ptr = b_ptr.add(QNR * KQ);
        }
        for (row, sum) in acc.iter_mut().zip([a0, a1, a2, a3]) {
            let prev = _mm256_loadu_si256(row.as_ptr() as *const __m256i);
            _mm256_storeu_si256(
                row.as_mut_ptr() as *mut __m256i,
                _mm256_add_epi32(prev, sum),
            );
        }
    }

    /// AVX2 dequant + epilogue for one full [`QNR`]-wide accumulator row:
    /// `y = (acc - corr)·scale + base` then the activation, all as one
    /// register pass. Every step mirrors the scalar write-out per element —
    /// `vcvtdq2ps` is the same i32→f32 conversion, multiply and add stay
    /// separate (no FMA contraction), and `vmaxps` agrees with `f32::max`
    /// whenever neither operand is NaN (the decayed-ReLU operands share a
    /// sign, so the ±0 ambiguity never produces different bits) — making the
    /// SIMD and scalar paths bitwise identical on quantized inference data.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` target feature at runtime and `out.len() == QNR`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequant_act_avx2(
        acc: &[i32; QNR],
        corr: i32,
        scale: f32,
        base: f32,
        act: Epilogue,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), QNR);
        let a = _mm256_loadu_si256(acc.as_ptr() as *const __m256i);
        let a = _mm256_sub_epi32(a, _mm256_set1_epi32(corr));
        let mut v = _mm256_add_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(a), _mm256_set1_ps(scale)),
            _mm256_set1_ps(base),
        );
        match act {
            Epilogue::None => {}
            Epilogue::Relu { alpha } => {
                v = _mm256_max_ps(_mm256_mul_ps(v, _mm256_set1_ps(alpha)), v);
            }
            Epilogue::Relu6 { alpha } => {
                let m = _mm256_max_ps(_mm256_mul_ps(v, _mm256_set1_ps(alpha)), v);
                let over =
                    _mm256_max_ps(_mm256_sub_ps(v, _mm256_set1_ps(6.0)), _mm256_setzero_ps());
                v = _mm256_sub_ps(m, _mm256_mul_ps(_mm256_set1_ps(1.0 - alpha), over));
            }
        }
        _mm256_storeu_ps(out.as_mut_ptr(), v);
    }

    /// [`dequant_act_avx2`] followed by an in-register requantize with
    /// `inv = 1/out_scale`: `vcvtps2dq` (ties-to-even, matching the scalar
    /// `round_ties_even`), integer zero-point shift, explicit 0..255 clamp,
    /// then the `packus` funnel down to 8 bytes — the same steps as
    /// [`quantize_avx2`] applied to the dequantized row, so the bytes equal
    /// a separate f32 write-out plus [`super::quantize_activations`].
    ///
    /// # Safety
    ///
    /// Requires the `avx2` target feature at runtime and `out.len() == QNR`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequant_act_requant_avx2(
        acc: &[i32; QNR],
        corr: i32,
        scale: f32,
        base: f32,
        act: Epilogue,
        inv: f32,
        out: &mut [u8],
    ) {
        debug_assert_eq!(out.len(), QNR);
        let a = _mm256_loadu_si256(acc.as_ptr() as *const __m256i);
        let a = _mm256_sub_epi32(a, _mm256_set1_epi32(corr));
        let mut v = _mm256_add_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(a), _mm256_set1_ps(scale)),
            _mm256_set1_ps(base),
        );
        match act {
            Epilogue::None => {}
            Epilogue::Relu { alpha } => {
                v = _mm256_max_ps(_mm256_mul_ps(v, _mm256_set1_ps(alpha)), v);
            }
            Epilogue::Relu6 { alpha } => {
                let m = _mm256_max_ps(_mm256_mul_ps(v, _mm256_set1_ps(alpha)), v);
                let over =
                    _mm256_max_ps(_mm256_sub_ps(v, _mm256_set1_ps(6.0)), _mm256_setzero_ps());
                v = _mm256_sub_ps(m, _mm256_mul_ps(_mm256_set1_ps(1.0 - alpha), over));
            }
        }
        let q = _mm256_cvtps_epi32(_mm256_mul_ps(v, _mm256_set1_ps(inv)));
        let q = _mm256_add_epi32(q, _mm256_set1_epi32(super::Q_ZERO as i32));
        let q = _mm256_min_epi32(
            _mm256_max_epi32(q, _mm256_setzero_si256()),
            _mm256_set1_epi32(255),
        );
        // Narrow 8 x i32 -> 8 x u8: pack to u16 per 128-bit lane, pull both
        // low quads into the lower half, pack to u8 (saturation is a no-op
        // after the clamp), store 8 bytes.
        let p16 = _mm256_packus_epi32(q, q);
        let p16 = _mm256_permute4x64_epi64(p16, 0b1101_1000);
        let p8 = _mm_packus_epi16(_mm256_castsi256_si128(p16), _mm_setzero_si128());
        _mm_storel_epi64(out.as_mut_ptr() as *mut __m128i, p8);
    }

    /// AVX2 activation quantize over a 32-multiple prefix: `vcvtps2dq`
    /// (ties-to-even, matching the scalar `round_ties_even` tail), integer
    /// zero-point shift, explicit 0..255 clamp, then the
    /// `packus_epi32`/`packus_epi16`/`permutevar8x32` funnel down to bytes.
    /// Non-finite inputs are the one divergence from the scalar path
    /// (`vcvtps2dq` yields `i32::MIN`, clamped to 0); quantized inference
    /// never feeds those.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` target feature at runtime and
    /// `x.len() == out.len()` with `x.len() % 32 == 0`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_avx2(x: &[f32], inv: f32, out: &mut [u8]) {
        debug_assert!(x.len() == out.len() && x.len().is_multiple_of(32));
        let vinv = _mm256_set1_ps(inv);
        let zp = _mm256_set1_epi32(super::Q_ZERO as i32);
        let lo = _mm256_setzero_si256();
        let hi = _mm256_set1_epi32(255);
        let perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        let mut xp = x.as_ptr();
        let mut op = out.as_mut_ptr();
        for _ in 0..x.len() / 32 {
            let cvt = |p: *const f32| {
                let q = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(p), vinv));
                _mm256_min_epi32(_mm256_max_epi32(_mm256_add_epi32(q, zp), lo), hi)
            };
            let (q0, q1, q2, q3) = (cvt(xp), cvt(xp.add(8)), cvt(xp.add(16)), cvt(xp.add(24)));
            let w0 = _mm256_packus_epi32(q0, q1);
            let w1 = _mm256_packus_epi32(q2, q3);
            let bytes = _mm256_packus_epi16(w0, w1);
            _mm256_storeu_si256(op as *mut __m256i, _mm256_permutevar8x32_epi32(bytes, perm));
            xp = xp.add(32);
            op = op.add(32);
        }
    }
}

thread_local! {
    /// Packed u8 strip scratch for the quantized kernel (one strip per use).
    static QGEMM_PACK_B: Cell<Vec<u8>> = const { Cell::new(Vec::new()) };
}

fn with_u8_scratch<R>(len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
    QGEMM_PACK_B.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < len {
            buf.resize(len, 0);
        }
        let result = f(&mut buf[..len]);
        cell.set(buf);
        result
    })
}

/// Output sink for [`qgemm_strips`]: `(offset, width, fill)` hands the
/// caller a window of `c` to fill, abstracting the serial (`&mut [f32]`)
/// and column-split parallel (`SharedMut` window) destinations.
type StripWriter<'a> = &'a (dyn Fn(usize, usize, &mut dyn FnMut(&mut [f32])) + Sync);

/// u8 twin of [`StripWriter`] for the requantizing sink.
type StripWriterU8<'a> = &'a (dyn Fn(usize, usize, &mut dyn FnMut(&mut [u8])) + Sync);

/// Where [`qgemm_strips`] puts each finished accumulator row.
enum StripSink<'a> {
    /// Dequantize + bias + activation into f32 output rows.
    F32(StripWriter<'a>),
    /// Dequantize + bias + activation, then requantize with `1/out_scale`
    /// into u8 rows — byte-for-byte what [`quantize_activations`] over the
    /// f32 sink's output would produce, with the f32 round-trip elided.
    Requant(StripWriterU8<'a>, f32),
}

/// Computes one strip range `[s0, s1)` of the output: pack each strip, run
/// the tile kernel down the row slivers, dequantize + bias + activate into
/// the row segments of the sink.
#[allow(clippy::too_many_arguments)]
fn qgemm_strips(
    wq: &QPackedW,
    bop: &QBOperand,
    n: usize,
    s0: usize,
    s1: usize,
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
    simd: bool,
    sink: &StripSink<'_>,
) {
    let (m, k) = (wq.m, wq.k);
    let kq = k.div_ceil(KQ);
    with_u8_scratch(kq.max(1) * QNR * KQ, |bq| {
        for s in s0..s1 {
            let j0 = s * QNR;
            let width = QNR.min(n - j0);
            bop.pack_strip(bq, k, n, j0, width);
            for ir in 0..m.div_ceil(QMR) {
                let i_base = ir * QMR;
                let height = QMR.min(m - i_base);
                let wsliv = &wq.sliv[ir * kq * QMR * KQ..(ir * kq + kq.max(1)) * QMR * KQ];
                let mut acc = [[0i32; QNR]; QMR];
                #[cfg(target_arch = "x86_64")]
                if simd {
                    // Safety: `simd` is only true when AVX2 was detected at
                    // runtime, and both packed slices hold `kq` quads.
                    unsafe { qx86::qmicrokernel_avx2(kq, wsliv, bq, &mut acc) };
                } else {
                    qmicrokernel(kq, wsliv, bq, &mut acc);
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let _ = simd;
                    qmicrokernel(kq, wsliv, bq, &mut acc);
                }
                for (r, acc_row) in acc.iter().enumerate().take(height) {
                    let row = i_base + r;
                    let scale = wq.scales[row] * x_scale;
                    let corr = Q_ZERO as i32 * wq.rowsums[row];
                    let base = bias.map_or(0.0, |b| b[row]);
                    match sink {
                        StripSink::F32(write) => write(row * n + j0, width, &mut |seg| {
                            #[cfg(target_arch = "x86_64")]
                            if simd && width == QNR {
                                // Safety: AVX2 detected (simd), and the
                                // segment is one full QNR-wide register row.
                                unsafe {
                                    qx86::dequant_act_avx2(acc_row, corr, scale, base, act, seg)
                                };
                                return;
                            }
                            for (cv, &a) in seg.iter_mut().zip(acc_row) {
                                *cv = (a - corr) as f32 * scale + base;
                            }
                            act.apply(seg);
                        }),
                        StripSink::Requant(write, out_scale) => {
                            let inv = 1.0 / out_scale;
                            write(row * n + j0, width, &mut |seg| {
                                #[cfg(target_arch = "x86_64")]
                                if simd && width == QNR {
                                    // Safety: AVX2 detected (simd), and the
                                    // segment is one full QNR-wide row.
                                    unsafe {
                                        qx86::dequant_act_requant_avx2(
                                            acc_row, corr, scale, base, act, inv, seg,
                                        )
                                    };
                                    return;
                                }
                                let mut tmp = [0.0f32; QNR];
                                for (t, &a) in tmp.iter_mut().zip(acc_row).take(width) {
                                    *t = (a - corr) as f32 * scale + base;
                                }
                                act.apply(&mut tmp[..width]);
                                for (o, &v) in seg.iter_mut().zip(&tmp) {
                                    *o = ((v * inv).round_ties_even() as i32 + Q_ZERO as i32)
                                        .clamp(0, 255)
                                        as u8;
                                }
                            });
                        }
                    }
                }
            }
        }
    })
}

/// Runs the quantized GEMM `C = act(dequant(QW · B) + bias)` with a forced
/// variant — the autotuner's timing hook. `schedule` picks the scalar
/// (`Direct`) or SIMD (`Blocked`) tile kernel; block geometry is ignored
/// because the single-level strip walk already fits cache for quantized
/// operand sizes, and exact integer accumulation makes every choice
/// bit-identical anyway. The parallel hint column-splits across the pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_qgemm_variant(
    variant: Variant,
    wq: &QPackedW,
    bop: &QBOperand,
    c: &mut [f32],
    n: usize,
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
) {
    let m = wq.m;
    assert_eq!(c.len(), m * n, "qgemm out buffer length");
    if let Some(b) = bias {
        assert_eq!(b.len(), m, "qgemm bias length");
    }
    if m == 0 || n == 0 {
        return;
    }
    let simd = variant.schedule != Schedule::Direct && use_avx2_kernel();
    let strips = n.div_ceil(QNR);
    let threads = threadpool::num_threads();
    if variant.parallel && threads > 1 && strips > 1 {
        let shared = SharedMut::new(c);
        let chunks = strips.min(threads * 4);
        threadpool::parallel_for(chunks, &|ci| {
            let s0 = strips * ci / chunks;
            let s1 = strips * (ci + 1) / chunks;
            let write: StripWriter = &|off, len, fill| {
                // Safety: each task owns disjoint column ranges, so the
                // per-row windows never overlap across tasks.
                fill(unsafe { shared.slice(off, len) })
            };
            qgemm_strips(
                wq,
                bop,
                n,
                s0,
                s1,
                x_scale,
                bias,
                act,
                simd,
                &StripSink::F32(write),
            );
        });
    } else {
        let shared = SharedMut::new(c);
        let write: StripWriter = &|off, len, fill| {
            // Safety: serial path; windows are used one at a time.
            fill(unsafe { shared.slice(off, len) })
        };
        qgemm_strips(
            wq,
            bop,
            n,
            0,
            strips,
            x_scale,
            bias,
            act,
            simd,
            &StripSink::F32(write),
        );
    }
}

/// [`run_qgemm_variant`] with the requantizing u8 sink: the dequantized,
/// biased, activated value is quantized straight back to u8 with
/// `out_scale` in the register epilogue. Produces byte-for-byte what
/// [`quantize_activations`] over the f32 variant's output would, without
/// materializing the f32 intermediate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_qgemm_variant_requant(
    variant: Variant,
    wq: &QPackedW,
    bop: &QBOperand,
    c: &mut [u8],
    n: usize,
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
    out_scale: f32,
) {
    let m = wq.m;
    assert_eq!(c.len(), m * n, "qgemm requant out buffer length");
    if let Some(b) = bias {
        assert_eq!(b.len(), m, "qgemm bias length");
    }
    if m == 0 || n == 0 {
        return;
    }
    let simd = variant.schedule != Schedule::Direct && use_avx2_kernel();
    let strips = n.div_ceil(QNR);
    let threads = threadpool::num_threads();
    if variant.parallel && threads > 1 && strips > 1 {
        let shared = SharedMut::new(c);
        let chunks = strips.min(threads * 4);
        threadpool::parallel_for(chunks, &|ci| {
            let s0 = strips * ci / chunks;
            let s1 = strips * (ci + 1) / chunks;
            let write: StripWriterU8 = &|off, len, fill| {
                // Safety: each task owns disjoint column ranges, so the
                // per-row windows never overlap across tasks.
                fill(unsafe { shared.slice(off, len) })
            };
            qgemm_strips(
                wq,
                bop,
                n,
                s0,
                s1,
                x_scale,
                bias,
                act,
                simd,
                &StripSink::Requant(write, out_scale),
            );
        });
    } else {
        let shared = SharedMut::new(c);
        let write: StripWriterU8 = &|off, len, fill| {
            // Safety: serial path; windows are used one at a time.
            fill(unsafe { shared.slice(off, len) })
        };
        qgemm_strips(
            wq,
            bop,
            n,
            0,
            strips,
            x_scale,
            bias,
            act,
            simd,
            &StripSink::Requant(write, out_scale),
        );
    }
}

/// Quantized conv forward over a virtual u8 im2col view — the serving-path
/// kernel behind `CompiledPlan`'s `QConv` actions. Selects its variant under
/// the `qconv` key namespace.
pub fn qgemm_conv(
    wq: &QPackedW,
    qim: &QIm2colRef,
    c: &mut [f32],
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
) {
    assert_eq!(qim.rows(), wq.k, "qgemm_conv operand inner dimension");
    let n = qim.cols();
    let variant = selector::select(Op::QConv, Layout::NN, wq.m, wq.k, n);
    let bop = QBOperand::Im2col(qim);
    run_qgemm_variant(variant, wq, &bop, c, n, x_scale, bias, act);
}

/// Quantized pointwise-conv fast path: a 1x1 stride-1 unpadded conv's column
/// matrix is the quantized sample itself, so the strip pack reads it as a
/// materialized `k x n` matrix with no coordinate math.
pub fn qgemm_conv_mat(
    wq: &QPackedW,
    qx: &[u8],
    c: &mut [f32],
    n: usize,
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
) {
    assert_eq!(qx.len(), wq.k * n, "qgemm_conv_mat operand length");
    let variant = selector::select(Op::QConv, Layout::NN, wq.m, wq.k, n);
    let bop = QBOperand::Mat {
        b: qx,
        trans: false,
    };
    run_qgemm_variant(variant, wq, &bop, c, n, x_scale, bias, act);
}

/// [`qgemm_conv_mat`] that emits its output already quantized with
/// `out_scale` — for chains where the very next consumer is another int8
/// kernel (the fused inverted-residual executor's expand stage). The bytes
/// equal `qgemm_conv_mat` followed by [`quantize_activations`], with the
/// f32 intermediate and its extra memory pass elided; the variant is
/// selected under the same `(m, k, n)` key as the f32-out twin.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_conv_mat_requant(
    wq: &QPackedW,
    qx: &[u8],
    c: &mut [u8],
    n: usize,
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
    out_scale: f32,
) {
    assert_eq!(qx.len(), wq.k * n, "qgemm_conv_mat_requant operand length");
    let variant = selector::select(Op::QConv, Layout::NN, wq.m, wq.k, n);
    let bop = QBOperand::Mat {
        b: qx,
        trans: false,
    };
    run_qgemm_variant_requant(variant, wq, &bop, c, n, x_scale, bias, act, out_scale);
}

thread_local! {
    /// Transposed `[out_f, batch]` result scratch for the linear path.
    static QGEMM_LINEAR_CT: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Quantized linear layer: `out[b][o] = act(Σ_k x[b][k]·w[o][k]·sw[o]·sx + bias[o])`
/// for a quantized `[rows, in_f]` activation batch `qx` against `[out_f, in_f]`
/// packed weights. Computes the transposed `[out_f, rows]` product with the
/// shared strip kernel (the batch is the strip dimension), then transposes
/// into the row-major output — both tiny next to the GEMM itself.
pub fn qgemm_linear(
    wq: &QPackedW,
    qx: &[u8],
    rows: usize,
    out: &mut [f32],
    x_scale: f32,
    bias: Option<&[f32]>,
    act: Epilogue,
) {
    let (out_f, in_f) = (wq.m, wq.k);
    assert_eq!(qx.len(), rows * in_f, "qgemm_linear input length");
    assert_eq!(out.len(), rows * out_f, "qgemm_linear output length");
    if rows == 0 || out_f == 0 {
        return;
    }
    let variant = selector::select(Op::QGemm, Layout::NN, out_f, in_f, rows);
    QGEMM_LINEAR_CT.with(|cell| {
        let mut ct = cell.take();
        if ct.len() < out_f * rows {
            ct.resize(out_f * rows, 0.0);
        }
        let bop = QBOperand::Mat { b: qx, trans: true };
        run_qgemm_variant(
            variant,
            wq,
            &bop,
            &mut ct[..out_f * rows],
            rows,
            x_scale,
            bias,
            act,
        );
        for b in 0..rows {
            for o in 0..out_f {
                out[b * out_f + o] = ct[o * rows + b];
            }
        }
        cell.set(ct);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, salt: u64) -> Vec<f32> {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    /// f64 reference of the full quantized pipeline: quantize, integer
    /// matmul, dequantize — the ground truth both kernels must match.
    fn qgemm_ref(
        w: &[f32],
        x: &[f32],
        m: usize,
        k: usize,
        n: usize,
        x_scale: f32,
        bias: Option<&[f32]>,
    ) -> Vec<f32> {
        let wq = QPackedW::pack(w, m, k);
        let mut qx = vec![0u8; k * n];
        quantize_activations(x, x_scale, &mut qx);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    let q = ((w[i * k + p] / wq.scales[i]).round() as i32).clamp(-QW_MAX, QW_MAX);
                    acc += q as i64 * (qx[p * n + j] as i32 - Q_ZERO as i32) as i64;
                }
                out[i * n + j] = acc as f32 * (wq.scales[i] * x_scale) + bias.map_or(0.0, |b| b[i]);
            }
        }
        out
    }

    #[test]
    fn scalar_and_avx2_kernels_agree_bitwise() {
        for (m, k, n) in [(1, 1, 1), (4, 16, 8), (7, 23, 13), (16, 64, 40), (5, 3, 9)] {
            let w = fill(m * k, 7);
            let x = fill(k * n, 11);
            let x_scale = activation_scale(max_abs(&x));
            let mut qx = vec![0u8; k * n];
            quantize_activations(&x, x_scale, &mut qx);
            let wq = QPackedW::pack(&w, m, k);
            let bias = fill(m, 13);
            let run = |sched: Schedule| {
                let mut c = vec![0.0f32; m * n];
                let v = Variant {
                    schedule: sched,
                    parallel: false,
                };
                let bop = QBOperand::Mat {
                    b: &qx,
                    trans: false,
                };
                run_qgemm_variant(
                    v,
                    &wq,
                    &bop,
                    &mut c,
                    n,
                    x_scale,
                    Some(&bias),
                    Epilogue::Relu { alpha: 0.25 },
                );
                c
            };
            let direct = run(Schedule::Direct);
            let blocked = run(Schedule::Blocked { mc: 64, nc: 256 });
            assert_eq!(direct, blocked, "scalar vs simd bits at {m}x{k}x{n}");
        }
    }

    #[test]
    fn quantized_gemm_matches_integer_reference() {
        for (m, k, n) in [(4, 8, 8), (6, 33, 17), (12, 64, 25)] {
            let w = fill(m * k, 3);
            let x = fill(k * n, 5);
            let x_scale = activation_scale(max_abs(&x));
            let bias = fill(m, 9);
            let expect = qgemm_ref(&w, &x, m, k, n, x_scale, Some(&bias));
            let wq = QPackedW::pack(&w, m, k);
            let mut qx = vec![0u8; k * n];
            quantize_activations(&x, x_scale, &mut qx);
            let mut c = vec![0.0f32; m * n];
            let bop = QBOperand::Mat {
                b: &qx,
                trans: false,
            };
            run_qgemm_variant(
                Variant {
                    schedule: Schedule::Blocked { mc: 64, nc: 256 },
                    parallel: false,
                },
                &wq,
                &bop,
                &mut c,
                n,
                x_scale,
                Some(&bias),
                Epilogue::None,
            );
            assert_eq!(c, expect, "kernel vs reference at {m}x{k}x{n}");
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        // The quantized product must stay within the worst-case rounding
        // envelope of the exact f32 product: per element, roughly
        // k · (sx·max|w| + sw·max|x|) / 2 plus cross terms.
        let (m, k, n) = (8, 64, 32);
        let w = fill(m * k, 21);
        let x = fill(k * n, 23);
        let x_scale = activation_scale(max_abs(&x));
        let wq = QPackedW::pack(&w, m, k);
        let mut qx = vec![0u8; k * n];
        quantize_activations(&x, x_scale, &mut qx);
        let mut c = vec![0.0f32; m * n];
        let bop = QBOperand::Mat {
            b: &qx,
            trans: false,
        };
        run_qgemm_variant(
            Variant {
                schedule: Schedule::Blocked { mc: 64, nc: 256 },
                parallel: false,
            },
            &wq,
            &bop,
            &mut c,
            n,
            x_scale,
            None,
            Epilogue::None,
        );
        let max_w = w.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let bound = k as f32 * 0.5 * (x_scale * 1.02 * max_w + max_w / QW_MAX as f32 * 0.52);
        for i in 0..m {
            for j in 0..n {
                let exact: f32 = (0..k).map(|p| w[i * k + p] * x[p * n + j]).sum();
                let got = c[i * n + j];
                assert!(
                    (got - exact).abs() <= bound,
                    "({i},{j}): quant {got} vs exact {exact}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn im2col_view_matches_materialized_columns() {
        // 3x3 stride-1 pad-1 conv: padding must quantize to Q_ZERO exactly.
        let (c_in, h, w) = (3, 6, 5);
        let geom = ConvGeometry::same(3, 1);
        let (ho, wo) = (h, w);
        let x = fill(c_in * h * w, 31);
        let x_scale = activation_scale(max_abs(&x));
        let mut qx = vec![0u8; x.len()];
        quantize_activations(&x, x_scale, &mut qx);
        let qim = QIm2colRef {
            x: &qx,
            c_in,
            h,
            w,
            geom,
            ho,
            wo,
        };
        let (k, n) = (qim.rows(), qim.cols());
        // Materialize the u8 column matrix by hand.
        let mut cols = vec![Q_ZERO; k * n];
        for p in 0..k {
            let ker = geom.kh * geom.kw;
            let (ci, r) = (p / ker, p % ker);
            let (ki, kj) = (r / geom.kw, r % geom.kw);
            for j in 0..n {
                let (oi, oj) = (j / wo, j % wo);
                let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                if ii >= 0 && ii < h as isize && jj >= 0 && jj < w as isize {
                    cols[p * n + j] = qx[(ci * h + ii as usize) * w + jj as usize];
                }
            }
        }
        let weights = fill(4 * k, 37);
        let wq = QPackedW::pack(&weights, 4, k);
        let run = |bop: QBOperand| {
            let mut c = vec![0.0f32; 4 * n];
            run_qgemm_variant(
                Variant {
                    schedule: Schedule::Blocked { mc: 64, nc: 256 },
                    parallel: false,
                },
                &wq,
                &bop,
                &mut c,
                n,
                x_scale,
                None,
                Epilogue::None,
            );
            c
        };
        let implicit = run(QBOperand::Im2col(&qim));
        let explicit = run(QBOperand::Mat {
            b: &cols,
            trans: false,
        });
        assert_eq!(implicit, explicit, "virtual vs materialized u8 im2col");
    }

    #[test]
    fn linear_path_matches_reference_layout() {
        let (out_f, in_f, rows) = (10, 24, 3);
        let w = fill(out_f * in_f, 41);
        let x = fill(rows * in_f, 43);
        let x_scale = activation_scale(max_abs(&x));
        let bias = fill(out_f, 47);
        let wq = QPackedW::pack(&w, out_f, in_f);
        let mut qx = vec![0u8; rows * in_f];
        quantize_activations(&x, x_scale, &mut qx);
        let mut out = vec![0.0f32; rows * out_f];
        qgemm_linear(
            &wq,
            &qx,
            rows,
            &mut out,
            x_scale,
            Some(&bias),
            Epilogue::None,
        );
        // Reference via the k x n (trans) matrix view of the same batch.
        let mut xt = vec![0.0f32; in_f * rows];
        for b in 0..rows {
            for p in 0..in_f {
                xt[p * rows + b] = x[b * in_f + p];
            }
        }
        let expect = qgemm_ref(&w, &xt, out_f, in_f, rows, x_scale, Some(&bias));
        for b in 0..rows {
            for o in 0..out_f {
                assert_eq!(out[b * out_f + o], expect[o * rows + b], "({b},{o})");
            }
        }
    }

    #[test]
    fn parallel_column_split_is_bitwise() {
        let (m, k, n) = (16, 48, 200);
        let w = fill(m * k, 51);
        let x = fill(k * n, 53);
        let x_scale = activation_scale(max_abs(&x));
        let wq = QPackedW::pack(&w, m, k);
        let mut qx = vec![0u8; k * n];
        quantize_activations(&x, x_scale, &mut qx);
        let run = |parallel: bool| {
            let mut c = vec![0.0f32; m * n];
            let bop = QBOperand::Mat {
                b: &qx,
                trans: false,
            };
            run_qgemm_variant(
                Variant {
                    schedule: Schedule::Blocked { mc: 64, nc: 256 },
                    parallel,
                },
                &wq,
                &bop,
                &mut c,
                n,
                x_scale,
                None,
                Epilogue::Relu6 { alpha: 0.0 },
            );
            c
        };
        assert_eq!(run(false), run(true), "serial vs column-split bits");
    }

    #[test]
    fn weight_quantization_respects_bound_and_rowsums() {
        let w = fill(6 * 40, 61);
        let wq = QPackedW::pack(&w, 6, 40);
        for i in 0..6 {
            let mut sum = 0i32;
            for p in 0..40 {
                let q = ((w[i * 40 + p] / wq.scales[i]).round() as i32).clamp(-QW_MAX, QW_MAX);
                assert!(q.abs() <= QW_MAX);
                sum += q;
            }
            assert_eq!(sum, wq.rowsums[i], "row {i} sum");
        }
        // All-zero rows quantize under scale 1.0 with zero sums.
        let zq = QPackedW::pack(&[0.0; 8], 2, 4);
        assert_eq!(zq.scales(), &[1.0, 1.0]);
        assert_eq!(zq.rowsums, &[0, 0]);
    }

    #[test]
    fn activation_quantization_round_trips_zero_point() {
        let mut q = vec![0u8; 3];
        quantize_activations(&[0.0, 1.0, -1.0], activation_scale(1.0), &mut q);
        assert_eq!(q, vec![Q_ZERO, 255, 1]);
        // Out-of-range values clamp instead of wrapping.
        let mut q = vec![0u8; 2];
        quantize_activations(&[10.0, -10.0], activation_scale(1.0), &mut q);
        assert_eq!(q, vec![255, 0]);
    }
}
