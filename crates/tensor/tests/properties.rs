//! Property-based tests for the tensor kernels: algebraic laws of the
//! elementwise ops, matmul identities, convolution linearity, the
//! im2col/col2im adjoint relationship, and the depthwise kernels (f32 and
//! int8) against independent scalar references — bitwise at every thread
//! width — over random geometries.

use nb_tensor::{
    activation_scale, available_threads, col2im, conv2d, depthwise_conv2d, im2col, matmul_into,
    max_abs, qdepthwise_conv2d_into, quantize_activations, with_thread_cap, ConvGeometry, Epilogue,
    QDepthwiseW, Tensor, Q_ZERO,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor(shape: &[usize], seed: u64) -> Tensor {
    Tensor::randn(shape.to_vec(), &mut StdRng::seed_from_u64(seed))
}

fn bits(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Independent scalar depthwise reference pinning the kernel contract:
/// bias-seeded accumulator, taps in `ki`-major `kj`-minor order,
/// out-of-bounds taps skipped (not added as zero).
fn dw_ref(x: &Tensor, wt: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Vec<f32> {
    let d = x.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (ho, wo) = geom.output_hw(h, w);
    let (xs, ws) = (x.as_slice(), wt.as_slice());
    let mut out = vec![0.0f32; n * c * ho * wo];
    for ni in 0..n {
        for ci in 0..c {
            let plane = &xs[(ni * c + ci) * h * w..];
            let ker = &ws[ci * geom.kh * geom.kw..];
            let o = &mut out[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo];
            for oi in 0..ho {
                for oj in 0..wo {
                    let mut acc = b.map(|b| b.as_slice()[ci]).unwrap_or(0.0);
                    for ki in 0..geom.kh {
                        let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..geom.kw {
                            let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            acc += plane[ii as usize * w + jj as usize] * ker[ki * geom.kw + kj];
                        }
                    }
                    o[oi * wo + oj] = acc;
                }
            }
        }
    }
    out
}

/// Pure-integer quantized depthwise reference: out-of-bounds taps read
/// `Q_ZERO`, one dequantize at the end — the contract the int8 kernels pin.
#[allow(clippy::too_many_arguments)]
fn qdw_ref(
    qx: &[u8],
    n: usize,
    qw: &QDepthwiseW,
    b: Option<&Tensor>,
    geom: ConvGeometry,
    x_scale: f32,
    h: usize,
    w: usize,
) -> Vec<f32> {
    let c = qw.c();
    let (ho, wo) = geom.output_hw(h, w);
    let mut out = vec![0.0f32; n * c * ho * wo];
    for ni in 0..n {
        for ci in 0..c {
            let plane = &qx[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            let (qk, cs) = (qw.filter(ci), qw.scales()[ci] * x_scale);
            let base = b.map(|b| b.as_slice()[ci]).unwrap_or(0.0);
            let o = &mut out[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo];
            for oi in 0..ho {
                for oj in 0..wo {
                    let mut acc = 0i64;
                    for ki in 0..geom.kh {
                        for kj in 0..geom.kw {
                            let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                            let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                            let v = if ii < 0 || ii >= h as isize || jj < 0 || jj >= w as isize {
                                Q_ZERO as i64
                            } else {
                                plane[ii as usize * w + jj as usize] as i64
                            };
                            acc += v * qk[ki * geom.kw + kj] as i64;
                        }
                    }
                    let corrected = acc - Q_ZERO as i64 * qw.kersum(ci) as i64;
                    o[oi * wo + oj] = corrected as i32 as f32 * cs + base;
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Elementwise addition commutes and subtraction inverts it.
    #[test]
    fn add_commutes_sub_inverts(n in 1usize..64, s1 in 0u64..1000, s2 in 0u64..1000) {
        let a = tensor(&[n], s1);
        let b = tensor(&[n], s2);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert!(a.add(&b).sub(&b).allclose(&a, 1e-5));
    }

    /// Scaling distributes over addition.
    #[test]
    fn scale_distributes(n in 1usize..64, s in -3.0f32..3.0, seed in 0u64..1000) {
        let a = tensor(&[n], seed);
        let b = tensor(&[n], seed ^ 0xffff);
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Matmul respects the identity and associates (within fp tolerance).
    #[test]
    fn matmul_identity_and_assoc(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 1);
        let c = tensor(&[n, m], seed ^ 2);
        let eye = Tensor::from_fn([k, k], |i| if i / k == i % k { 1.0 } else { 0.0 });
        prop_assert!(a.matmul(&eye).allclose(&a, 1e-5));
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-3 * (1.0 + lhs.abs_sum())));
    }

    /// Transpose is an involution and distributes over matmul reversed.
    #[test]
    fn transpose_laws(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 3);
        prop_assert_eq!(a.transpose2d().transpose2d(), a.clone());
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_linear_in_input(
        c_in in 1usize..4, c_out in 1usize..4, k in 1usize..4, seed in 0u64..1000,
    ) {
        let geom = ConvGeometry::same(k, 1);
        let x1 = tensor(&[1, c_in, 5, 5], seed);
        let x2 = tensor(&[1, c_in, 5, 5], seed ^ 9);
        let w = tensor(&[c_out, c_in, k, k], seed ^ 5);
        let lhs = conv2d(&x1.add(&x2), &w, None, geom);
        let rhs = conv2d(&x1, &w, None, geom).add(&conv2d(&x2, &w, None, geom));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// col2im is the exact adjoint of im2col: <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn im2col_adjoint(
        c in 1usize..4, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * (k / 2) >= k && w + 2 * (k / 2) >= k);
        let geom = ConvGeometry::same(k, stride);
        let (ho, wo) = geom.output_hw(h, w);
        let x = tensor(&[c * h * w], seed);
        let cvec = tensor(&[c * k * k * ho * wo], seed ^ 11);
        let mut cols = vec![0.0f32; c * k * k * ho * wo];
        im2col(x.as_slice(), c, h, w, geom, &mut cols);
        let lhs: f64 = cols.iter().zip(cvec.as_slice()).map(|(a, b)| (a * b) as f64).sum();
        let mut dx = vec![0.0f32; c * h * w];
        col2im(cvec.as_slice(), c, h, w, geom, &mut dx);
        let rhs: f64 = x.as_slice().iter().zip(&dx).map(|(a, b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// matmul_into agrees with the Tensor::matmul wrapper.
    #[test]
    fn matmul_into_consistent(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 7);
        let mut c = vec![0.0f32; m * n];
        matmul_into(a.as_slice(), b.as_slice(), &mut c, m, k, n);
        let want = a.matmul(&b);
        prop_assert_eq!(c, want.as_slice().to_vec());
    }

    /// Reshape round-trips and preserves the sum.
    #[test]
    fn reshape_preserves(n in 1usize..8, m in 1usize..8, seed in 0u64..1000) {
        let t = tensor(&[n, m], seed);
        let r = t.reshape([m, n]).reshape([n * m]).reshape([n, m]);
        prop_assert_eq!(&r, &t);
        prop_assert!((r.sum() - t.sum()).abs() < 1e-6);
    }

    /// The f32 depthwise kernel (whatever variant the selector picks, AVX2
    /// included) matches the independent scalar reference bitwise, at
    /// thread widths 1, 2, and the machine maximum.
    #[test]
    fn depthwise_matches_reference_across_thread_widths(
        n in 1usize..3, c in 1usize..6, h in 1usize..10, w in 1usize..10,
        k in 1usize..6, stride in 1usize..3, pad in 0usize..3,
        bias in any::<bool>(), seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = ConvGeometry::square(k, stride, pad);
        let x = tensor(&[n, c, h, w], seed);
        let wt = tensor(&[c, k, k], seed ^ 21);
        let bt = if bias { Some(tensor(&[c], seed ^ 22)) } else { None };
        let want = dw_ref(&x, &wt, bt.as_ref(), geom);
        for cap in [1usize, 2, available_threads()] {
            let got = with_thread_cap(cap, || depthwise_conv2d(&x, &wt, bt.as_ref(), geom));
            prop_assert_eq!(
                bits(got.as_slice()), bits(&want),
                "f32 depthwise vs reference, cap {} geom {:?}", cap, geom
            );
        }
    }

    /// The int8 depthwise kernel matches the pure-integer reference bitwise
    /// (after the one dequantize), at thread widths 1, 2, and the maximum.
    #[test]
    fn qdepthwise_matches_integer_reference_across_thread_widths(
        n in 1usize..3, c in 1usize..6, h in 1usize..10, w in 1usize..10,
        k in 1usize..6, stride in 1usize..3, pad in 0usize..3,
        bias in any::<bool>(), seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = ConvGeometry::square(k, stride, pad);
        let x = tensor(&[n, c, h, w], seed);
        let wt = tensor(&[c, k, k], seed ^ 33);
        let bt = if bias { Some(tensor(&[c], seed ^ 34)) } else { None };
        let qw = QDepthwiseW::pack(wt.as_slice(), c, k, k);
        let x_scale = activation_scale(max_abs(x.as_slice()));
        let mut qx = vec![0u8; x.numel()];
        quantize_activations(x.as_slice(), x_scale, &mut qx);
        let want = qdw_ref(&qx, n, &qw, bt.as_ref(), geom, x_scale, h, w);
        for cap in [1usize, 2, available_threads()] {
            let mut got = vec![0.0f32; want.len()];
            with_thread_cap(cap, || {
                qdepthwise_conv2d_into(
                    &qx, n, &qw, bt.as_ref().map(|t| t.as_slice()), geom,
                    Epilogue::None, x_scale, h, w, &mut got,
                );
            });
            prop_assert_eq!(
                bits(&got), bits(&want),
                "int8 depthwise vs reference, cap {} geom {:?}", cap, geom
            );
        }
    }

    /// narrow0 then stack0 reconstructs the tensor.
    #[test]
    fn narrow_stack_roundtrip(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let t = tensor(&[rows, cols], seed);
        let parts: Vec<Tensor> = (0..rows)
            .map(|i| t.narrow0(i, 1).into_reshape([cols]))
            .collect();
        prop_assert_eq!(Tensor::stack0(&parts), t);
    }
}
