//! Property-based tests for the tensor kernels: algebraic laws of the
//! elementwise ops, matmul identities, convolution linearity, and the
//! im2col/col2im adjoint relationship over random geometries.

use nb_tensor::{col2im, conv2d, im2col, matmul_into, ConvGeometry, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor(shape: &[usize], seed: u64) -> Tensor {
    Tensor::randn(shape.to_vec(), &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Elementwise addition commutes and subtraction inverts it.
    #[test]
    fn add_commutes_sub_inverts(n in 1usize..64, s1 in 0u64..1000, s2 in 0u64..1000) {
        let a = tensor(&[n], s1);
        let b = tensor(&[n], s2);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert!(a.add(&b).sub(&b).allclose(&a, 1e-5));
    }

    /// Scaling distributes over addition.
    #[test]
    fn scale_distributes(n in 1usize..64, s in -3.0f32..3.0, seed in 0u64..1000) {
        let a = tensor(&[n], seed);
        let b = tensor(&[n], seed ^ 0xffff);
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Matmul respects the identity and associates (within fp tolerance).
    #[test]
    fn matmul_identity_and_assoc(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 1);
        let c = tensor(&[n, m], seed ^ 2);
        let eye = Tensor::from_fn([k, k], |i| if i / k == i % k { 1.0 } else { 0.0 });
        prop_assert!(a.matmul(&eye).allclose(&a, 1e-5));
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-3 * (1.0 + lhs.abs_sum())));
    }

    /// Transpose is an involution and distributes over matmul reversed.
    #[test]
    fn transpose_laws(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 3);
        prop_assert_eq!(a.transpose2d().transpose2d(), a.clone());
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_linear_in_input(
        c_in in 1usize..4, c_out in 1usize..4, k in 1usize..4, seed in 0u64..1000,
    ) {
        let geom = ConvGeometry::same(k, 1);
        let x1 = tensor(&[1, c_in, 5, 5], seed);
        let x2 = tensor(&[1, c_in, 5, 5], seed ^ 9);
        let w = tensor(&[c_out, c_in, k, k], seed ^ 5);
        let lhs = conv2d(&x1.add(&x2), &w, None, geom);
        let rhs = conv2d(&x1, &w, None, geom).add(&conv2d(&x2, &w, None, geom));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// col2im is the exact adjoint of im2col: <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn im2col_adjoint(
        c in 1usize..4, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * (k / 2) >= k && w + 2 * (k / 2) >= k);
        let geom = ConvGeometry::same(k, stride);
        let (ho, wo) = geom.output_hw(h, w);
        let x = tensor(&[c * h * w], seed);
        let cvec = tensor(&[c * k * k * ho * wo], seed ^ 11);
        let mut cols = vec![0.0f32; c * k * k * ho * wo];
        im2col(x.as_slice(), c, h, w, geom, &mut cols);
        let lhs: f64 = cols.iter().zip(cvec.as_slice()).map(|(a, b)| (a * b) as f64).sum();
        let mut dx = vec![0.0f32; c * h * w];
        col2im(cvec.as_slice(), c, h, w, geom, &mut dx);
        let rhs: f64 = x.as_slice().iter().zip(&dx).map(|(a, b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// matmul_into agrees with the Tensor::matmul wrapper.
    #[test]
    fn matmul_into_consistent(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 7);
        let mut c = vec![0.0f32; m * n];
        matmul_into(a.as_slice(), b.as_slice(), &mut c, m, k, n);
        let want = a.matmul(&b);
        prop_assert_eq!(c, want.as_slice().to_vec());
    }

    /// Reshape round-trips and preserves the sum.
    #[test]
    fn reshape_preserves(n in 1usize..8, m in 1usize..8, seed in 0u64..1000) {
        let t = tensor(&[n, m], seed);
        let r = t.reshape([m, n]).reshape([n * m]).reshape([n, m]);
        prop_assert_eq!(&r, &t);
        prop_assert!((r.sum() - t.sum()).abs() < 1e-6);
    }

    /// narrow0 then stack0 reconstructs the tensor.
    #[test]
    fn narrow_stack_roundtrip(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let t = tensor(&[rows, cols], seed);
        let parts: Vec<Tensor> = (0..rows)
            .map(|i| t.narrow0(i, 1).into_reshape([cols]))
            .collect();
        prop_assert_eq!(Tensor::stack0(&parts), t);
    }
}
