//! Property-based tests for the blocked, packed GEMM: every transposition
//! variant is compared against a three-loop reference over shapes biased
//! toward register/cache-block boundaries, and results are checked to be
//! bitwise independent of the worker-pool width.

use nb_tensor::{gemm, matmul_into, with_thread_cap, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn buf(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Three-loop reference product under the [`gemm`] layout rules: `a_trans`
/// means `a` stores the `k x m` transpose of the logical left operand, and
/// `b_trans` means `b` stores the `n x k` transpose of the right operand.
fn naive(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if a_trans { a[p * m + i] } else { a[i * k + p] };
                let bv = if b_trans { b[j * k + p] } else { b[p * n + j] };
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

fn max_diff(got: &[f32], want: &[f32]) -> f32 {
    got.iter()
        .zip(want)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

fn tol(k: usize) -> f32 {
    1e-4 * (k as f32).sqrt().max(1.0)
}

/// Dimensions concentrated on microkernel (4/8) and cache-block (64/256)
/// boundaries, where packing tails and padding live.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        3 => 1usize..80,
        2 => prop::sample::select(vec![
            1usize, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129,
        ]),
    ]
}

/// Like [`dim`] but also crossing the `KC = 256` panel depth.
fn depth() -> impl Strategy<Value = usize> {
    prop_oneof![
        3 => 1usize..80,
        2 => prop::sample::select(vec![1usize, 4, 8, 63, 64, 65, 255, 256, 257, 300]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four transposition variants match the reference loops.
    #[test]
    fn blocked_matches_naive_all_variants(
        m in dim(), k in depth(), n in dim(), seed in 0u64..1000,
    ) {
        let a = buf(m * k, seed);
        let b = buf(k * n, seed ^ 0xa5a5);
        for (a_trans, b_trans) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut got = vec![0.0f32; m * n];
            gemm(&a, a_trans, &b, b_trans, &mut got, m, k, n, None, false);
            let want = naive(&a, a_trans, &b, b_trans, m, k, n);
            let diff = max_diff(&got, &want);
            prop_assert!(
                diff <= tol(k),
                "({},{},{}) at={} bt={}: max diff {}", m, k, n, a_trans, b_trans, diff
            );
        }
    }

    /// The flat-slice entry point agrees with the reference.
    #[test]
    fn matmul_into_matches_naive(m in dim(), k in depth(), n in dim(), seed in 0u64..1000) {
        let a = buf(m * k, seed);
        let b = buf(k * n, seed ^ 0x5a5a);
        let mut got = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut got, m, k, n);
        let diff = max_diff(&got, &naive(&a, false, &b, false, m, k, n));
        prop_assert!(diff <= tol(k), "({},{},{}): max diff {}", m, k, n, diff);
    }

    /// `matmul_nt` / `matmul_tn` equal matmul against a materialized
    /// transpose.
    #[test]
    fn nt_tn_match_explicit_transpose(m in dim(), k in depth(), n in dim(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let bt = Tensor::randn([n, k], &mut rng);
        prop_assert!(a.matmul_nt(&bt).allclose(&a.matmul(&bt.transpose2d()), tol(k)));
        let at = Tensor::randn([k, m], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        prop_assert!(at.matmul_tn(&b).allclose(&at.transpose2d().matmul(&b), tol(k)));
    }

    /// `row_init` seeds every row; `accumulate` adds onto existing contents.
    #[test]
    fn epilogue_modes(m in dim(), k in depth(), n in dim(), seed in 0u64..1000) {
        let a = buf(m * k, seed);
        let b = buf(k * n, seed ^ 0x77);
        let want = naive(&a, false, &b, false, m, k, n);

        let init = buf(m, seed ^ 0x99);
        let mut with_bias = vec![0.0f32; m * n];
        gemm(&a, false, &b, false, &mut with_bias, m, k, n, Some(&init), false);
        for i in 0..m {
            for j in 0..n {
                let e = (with_bias[i * n + j] - (want[i * n + j] + init[i])).abs();
                prop_assert!(e <= tol(k), "row_init at ({},{}) off by {}", i, j, e);
            }
        }

        let start = buf(m * n, seed ^ 0xbb);
        let mut acc = start.clone();
        gemm(&a, false, &b, false, &mut acc, m, k, n, None, true);
        for i in 0..m * n {
            let e = (acc[i] - (start[i] + want[i])).abs();
            prop_assert!(e <= tol(k), "accumulate at {} off by {}", i, e);
        }
    }

    /// Results are bitwise identical whether the pool runs wide or is capped
    /// to a single thread (parallelism only ever splits rows).
    #[test]
    fn thread_width_is_invisible_prop(seed in 0u64..1000) {
        // Fixed large-ish shape so the default-width run takes the parallel
        // path when the pool has more than one thread.
        let (m, k, n) = (96usize, 160usize, 80usize);
        let a = buf(m * k, seed);
        let b = buf(k * n, seed ^ 0xdead);
        let mut wide = vec![0.0f32; m * n];
        gemm(&a, false, &b, false, &mut wide, m, k, n, None, false);
        let mut narrow = vec![0.0f32; m * n];
        with_thread_cap(1, || {
            gemm(&a, false, &b, false, &mut narrow, m, k, n, None, false);
        });
        prop_assert!(
            wide.iter().zip(&narrow).all(|(x, y)| x.to_bits() == y.to_bits()),
            "thread width changed bits"
        );
    }
}

// ---- pinned edge shapes -----------------------------------------------
//
// The shapes the tiling makes dangerous, as explicit always-run cases (the
// property tests above only sample them): K = 0 (epilogue-only path),
// outputs smaller than the 4x8 microkernel tile, the exact-tile shape, and
// sizes leaving MC/KC/NC remainder blocks.

/// Runs all four transpose variants of one shape against the reference.
fn check_all_variants(m: usize, k: usize, n: usize, seed: u64) {
    let a = buf(m * k, seed);
    let b = buf(k * n, seed ^ 0x1234);
    for (a_trans, b_trans) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut got = vec![0.0f32; m * n];
        gemm(&a, a_trans, &b, b_trans, &mut got, m, k, n, None, false);
        let want = naive(&a, a_trans, &b, b_trans, m, k, n);
        let diff = max_diff(&got, &want);
        assert!(
            diff <= tol(k),
            "({m},{k},{n}) at={a_trans} bt={b_trans}: max diff {diff}"
        );
    }
}

#[test]
fn pinned_k0_is_epilogue_only() {
    let (m, n) = (3usize, 5usize);
    let a: Vec<f32> = vec![];
    let b: Vec<f32> = vec![];
    // plain: zero-fills
    let mut c = vec![7.0f32; m * n];
    gemm(&a, false, &b, false, &mut c, m, 0, n, None, false);
    assert!(c.iter().all(|&v| v == 0.0), "k=0 plain must zero-fill");
    // row_init: broadcasts the per-row seed
    let init = [1.0f32, 2.0, 3.0];
    let mut c = vec![7.0f32; m * n];
    gemm(&a, false, &b, false, &mut c, m, 0, n, Some(&init), false);
    for i in 0..m {
        assert!(c[i * n..(i + 1) * n].iter().all(|&v| v == init[i]));
    }
    // accumulate: leaves the existing contents alone
    let mut c = vec![7.0f32; m * n];
    gemm(&a, false, &b, false, &mut c, m, 0, n, None, true);
    assert!(
        c.iter().all(|&v| v == 7.0),
        "k=0 accumulate must not touch c"
    );
}

#[test]
fn pinned_empty_output_dims_are_noops() {
    // m = 0 and n = 0: nothing to write, nothing to read out of bounds
    let mut c: Vec<f32> = vec![];
    gemm(
        &buf(0, 1),
        false,
        &buf(12, 2),
        false,
        &mut c,
        0,
        3,
        4,
        None,
        false,
    );
    gemm(
        &buf(12, 3),
        false,
        &buf(0, 4),
        false,
        &mut c,
        4,
        3,
        0,
        None,
        false,
    );
}

#[test]
fn pinned_scalar_1x1x1() {
    check_all_variants(1, 1, 1, 10);
}

#[test]
fn pinned_smaller_than_microkernel_tile() {
    // the 4x8 microkernel must handle m < 4 and n < 8 remaindering
    check_all_variants(2, 7, 3, 11);
    check_all_variants(3, 5, 7, 12);
    check_all_variants(1, 16, 1, 13);
}

#[test]
fn pinned_exact_microkernel_tile() {
    check_all_variants(4, 8, 8, 14);
}

#[test]
fn pinned_remainder_rows_and_cols() {
    check_all_variants(5, 3, 9, 15);
    check_all_variants(7, 12, 10, 16);
}

#[test]
fn pinned_cache_block_remainders() {
    // one past MC = 64, KC = 256; one short of NC-aligned widths
    check_all_variants(65, 257, 63, 17);
}

#[test]
fn pinned_shapes_thread_invariant() {
    // bitwise equality between width 1 and the full pool on every pinned
    // shape (including those the parallel row-split refuses to take)
    for (i, &(m, k, n)) in [
        (2usize, 7usize, 3usize),
        (4, 8, 8),
        (5, 3, 9),
        (65, 257, 63),
    ]
    .iter()
    .enumerate()
    {
        let a = buf(m * k, 20 + i as u64);
        let b = buf(k * n, 40 + i as u64);
        let mut wide = vec![0.0f32; m * n];
        gemm(&a, false, &b, false, &mut wide, m, k, n, None, false);
        let mut narrow = vec![0.0f32; m * n];
        with_thread_cap(1, || {
            gemm(&a, false, &b, false, &mut narrow, m, k, n, None, false);
        });
        assert!(
            wide.iter()
                .zip(&narrow)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "({m},{k},{n}): thread width changed bits"
        );
    }
}
