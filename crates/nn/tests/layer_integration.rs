//! Cross-layer integration tests: a small MLP learns a non-linear task
//! end-to-end, batch norm behaves consistently between modes, and
//! checkpointing survives architectural reuse.

use nb_nn::layers::{ActKind, Activation, BatchNorm2d, Conv2d, Linear};
use nb_nn::{copy_params, Module, Sequential, Session, StateDict};
use nb_tensor::{ConvGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// XOR: the canonical task a linear model cannot solve.
#[test]
fn mlp_learns_xor() {
    let mut rng = StdRng::seed_from_u64(7);
    let mlp = Sequential::new()
        .push(Linear::new(2, 8, true, &mut rng))
        .push(Activation::new(ActKind::Relu))
        .push(Linear::new(8, 2, true, &mut rng));
    let inputs = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], [4, 2]).unwrap();
    let labels = [0usize, 1, 1, 0];
    let params = mlp.parameters();
    for step in 0..400 {
        let mut s = Session::new(true);
        let x = s.input(inputs.clone());
        let logits = mlp.forward(&mut s, x);
        let loss = s.graph.softmax_cross_entropy(logits, &labels, 0.0);
        s.backward(loss);
        let lr = 0.5 * (1.0 - step as f32 / 400.0);
        for p in &params {
            p.update(|v, g| v.add_scaled_assign(g, -lr));
            p.zero_grad();
        }
    }
    let mut s = Session::new(false);
    let x = s.input(inputs);
    let logits = mlp.forward(&mut s, x);
    let preds = s.value(logits).argmax_last();
    assert_eq!(preds, labels.to_vec(), "XOR solved");
}

/// After long training-mode exposure to a fixed distribution, eval-mode BN
/// output converges to train-mode output.
#[test]
fn bn_modes_converge_on_stationary_distribution() {
    let bn = BatchNorm2d::new(3);
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn([16, 3, 4, 4], &mut rng)
        .scale(2.0)
        .add_scalar(1.0);
    // run many train-mode passes on the same batch so running stats lock on
    let mut train_out = Tensor::zeros([16, 3, 4, 4]);
    for _ in 0..200 {
        let mut s = Session::new(true);
        let xin = s.input(x.clone());
        let y = bn.forward(&mut s, xin);
        train_out = s.value(y).clone();
    }
    let mut s = Session::new(false);
    let xin = s.input(x.clone());
    let y = bn.forward(&mut s, xin);
    assert!(
        s.value(y).allclose(&train_out, 0.05),
        "modes differ by {}",
        s.value(y).max_abs_diff(&train_out)
    );
}

/// The update_bn_stats flag freezes running statistics.
#[test]
fn bn_stats_freeze_flag() {
    let bn = BatchNorm2d::new(2);
    let before_mean = bn.running_mean();
    let mut rng = StdRng::seed_from_u64(2);
    let mut s = Session::new(true);
    s.update_bn_stats = false;
    let xin = s.input(Tensor::randn([8, 2, 3, 3], &mut rng).add_scalar(5.0));
    let _ = bn.forward(&mut s, xin);
    assert_eq!(bn.running_mean(), before_mean, "stats untouched");
    // and with the flag on they move
    let mut s = Session::new(true);
    let xin = s.input(Tensor::randn([8, 2, 3, 3], &mut rng).add_scalar(5.0));
    let _ = bn.forward(&mut s, xin);
    assert!(bn.running_mean().max_abs_diff(&before_mean) > 0.1);
}

/// conv -> bn -> act -> conv pipeline: checkpoint restores exact eval
/// behaviour including running statistics.
#[test]
fn conv_stack_checkpoint_roundtrip() {
    let mut rng = StdRng::seed_from_u64(3);
    let build = |rng: &mut StdRng| {
        Sequential::new()
            .push(Conv2d::new(3, 6, ConvGeometry::same(3, 2), false, rng))
            .push(BatchNorm2d::new(6))
            .push(Activation::new(ActKind::Relu6))
            .push(Conv2d::new(6, 4, ConvGeometry::pointwise(), true, rng))
    };
    let a = build(&mut rng);
    // push some batches through train mode so BN stats are non-trivial
    for i in 0..5 {
        let mut s = Session::new(true);
        let x = s.input(Tensor::randn([4, 3, 8, 8], &mut StdRng::seed_from_u64(i)));
        let _ = a.forward(&mut s, x);
    }
    let b = build(&mut rng);
    copy_params(&a, &b).unwrap();
    let probe = Tensor::randn([2, 3, 8, 8], &mut rng);
    let run = |m: &Sequential| {
        let mut s = Session::new(false);
        let x = s.input(probe.clone());
        let y = m.forward(&mut s, x);
        s.value(y).clone()
    };
    assert!(run(&a).allclose(&run(&b), 1e-6));
    // serialized form matches too
    let mut buf = Vec::new();
    StateDict::from_module(&a).write_to(&mut buf).unwrap();
    let back = StateDict::read_from(&mut buf.as_slice()).unwrap();
    let c = build(&mut rng);
    back.load_into(&c).unwrap();
    assert!(run(&a).allclose(&run(&c), 1e-6));
}

/// Gradient accumulation across two sessions equals one doubled batch.
#[test]
fn gradient_accumulation_linearity() {
    let mut rng = StdRng::seed_from_u64(4);
    let lin = Linear::new(4, 3, true, &mut rng);
    let xa = Tensor::randn([2, 4], &mut rng);
    let xb = Tensor::randn([2, 4], &mut rng);
    let run = |x: &Tensor, labels: &[usize]| {
        let mut s = Session::new(true);
        let xin = s.input(x.clone());
        let y = lin.forward(&mut s, xin);
        let loss = s.graph.softmax_cross_entropy(y, labels, 0.0);
        s.backward(loss);
    };
    // two separate sessions accumulate
    run(&xa, &[0, 1]);
    run(&xb, &[2, 0]);
    let accumulated = lin.weight().grad();
    lin.weight().zero_grad();
    lin.bias().unwrap().zero_grad();
    // equivalent single session with both batches averaged
    let both = Tensor::stack0(&[xa, xb]).into_reshape([4, 4]);
    let mut s = Session::new(true);
    let xin = s.input(both);
    let y = lin.forward(&mut s, xin);
    let loss = s.graph.softmax_cross_entropy(y, &[0, 1, 2, 0], 0.0);
    let loss = s.graph.scale(loss, 2.0); // two accumulations of mean-losses
    s.backward(loss);
    assert!(lin.weight().grad().allclose(&accumulated, 1e-4));
}
