//! Property-based tests for plan-time batch-norm folding: over random
//! channel counts, eps values, and affine/non-affine configurations, a
//! `CompiledPlan` that folds an eval-mode batch norm into its preceding
//! conv/depthwise must match the unfused conv-then-bn path within a
//! reduction-scaled tolerance (folding reassociates the per-channel scale,
//! so bitwise equality is not expected — that regime is covered by the
//! fold-off plan tests in `nb_nn::plan`).

use nb_nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d};
use nb_nn::{CompiledPlan, Forward, InferCtx, Module, Sequential};
use nb_tensor::{ConvGeometry, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn infer_forward(model: &Sequential, x: &Tensor) -> Tensor {
    let mut ctx = InferCtx::new();
    let xv = ctx.input(x.clone());
    let yv = model.forward(&mut ctx, xv);
    ctx.take(yv)
}

/// `1e-4 * sqrt(k)`: the repo's standard allclose bound for a length-`k`
/// reduction perturbed by one rounding per term.
fn tol(k: usize) -> f32 {
    1e-4 * (k as f32).sqrt().max(1.0)
}

fn random_bn(c: usize, eps: f32, affine: bool, seed: u64) -> BatchNorm2d {
    let mut rng = StdRng::seed_from_u64(seed);
    let bn = BatchNorm2d::new(c).with_eps(eps);
    bn.set_running_stats(
        Tensor::randn([c], &mut rng),
        Tensor::randn([c], &mut rng).map(|v| v.abs() + 0.05),
    );
    if affine {
        bn.gamma()
            .set_value(Tensor::rand_uniform([c], 0.2, 2.0, &mut rng));
        bn.beta().set_value(Tensor::randn([c], &mut rng));
    }
    bn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense conv + bn: the folded plan matches the unfused InferCtx path.
    #[test]
    fn folded_dense_conv_bn_matches_unfused(
        in_c in 1usize..6,
        out_c in 1usize..17,
        kernel in prop::sample::select(vec![1usize, 3]),
        conv_bias in any::<bool>(),
        affine in any::<bool>(),
        eps in prop::sample::select(vec![1e-7f32, 1e-5, 1e-3, 1e-1]),
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::new(in_c, out_c, ConvGeometry::same(kernel, 1), conv_bias, &mut rng);
        let model = Sequential::new()
            .push(conv)
            .push(random_bn(out_c, eps, affine, seed ^ 0x9e37));
        let x = Tensor::randn([2, in_c, 7, 7], &mut rng);
        let want = infer_forward(&model, &x);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let got = plan.run(&x);
        let k = in_c * kernel * kernel;
        prop_assert!(
            got.allclose(&want, tol(k)),
            "dense fold diverged: in_c={in_c} out_c={out_c} k={kernel} bias={conv_bias} affine={affine} eps={eps}"
        );
    }

    /// Depthwise conv + bn: the folded plan matches the unfused path.
    #[test]
    fn folded_depthwise_conv_bn_matches_unfused(
        channels in 1usize..13,
        dw_bias in any::<bool>(),
        affine in any::<bool>(),
        eps in prop::sample::select(vec![1e-7f32, 1e-5, 1e-3, 1e-1]),
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dw = DepthwiseConv2d::new(channels, ConvGeometry::same(3, 1), dw_bias, &mut rng);
        let model = Sequential::new()
            .push(dw)
            .push(random_bn(channels, eps, affine, seed ^ 0x7f4a));
        let x = Tensor::randn([2, channels, 7, 7], &mut rng);
        let want = infer_forward(&model, &x);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let got = plan.run(&x);
        prop_assert!(
            got.allclose(&want, tol(9)),
            "depthwise fold diverged: c={channels} bias={dw_bias} affine={affine} eps={eps}"
        );
    }
}
