//! Weight initialization schemes.

use nb_tensor::{Shape, Tensor};
use rand::Rng;

/// Kaiming (He) normal initialization for a conv weight
/// `[c_out, c_in, kh, kw]` or linear weight `[out, in]`: zero-mean Gaussian
/// with `std = sqrt(2 / fan_in)`.
///
/// # Panics
///
/// Panics if the shape has rank < 2.
pub fn kaiming_normal(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let std = (2.0 / fan_in(&shape) as f32).sqrt();
    Tensor::randn(shape, rng).scale(std)
}

/// Kaiming uniform initialization: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if the shape has rank < 2.
pub fn kaiming_uniform(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let bound = (6.0 / fan_in(&shape) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if the shape has rank < 2.
pub fn xavier_uniform(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let bound = (6.0 / (fan_in(&shape) + fan_out(&shape)) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Fan-in of a weight shape: `c_in * receptive field` for convs, `in` for
/// linear weights, `receptive field` for depthwise `[c, kh, kw]` weights.
pub fn fan_in(shape: &Shape) -> usize {
    match shape.rank() {
        2 => shape.dim(1),
        3 => shape.dim(1) * shape.dim(2),
        4 => shape.dim(1) * shape.dim(2) * shape.dim(3),
        r => panic!("fan_in undefined for rank-{r} weight {shape}"),
    }
}

/// Fan-out of a weight shape.
pub fn fan_out(shape: &Shape) -> usize {
    match shape.rank() {
        2 => shape.dim(0),
        3 => shape.dim(0) * shape.dim(2), // depthwise: per-channel kernels
        4 => shape.dim(0) * shape.dim(2) * shape.dim(3),
        r => panic!("fan_out undefined for rank-{r} weight {shape}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fans() {
        assert_eq!(fan_in(&Shape::new(vec![8, 4, 3, 3])), 36);
        assert_eq!(fan_out(&Shape::new(vec![8, 4, 3, 3])), 72);
        assert_eq!(fan_in(&Shape::new(vec![10, 20])), 20);
        assert_eq!(fan_in(&Shape::new(vec![16, 3, 3])), 9);
    }

    #[test]
    fn kaiming_normal_std() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = kaiming_normal([64, 32, 3, 3], &mut rng);
        let want_std = (2.0f32 / 288.0).sqrt();
        let std = (w.map(|x| x * x).mean() - w.mean() * w.mean()).sqrt();
        assert!(
            (std - want_std).abs() / want_std < 0.1,
            "std {std} vs {want_std}"
        );
    }

    #[test]
    fn uniform_inits_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_uniform([16, 16], &mut rng);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(w.max_value() <= bound && w.min_value() >= -bound);
        let w = xavier_uniform([16, 16], &mut rng);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(w.max_value() <= bound && w.min_value() >= -bound);
    }
}
