//! The [`Module`] trait and the per-step [`Session`] that bridges parameters
//! and the autograd tape.

use crate::layers::BnUpdate;
use crate::Parameter;
use nb_autograd::{Graph, Value};
use nb_tensor::Tensor;
use std::collections::HashMap;

/// One deferred batch-norm statistics update, captured while a session
/// runs with [`Session::record_bn_updates`] enabled: the layer's
/// running-stat parameters (as seen by *this* session's model replica)
/// plus the update itself. The data-parallel trainer maps the parameters
/// to canonical indices and replays the updates onto the master model in
/// slice order.
pub struct BnRecord {
    /// The replica's running-mean parameter.
    pub mean: Parameter,
    /// The replica's running-variance parameter.
    pub var: Parameter,
    /// The captured batch statistics and momentum.
    pub update: BnUpdate,
}

/// One training (or evaluation) step's worth of state: an autograd tape plus
/// the set of parameters bound into it.
///
/// Binding the same [`Parameter`] twice returns the same tape leaf, so
/// weight sharing (as in NetAug's sub-network forward) costs nothing and
/// gradients from every use accumulate correctly.
pub struct Session {
    /// The underlying autograd tape.
    pub graph: Graph,
    /// Whether layers should run in training mode (batch statistics, etc.).
    pub training: bool,
    /// Whether training-mode batch norms may update their running
    /// statistics. NetAug's auxiliary full-width forward disables this so
    /// the deployed sub-network's statistics are not polluted.
    pub update_bn_stats: bool,
    bound: HashMap<usize, Value>,
    bindings: Vec<(Parameter, Value)>,
    /// `Some` while batch-norm statistics updates are being recorded for
    /// deferred replay instead of applied inline.
    bn_records: Option<Vec<BnRecord>>,
}

impl Session {
    /// A fresh session in the given mode.
    pub fn new(training: bool) -> Self {
        Session {
            graph: Graph::new(),
            training,
            update_bn_stats: true,
            bound: HashMap::new(),
            bindings: Vec::new(),
            bn_records: None,
        }
    }

    /// Switches the session to *recording* batch-norm statistics updates:
    /// training-mode batch norms capture their `(batch mean, batch var,
    /// momentum)` instead of folding them into the running statistics
    /// inline. The data-parallel trainer enables this on shard sessions so
    /// the EMA chain can be replayed onto the master model in slice order.
    pub fn record_bn_updates(&mut self) {
        self.bn_records = Some(Vec::new());
    }

    /// Drains the recorded batch-norm updates, in forward-encounter order.
    pub fn take_bn_records(&mut self) -> Vec<BnRecord> {
        self.bn_records.take().unwrap_or_default()
    }

    /// Applies an update inline, or records it when recording is enabled.
    /// Called by the training-mode batch-norm forward (both full-width and
    /// sliced); routing both modes through [`BnUpdate::apply`] keeps the
    /// running-statistics bits identical across trainers.
    pub(crate) fn apply_or_record_bn(
        &mut self,
        mean: &Parameter,
        var: &Parameter,
        update: BnUpdate,
    ) {
        match &mut self.bn_records {
            Some(records) => records.push(BnRecord {
                mean: mean.clone(),
                var: var.clone(),
                update,
            }),
            None => update.apply(mean, var),
        }
    }

    /// Inserts an input tensor (no gradient).
    pub fn input(&mut self, t: Tensor) -> Value {
        self.graph.constant(t)
    }

    /// Binds a parameter into the tape, returning its leaf. Idempotent per
    /// parameter per session. Frozen parameters (see
    /// [`Parameter::set_trainable`]) bind as constants.
    ///
    /// Binding is clone-free: the tape leaf COW-shares the parameter's
    /// storage, and a parameter update after binding copies on write, so
    /// mid-session mutation is never observable through the tape.
    pub fn bind(&mut self, p: &Parameter) -> Value {
        if let Some(&v) = self.bound.get(&p.key()) {
            return v;
        }
        let trainable = p.trainable();
        let v = self.graph.leaf(p.value(), trainable);
        self.bound.insert(p.key(), v);
        if trainable {
            self.bindings.push((p.clone(), v));
        }
        v
    }

    /// Runs the backward pass from `loss` and accumulates the resulting
    /// gradients into every bound parameter.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar.
    pub fn backward(&mut self, loss: Value) {
        self.graph.backward(loss);
        for (p, v) in &self.bindings {
            if let Some(g) = self.graph.take_grad(*v) {
                p.add_grad(&g);
            }
        }
    }

    /// The forward value of a node (convenience passthrough).
    pub fn value(&self, v: Value) -> &Tensor {
        self.graph.value(v)
    }
}

/// A neural-network building block: a differentiable function of one tensor
/// plus a set of named parameters.
pub trait Module {
    /// Runs the layer's forward computation on an executor: recorded on the
    /// tape when `f` is a [`Session`], executed eagerly and grad-free when
    /// it is an [`InferCtx`](crate::InferCtx).
    fn forward(&self, f: &mut dyn crate::Forward, x: Value) -> Value;

    /// Visits every parameter with its hierarchical name
    /// (`prefix` + `.local_name`).
    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Parameter));

    /// All parameters, in visit order.
    fn parameters(&self) -> Vec<Parameter>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.visit_params("", &mut |_, p| out.push(p.clone()));
        out
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize
    where
        Self: Sized,
    {
        let mut n = 0;
        self.visit_params("", &mut |_, p| n += p.numel());
        n
    }
}

/// Joins a prefix and a local parameter name with a dot (no leading dot when
/// the prefix is empty).
pub fn join_name(prefix: &str, local: &str) -> String {
    if prefix.is_empty() {
        local.to_string()
    } else {
        format!("{prefix}.{local}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_is_idempotent() {
        let mut s = Session::new(true);
        let p = Parameter::new(Tensor::ones([2]));
        let a = s.bind(&p);
        let b = s.bind(&p);
        assert_eq!(a, b);
        assert_eq!(s.graph.len(), 1);
    }

    #[test]
    fn backward_populates_parameter_grads() {
        let mut s = Session::new(true);
        let p = Parameter::new(Tensor::from_vec(vec![2.0, 3.0], [2]).unwrap());
        let v = s.bind(&p);
        let sq = s.graph.mul(v, v);
        let loss = s.graph.mean_all(sq);
        s.backward(loss);
        // d mean(x^2) /dx = 2x/2 = x
        assert!(p
            .grad()
            .allclose(&Tensor::from_vec(vec![2.0, 3.0], [2]).unwrap(), 1e-6));
    }

    #[test]
    fn shared_binding_accumulates_both_uses() {
        let mut s = Session::new(true);
        let p = Parameter::new(Tensor::from_vec(vec![1.0], [1]).unwrap());
        let v = s.bind(&p);
        let v2 = s.bind(&p); // same leaf
        let y = s.graph.add(v, v2); // y = 2x
        let loss = s.graph.mean_all(y);
        s.backward(loss);
        assert_eq!(p.grad().item(), 2.0);
    }

    #[test]
    fn bind_is_clone_free_and_isolated_from_mutation() {
        let mut s = Session::new(true);
        let p = Parameter::new(Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap());
        let v = s.bind(&p);
        // clone-free: parameter and tape leaf share one buffer
        assert_eq!(
            p.value().as_slice().as_ptr(),
            s.value(v).as_slice().as_ptr(),
            "bind deep-copied the parameter"
        );
        // mid-session mutation copies on write and is invisible to the tape
        p.update(|val, _| val.as_mut_slice()[0] = 99.0);
        assert_eq!(p.value().as_slice(), &[99.0, 2.0]);
        assert_eq!(s.value(v).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn join_name_formats() {
        assert_eq!(join_name("", "weight"), "weight");
        assert_eq!(join_name("block1.conv", "bias"), "block1.conv.bias");
    }
}
