//! [`InferCtx`]: the grad-free, allocation-recycling inference executor.
//!
//! Where [`Session`](crate::Session) records every op on an autograd tape
//! and keeps all intermediates alive for the backward pass, `InferCtx`
//! executes layer math eagerly: no `Graph` node is allocated, parameters
//! are borrowed (COW) rather than bound, batch norm always uses running
//! statistics, and an activation's buffer is recycled the moment its last
//! consumer has run. Freed buffers land in a thread-local scratch pool, so
//! a steady-state evaluation loop ping-pongs between a handful of
//! high-water-mark buffers instead of allocating per layer.
//!
//! Numerics are bitwise-identical to an eval-mode `Session` forward at the
//! same thread-pool width: both paths run the same convolution/GEMM kernels
//! and the same [`nb_tensor::eltwise`] pointwise kernels. Convolutions
//! execute as implicit GEMMs (the input is read through a virtual im2col
//! view, never materialized), with each GEMM's schedule chosen by the
//! shape-keyed selector in `nb_tensor::selector`.

use crate::forward::Forward;
use crate::layers::BatchNorm2d;
use crate::Parameter;
use nb_autograd::Value;
use nb_tensor::{
    avgpool2d, conv2d_into, depthwise_conv2d_into, eltwise, global_avg_pool, maxpool2d,
    ConvGeometry, Tensor,
};
use std::cell::RefCell;

thread_local! {
    /// Freed activation buffers, kept per thread across `InferCtx`
    /// instances so repeated evaluations reuse the same storage.
    static SCRATCH: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Upper bound on pooled scratch buffers per thread; beyond it the smallest
/// buffer is dropped.
const SCRATCH_KEEP: usize = 8;

struct Slot {
    t: Option<Tensor>,
    /// Remaining consumers. Ops decrement; the buffer is released (and
    /// recycled) when it reaches zero.
    rc: u32,
}

/// Grad-free eager executor implementing [`Forward`].
///
/// Build one per evaluation batch; see the module docs for semantics. The
/// peak of live activation bytes is tracked and exposed via
/// [`peak_bytes`](InferCtx::peak_bytes) for memory benchmarking.
#[derive(Default)]
pub struct InferCtx {
    slots: Vec<Slot>,
    live_bytes: usize,
    peak_bytes: usize,
}

impl InferCtx {
    /// A fresh inference context.
    pub fn new() -> Self {
        InferCtx::default()
    }

    /// High-water mark of simultaneously live activation bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Bytes of activations currently live.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    fn alloc(&self, len: usize) -> Vec<f32> {
        let mut v = SCRATCH.with(|s| {
            let mut pool = s.borrow_mut();
            let mut best: Option<usize> = None;
            for (i, b) in pool.iter().enumerate() {
                if b.capacity() >= len
                    && best.is_none_or(|j: usize| pool[j].capacity() > b.capacity())
                {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => pool.swap_remove(i),
                // no buffer is big enough: grow the largest instead of
                // leaving it stranded below the new high-water mark
                None => pool.pop().unwrap_or_default(),
            }
        });
        v.clear();
        v.resize(len, 0.0);
        v
    }

    fn recycle(&self, t: Tensor) {
        if t.is_shared() {
            return; // storage still referenced elsewhere (retained/COW)
        }
        SCRATCH.with(|s| {
            let mut pool = s.borrow_mut();
            pool.push(t.into_vec());
            if pool.len() > SCRATCH_KEEP {
                let smallest = (0..pool.len())
                    .min_by_key(|&i| pool[i].capacity())
                    .expect("non-empty pool");
                pool.swap_remove(smallest);
            }
        });
    }

    fn store(&mut self, t: Tensor) -> Value {
        self.live_bytes += t.numel() * std::mem::size_of::<f32>();
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.slots.push(Slot { t: Some(t), rc: 1 });
        Value::from_index(self.slots.len() - 1)
    }

    /// Uses up one reference to `v`, returning its tensor. The slot's
    /// buffer is released at the final use; earlier uses get a COW share.
    fn consume(&mut self, v: Value) -> Tensor {
        let slot = &mut self.slots[v.index()];
        let t = slot.t.as_ref().expect("value already consumed");
        assert!(slot.rc > 0, "value already consumed");
        slot.rc -= 1;
        if slot.rc == 0 {
            let t = slot.t.take().expect("live slot");
            self.live_bytes -= t.numel() * std::mem::size_of::<f32>();
            t
        } else {
            t.clone()
        }
    }

    /// Consumes one reference to `v` and recycles its buffer. Called after
    /// the op output is stored, so `peak_bytes` sees input and output
    /// coexist (as the buffers really do during the op).
    fn release(&mut self, v: Value) {
        let t = self.consume(v);
        self.recycle(t);
    }
}

impl Forward for InferCtx {
    fn training(&self) -> bool {
        false
    }

    fn input(&mut self, t: Tensor) -> Value {
        self.store(t)
    }

    fn value(&self, v: Value) -> &Tensor {
        self.slots[v.index()]
            .t
            .as_ref()
            .expect("value already consumed")
    }

    fn take(&mut self, v: Value) -> Tensor {
        let slot = &mut self.slots[v.index()];
        let t = slot.t.take().expect("value already consumed");
        slot.rc = 0;
        self.live_bytes -= t.numel() * std::mem::size_of::<f32>();
        t
    }

    fn retain(&mut self, v: Value) {
        let slot = &mut self.slots[v.index()];
        assert!(slot.t.is_some(), "cannot retain a consumed value");
        slot.rc += 1;
    }

    fn conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value();
        let bt = b.map(|p| p.value());
        let (n, _, h, wd) = self.value(x).shape().nchw();
        let c_out = wt.dims()[0];
        let (ho, wo) = geom.output_hw(h, wd);
        let mut out = self.alloc(n * c_out * ho * wo);
        conv2d_into(self.value(x), &wt, bt.as_ref(), geom, &mut out);
        let t = Tensor::from_vec(out, [n, c_out, ho, wo]).expect("conv output shape");
        let v = self.store(t);
        self.release(x);
        v
    }

    fn conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        out_c: usize,
        in_c: usize,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value().narrow_out_in((0, out_c), (0, in_c));
        let (n, _, h, wd) = self.value(x).shape().nchw();
        let (ho, wo) = geom.output_hw(h, wd);
        let mut out = self.alloc(n * out_c * ho * wo);
        conv2d_into(self.value(x), &wt, None, geom, &mut out);
        let t = Tensor::from_vec(out, [n, out_c, ho, wo]).expect("conv output shape");
        let v = self.store(t);
        self.release(x);
        v
    }

    fn depthwise_conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value();
        let bt = b.map(|p| p.value());
        let (n, c, h, wd) = self.value(x).shape().nchw();
        let (ho, wo) = geom.output_hw(h, wd);
        let mut out = self.alloc(n * c * ho * wo);
        depthwise_conv2d_into(self.value(x), &wt, bt.as_ref(), geom, &mut out);
        let t = Tensor::from_vec(out, [n, c, ho, wo]).expect("conv output shape");
        let v = self.store(t);
        self.release(x);
        v
    }

    fn depthwise_conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        channels: usize,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value().narrow0(0, channels);
        let (n, c, h, wd) = self.value(x).shape().nchw();
        debug_assert_eq!(c, channels, "sliced depthwise input channels");
        let (ho, wo) = geom.output_hw(h, wd);
        let mut out = self.alloc(n * channels * ho * wo);
        depthwise_conv2d_into(self.value(x), &wt, None, geom, &mut out);
        let t = Tensor::from_vec(out, [n, channels, ho, wo]).expect("conv output shape");
        let v = self.store(t);
        self.release(x);
        v
    }

    fn linear(&mut self, x: Value, w: &Parameter, b: Option<&Parameter>) -> Value {
        let wt = w.value();
        let mut y = self.value(x).matmul_nt(&wt);
        if let Some(b) = b {
            eltwise::add_bias2_inplace(&mut y, &b.value());
        }
        let v = self.store(y);
        self.release(x);
        v
    }

    fn linear_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        in_features: usize,
    ) -> Value {
        let wv = w.value();
        let (out_f, big_in) = wv.shape().rc();
        let mut wk = Tensor::zeros([out_f, in_features]);
        {
            let dst = wk.as_mut_slice();
            let src = wv.as_slice();
            for r in 0..out_f {
                dst[r * in_features..(r + 1) * in_features]
                    .copy_from_slice(&src[r * big_in..r * big_in + in_features]);
            }
        }
        let mut y = self.value(x).matmul_nt(&wk);
        if let Some(b) = b {
            eltwise::add_bias2_inplace(&mut y, &b.value());
        }
        let v = self.store(y);
        self.release(x);
        v
    }

    fn batch_norm(&mut self, x: Value, bn: &BatchNorm2d) -> Value {
        let mut xt = self.consume(x);
        let invstd = eltwise::bn_invstd(&bn.running_var(), bn.eps());
        eltwise::bn_apply_inplace(
            &mut xt,
            &bn.gamma().value(),
            &bn.beta().value(),
            &bn.running_mean(),
            &invstd,
        );
        self.store(xt)
    }

    fn batch_norm_sliced(&mut self, x: Value, bn: &BatchNorm2d, channels: usize) -> Value {
        let k = channels;
        let mut xt = self.consume(x);
        let invstd = eltwise::bn_invstd(&bn.running_var().narrow0(0, k), bn.eps());
        eltwise::bn_apply_inplace(
            &mut xt,
            &bn.gamma().value().narrow0(0, k),
            &bn.beta().value().narrow0(0, k),
            &bn.running_mean().narrow0(0, k),
            &invstd,
        );
        self.store(xt)
    }

    fn relu_decay(&mut self, x: Value, alpha: f32) -> Value {
        let mut xt = self.consume(x);
        eltwise::relu_decay_inplace(&mut xt, alpha);
        self.store(xt)
    }

    fn relu6_decay(&mut self, x: Value, alpha: f32) -> Value {
        let mut xt = self.consume(x);
        eltwise::relu6_decay_inplace(&mut xt, alpha);
        self.store(xt)
    }

    fn max_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        let (out, _idx) = maxpool2d(self.value(x), geom);
        let v = self.store(out);
        self.release(x);
        v
    }

    fn avg_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        let out = avgpool2d(self.value(x), geom);
        let v = self.store(out);
        self.release(x);
        v
    }

    fn global_avg_pool(&mut self, x: Value) -> Value {
        let out = global_avg_pool(self.value(x));
        let v = self.store(out);
        self.release(x);
        v
    }

    fn add(&mut self, a: Value, b: Value) -> Value {
        let mut at = self.consume(a);
        at.add_assign(self.value(b));
        let v = self.store(at);
        self.release(b);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{ActKind, Activation, Linear};
    use crate::{Module, Sequential, Session};
    use nb_autograd::nodes_allocated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(rng: &mut StdRng) -> Sequential {
        Sequential::new()
            .push(Linear::new(6, 12, true, rng))
            .push(Activation::new(ActKind::Relu))
            .push(Linear::new(12, 4, true, rng))
    }

    #[test]
    fn matches_taped_eval_bitwise_with_zero_nodes() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = mlp(&mut rng);
        let x = Tensor::randn([3, 6], &mut rng);

        let mut s = Session::new(false);
        let xs = s.input(x.clone());
        let ys = model.forward(&mut s, xs);
        let want = s.value(ys).clone();

        let before = nodes_allocated();
        let mut ctx = InferCtx::new();
        let xi = ctx.input(x);
        let yi = model.forward(&mut ctx, xi);
        let got = ctx.take(yi);
        assert_eq!(nodes_allocated(), before, "InferCtx allocated tape nodes");
        assert_eq!(got.as_slice(), want.as_slice(), "bitwise parity");
    }

    #[test]
    fn retain_keeps_residual_branch_alive() {
        let mut ctx = InferCtx::new();
        let x = ctx.input(Tensor::from_vec(vec![-1.0, 2.0], [2]).unwrap());
        ctx.retain(x);
        let y = ctx.relu_decay(x, 0.0);
        let z = ctx.add(y, x);
        assert_eq!(ctx.take(z).as_slice(), &[-1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn double_consume_panics() {
        let mut ctx = InferCtx::new();
        let x = ctx.input(Tensor::ones([2]));
        let _ = ctx.relu_decay(x, 0.0);
        let _ = ctx.relu_decay(x, 0.0);
    }

    #[test]
    fn peak_bytes_tracks_high_water_mark() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = mlp(&mut rng);
        let x = Tensor::randn([2, 6], &mut rng);
        let mut ctx = InferCtx::new();
        let xi = ctx.input(x.clone());
        let yi = model.forward(&mut ctx, xi);
        let _ = ctx.take(yi);
        // peak: at least input [2,6] + widest activation [2,12] live at once
        assert!(ctx.peak_bytes() >= (2 * 6 + 2 * 12) * 4);
        assert_eq!(ctx.live_bytes(), 0, "everything consumed or taken");
        // a second run reuses the scratch pool and sees the same peak
        let mut ctx2 = InferCtx::new();
        let xi = ctx2.input(x);
        let yi = model.forward(&mut ctx2, xi);
        let _ = ctx2.take(yi);
        assert_eq!(ctx2.peak_bytes(), ctx.peak_bytes());
    }
}
