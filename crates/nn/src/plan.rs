//! [`CompiledPlan`]: the ahead-of-time compiled serving executor.
//!
//! [`InferCtx`](crate::InferCtx) already skips the tape, but it still pays
//! per-call costs a frozen deployment graph shouldn't: every forward
//! re-packs GEMM weight panels, runs eval-mode batch norm as a separate
//! elementwise pass, and grows thread-local scratch on demand. A
//! `CompiledPlan` moves all of that to a one-time compile step:
//!
//! 1. **Record** — the module's `forward` runs once against a shape-only
//!    recorder (zero tensors, no kernels, no tape nodes), capturing the op
//!    sequence, activation shapes at a probe batch, and parameter snapshots
//!    (sliced exactly as `InferCtx` would slice them).
//! 2. **Rewrite** — eval-mode batch norms fold into their preceding
//!    conv/depthwise weights ([`crate::fold`]); identity activations
//!    (decay slope `alpha >= 1`, the PLT endpoint) are elided; remaining
//!    ReLU/ReLU6 fuse into the producing kernel's epilogue
//!    ([`nb_tensor::Epilogue`]).
//! 3. **Prepack** — every GEMM-backed weight is packed once into panel
//!    format ([`nb_tensor::PackedA`]/[`nb_tensor::PackedB`]) and reused
//!    across calls. Conv replay then runs as a fully implicit GEMM: the
//!    prepacked weight multiplies the input through a virtual im2col view,
//!    so neither GEMM operand touches a scratch matrix at serve time. The
//!    shape-keyed selector (`nb_tensor::selector`) picks each GEMM's
//!    schedule, honoring the `NB_AUTOTUNE` cache when enabled.
//! 4. **Arena** — activation buffers are assigned at compile time by a
//!    best-fit liveness pass over per-sample sizes, so steady-state runs
//!    perform no activation allocation and [`peak_bytes`] is a deterministic
//!    function of the graph and batch size, not of runtime history.
//!
//! With folding disabled ([`PlanOptions`]) the plan is **bitwise identical**
//! to `InferCtx` at every thread width: prepacked panels are byte-identical
//! to on-demand packing, fused epilogues delegate to the same
//! [`nb_tensor::eltwise`] expressions, and unfused batch norm uses the same
//! `bn_invstd`/`bn_apply_inplace` kernels. Folding reassociates the
//! per-channel scale into the convolution's multiply-accumulate chain, so a
//! folded plan is exact in infinite precision and ULP-bounded in f32 (the
//! parity suite in `nb-verify` checks both regimes).
//!
//! A compiled plan is **immutable after compile** (`Send + Sync`): every
//! replay borrows the plan shared (`&self`) and keeps its mutable state —
//! activation values, arena buffers, batch size, replay cursor — in a
//! caller-owned [`PlanArena`]. That is what lets a multi-tenant server wrap
//! one plan in an `Arc` and replay it concurrently from many worker
//! threads, each with its own arena. [`CompiledPlan::run`] is the one-shot
//! entry point (fresh arena per call); steady-state loops should hold a
//! [`PlanArena`] from [`CompiledPlan::new_arena`] and call
//! [`CompiledPlan::run_in`] so no activation allocation happens per batch.
//!
//! A plan replays only the module it was compiled from: the [`Forward`]
//! implementation ([`PlanReplay`], from [`CompiledPlan::replayer`]) walks
//! the recorded op sequence with a cursor and debug-asserts each call
//! against the recorded kind. Use [`CompiledPlan::run`] for the common
//! whole-model case.
//!
//! [`peak_bytes`]: CompiledPlan::peak_bytes

use crate::fold::{fold_bn, fold_bn_depthwise};
use crate::forward::Forward;
use crate::layers::BatchNorm2d;
use crate::Parameter;
use nb_autograd::Value;
use nb_tensor::{
    activation_scale, avgpool2d, conv2d_packed_into, conv2d_pointwise_mat_into,
    depthwise_conv2d_fused_into, dw_channel_rows, eltwise, global_avg_pool, max_abs, maxpool2d,
    qdepthwise_conv2d_into, qdw_channel_rows_requant, qgemm_conv, qgemm_conv_mat,
    qgemm_conv_mat_requant, qgemm_linear, quantize_activations, ConvGeometry, Epilogue, PackedA,
    PackedB, QDepthwiseW, QIm2colRef, QPackedW, Tensor,
};

/// Number of calibration batches [`CompiledPlan::compile_quantized`] callers
/// should draw, from `NB_QUANT_CALIB` (default 4). The plan itself accepts
/// whatever slice it is given; this helper just centralizes the knob so
/// verify, bench, and ci read the same value.
pub fn quant_calib_batches() -> usize {
    std::env::var("NB_QUANT_CALIB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// Which eligible layers [`CompiledPlan::compile_quantized`] lowers to int8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuantPolicy {
    /// Mixed precision by shape (the default): a layer quantizes only when
    /// the int8 kernel is expected to beat f32 *including* the activation
    /// quantize pass it requires. Depthwise always quantizes; dense convs
    /// and linears need enough rows and reduction depth to amortize the
    /// quantize; inverted-residual chains decide as one unit (so the
    /// fusion pass never splits a chain over precision) keyed on their
    /// input depth and output plane. See `quant_policy` for the exact
    /// thresholds and DESIGN.md §5j for the measurements behind them.
    #[default]
    Auto,
    /// Quantize every eligible layer regardless of shape — what the
    /// verify suites use so the int8 kernels are exercised on small probe
    /// models whose layers would all stay f32 under `Auto`.
    All,
}

/// Compile-time switches for [`CompiledPlan::compile_with`].
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Fold eval-mode batch norms into their preceding conv/depthwise
    /// weights. On (the default), the plan is fastest but ULP-bounded
    /// rather than bitwise against `InferCtx`; off, it is bitwise.
    pub fold_bn: bool,
    /// Fuse pointwise-expand → depthwise → pointwise-project chains into
    /// one strip-tiled action whose intermediates live in thread-local
    /// scratch instead of the arena. On by default; `NB_FUSE=off` (or `0`)
    /// flips the default off. Quantized fused blocks are bitwise identical
    /// to their unfused twins; f32 fused blocks are ULP-bounded (the strip
    /// GEMMs may pick a different schedule than the full-plane GEMMs).
    pub fuse: bool,
    /// Which layers quantized compilation lowers to int8 (ignored by f32
    /// compilation). [`QuantPolicy::Auto`] picks per-layer mixed precision
    /// by shape; [`QuantPolicy::All`] forces every eligible layer.
    pub quant_policy: QuantPolicy,
}

impl Default for PlanOptions {
    fn default() -> Self {
        let fuse = !matches!(
            std::env::var("NB_FUSE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        PlanOptions {
            fold_bn: true,
            fuse,
            quant_policy: QuantPolicy::default(),
        }
    }
}

/// Discriminant of a recorded op, used to check replay alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecKind {
    Conv,
    Depthwise,
    Linear,
    BatchNorm,
    Relu,
    Relu6,
    MaxPool,
    AvgPool,
    Gap,
    Add,
}

/// One op captured by the recording pass. Parameter tensors are snapshotted
/// (and pre-sliced, for the NetAug `_sliced` variants) exactly as `InferCtx`
/// would materialize them.
enum RecOp {
    Conv {
        x: usize,
        out: usize,
        w: Tensor,
        b: Option<Tensor>,
        geom: ConvGeometry,
    },
    Depthwise {
        x: usize,
        out: usize,
        w: Tensor,
        b: Option<Tensor>,
        geom: ConvGeometry,
    },
    Linear {
        x: usize,
        out: usize,
        w: Tensor,
        b: Option<Tensor>,
    },
    BatchNorm {
        x: usize,
        out: usize,
        snap: BatchNorm2d,
    },
    Relu {
        x: usize,
        out: usize,
        alpha: f32,
    },
    Relu6 {
        x: usize,
        out: usize,
        alpha: f32,
    },
    MaxPool {
        x: usize,
        out: usize,
        geom: ConvGeometry,
    },
    AvgPool {
        x: usize,
        out: usize,
        geom: ConvGeometry,
    },
    Gap {
        x: usize,
        out: usize,
    },
    Add {
        a: usize,
        b: usize,
        out: usize,
    },
}

impl RecOp {
    fn kind(&self) -> RecKind {
        match self {
            RecOp::Conv { .. } => RecKind::Conv,
            RecOp::Depthwise { .. } => RecKind::Depthwise,
            RecOp::Linear { .. } => RecKind::Linear,
            RecOp::BatchNorm { .. } => RecKind::BatchNorm,
            RecOp::Relu { .. } => RecKind::Relu,
            RecOp::Relu6 { .. } => RecKind::Relu6,
            RecOp::MaxPool { .. } => RecKind::MaxPool,
            RecOp::AvgPool { .. } => RecKind::AvgPool,
            RecOp::Gap { .. } => RecKind::Gap,
            RecOp::Add { .. } => RecKind::Add,
        }
    }

    fn out(&self) -> usize {
        match *self {
            RecOp::Conv { out, .. }
            | RecOp::Depthwise { out, .. }
            | RecOp::Linear { out, .. }
            | RecOp::BatchNorm { out, .. }
            | RecOp::Relu { out, .. }
            | RecOp::Relu6 { out, .. }
            | RecOp::MaxPool { out, .. }
            | RecOp::AvgPool { out, .. }
            | RecOp::Gap { out, .. }
            | RecOp::Add { out, .. } => out,
        }
    }

    fn inputs(&self) -> (usize, Option<usize>) {
        match *self {
            RecOp::Conv { x, .. }
            | RecOp::Depthwise { x, .. }
            | RecOp::Linear { x, .. }
            | RecOp::BatchNorm { x, .. }
            | RecOp::Relu { x, .. }
            | RecOp::Relu6 { x, .. }
            | RecOp::MaxPool { x, .. }
            | RecOp::AvgPool { x, .. }
            | RecOp::Gap { x, .. } => (x, None),
            RecOp::Add { a, b, .. } => (a, Some(b)),
        }
    }
}

/// Shape-only recorder: implements [`Forward`] over zero tensors, capturing
/// the op list without running any kernel.
struct Recorder {
    vals: Vec<Tensor>,
    ops: Vec<RecOp>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            vals: Vec::new(),
            ops: Vec::new(),
        }
    }

    fn push_val(&mut self, dims: Vec<usize>) -> usize {
        self.vals.push(Tensor::zeros(dims));
        self.vals.len() - 1
    }

    fn dims(&self, v: Value) -> Vec<usize> {
        self.vals[v.index()].dims().to_vec()
    }
}

/// Reconstructs a standalone eval-mode batch-norm snapshot from explicit
/// statistics, so compile-time folding can call the real [`fold_bn`].
fn snap_bn(gamma: Tensor, beta: Tensor, mean: Tensor, var: Tensor, eps: f32) -> BatchNorm2d {
    let c = gamma.dims()[0];
    let bn = BatchNorm2d::new(c).with_eps(eps);
    bn.gamma().set_value(gamma);
    bn.beta().set_value(beta);
    bn.set_running_stats(mean, var);
    bn
}

impl Forward for Recorder {
    fn training(&self) -> bool {
        false
    }

    fn input(&mut self, t: Tensor) -> Value {
        self.vals.push(t);
        Value::from_index(self.vals.len() - 1)
    }

    fn value(&self, v: Value) -> &Tensor {
        &self.vals[v.index()]
    }

    fn take(&mut self, v: Value) -> Tensor {
        self.vals[v.index()].clone()
    }

    fn retain(&mut self, _v: Value) {}

    fn conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value();
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], wt.dims()[0], ho, wo]);
        self.ops.push(RecOp::Conv {
            x: x.index(),
            out,
            w: wt,
            b: b.map(|p| p.value()),
            geom,
        });
        Value::from_index(out)
    }

    fn conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        out_c: usize,
        in_c: usize,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value().narrow_out_in((0, out_c), (0, in_c));
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], out_c, ho, wo]);
        self.ops.push(RecOp::Conv {
            x: x.index(),
            out,
            w: wt,
            b: None,
            geom,
        });
        Value::from_index(out)
    }

    fn depthwise_conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], d[1], ho, wo]);
        self.ops.push(RecOp::Depthwise {
            x: x.index(),
            out,
            w: w.value(),
            b: b.map(|p| p.value()),
            geom,
        });
        Value::from_index(out)
    }

    fn depthwise_conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        channels: usize,
        geom: ConvGeometry,
    ) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], channels, ho, wo]);
        self.ops.push(RecOp::Depthwise {
            x: x.index(),
            out,
            w: w.value().narrow0(0, channels),
            b: None,
            geom,
        });
        Value::from_index(out)
    }

    fn linear(&mut self, x: Value, w: &Parameter, b: Option<&Parameter>) -> Value {
        let wt = w.value();
        let d = self.dims(x);
        let out = self.push_val(vec![d[0], wt.dims()[0]]);
        self.ops.push(RecOp::Linear {
            x: x.index(),
            out,
            w: wt,
            b: b.map(|p| p.value()),
        });
        Value::from_index(out)
    }

    fn linear_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        in_features: usize,
    ) -> Value {
        let wv = w.value();
        let (out_f, big_in) = wv.shape().rc();
        // Materialize the sliced weight exactly as `InferCtx` does: the
        // leading `in_features` columns of every row.
        let mut wk = Tensor::zeros([out_f, in_features]);
        {
            let dst = wk.as_mut_slice();
            let src = wv.as_slice();
            for r in 0..out_f {
                dst[r * in_features..(r + 1) * in_features]
                    .copy_from_slice(&src[r * big_in..r * big_in + in_features]);
            }
        }
        let d = self.dims(x);
        let out = self.push_val(vec![d[0], out_f]);
        self.ops.push(RecOp::Linear {
            x: x.index(),
            out,
            w: wk,
            b: b.map(|p| p.value()),
        });
        Value::from_index(out)
    }

    fn batch_norm(&mut self, x: Value, bn: &BatchNorm2d) -> Value {
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::BatchNorm {
            x: x.index(),
            out,
            snap: snap_bn(
                bn.gamma().value(),
                bn.beta().value(),
                bn.running_mean(),
                bn.running_var(),
                bn.eps(),
            ),
        });
        Value::from_index(out)
    }

    fn batch_norm_sliced(&mut self, x: Value, bn: &BatchNorm2d, channels: usize) -> Value {
        let k = channels;
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::BatchNorm {
            x: x.index(),
            out,
            snap: snap_bn(
                bn.gamma().value().narrow0(0, k),
                bn.beta().value().narrow0(0, k),
                bn.running_mean().narrow0(0, k),
                bn.running_var().narrow0(0, k),
                bn.eps(),
            ),
        });
        Value::from_index(out)
    }

    fn relu_decay(&mut self, x: Value, alpha: f32) -> Value {
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::Relu {
            x: x.index(),
            out,
            alpha,
        });
        Value::from_index(out)
    }

    fn relu6_decay(&mut self, x: Value, alpha: f32) -> Value {
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::Relu6 {
            x: x.index(),
            out,
            alpha,
        });
        Value::from_index(out)
    }

    fn max_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], d[1], ho, wo]);
        self.ops.push(RecOp::MaxPool {
            x: x.index(),
            out,
            geom,
        });
        Value::from_index(out)
    }

    fn avg_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], d[1], ho, wo]);
        self.ops.push(RecOp::AvgPool {
            x: x.index(),
            out,
            geom,
        });
        Value::from_index(out)
    }

    fn global_avg_pool(&mut self, x: Value) -> Value {
        let d = self.dims(x);
        let out = self.push_val(vec![d[0], d[1]]);
        self.ops.push(RecOp::Gap { x: x.index(), out });
        Value::from_index(out)
    }

    fn add(&mut self, a: Value, b: Value) -> Value {
        let d = self.dims(a);
        let out = self.push_val(d);
        self.ops.push(RecOp::Add {
            a: a.index(),
            b: b.index(),
            out,
        });
        Value::from_index(out)
    }
}

/// The kernel an [`Action`] executes.
enum Kernel {
    Conv {
        wp: PackedA,
        bias: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    /// Int8 dense conv: per-channel quantized prepacked weights multiplying
    /// the per-tensor quantized input through a virtual u8 im2col view, with
    /// dequant + bias + activation fused in the GEMM epilogue.
    QConv {
        qw: QPackedW,
        /// Per-tensor input scale, calibrated at compile time.
        x_scale: f32,
        bias: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    /// Int8 linear: quantized twin of `Linear` (bias and activation ride the
    /// dequant epilogue; quantized plans owe no bitwise parity to `InferCtx`).
    QLinear {
        qw: QPackedW,
        x_scale: f32,
        bias: Option<Tensor>,
        act: Epilogue,
    },
    Depthwise {
        w: Tensor,
        b: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    /// Int8 depthwise: per-channel quantized taps over the per-tensor
    /// quantized input, exact zero-point correction, dequant + bias +
    /// activation in the epilogue. Bitwise thread-width invariant like
    /// `QConv`.
    QDepthwise {
        qw: QDepthwiseW,
        x_scale: f32,
        bias: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    /// A fused pointwise-expand → depthwise → pointwise-project chain
    /// (the inverted-residual body), executed strip-by-strip over the
    /// depthwise output rows so the two intermediate `[E, H, W]` tensors
    /// live in thread-local scratch instead of the arena. The boxed
    /// sub-kernels are exactly the three actions the fusion pass swallowed
    /// (`Conv`/`Depthwise`/`Conv`, or their quantized twins — never
    /// mixed), so per-stage scales, biases, and epilogues ride along
    /// unchanged.
    Fused {
        expand: Box<Kernel>,
        dw: Box<Kernel>,
        project: Box<Kernel>,
    },
    Linear {
        wp: PackedB,
        bias: Option<Tensor>,
        act: Epilogue,
    },
    BatchNorm {
        gamma: Tensor,
        beta: Tensor,
        mean: Tensor,
        invstd: Tensor,
    },
    Relu {
        alpha: f32,
    },
    Relu6 {
        alpha: f32,
    },
    MaxPool {
        geom: ConvGeometry,
    },
    AvgPool {
        geom: ConvGeometry,
    },
    Gap,
    Add {
        rhs: usize,
    },
}

impl Kernel {
    /// Short display tag for the `NB_PLAN_PROFILE=1` breakdown.
    fn tag(&self) -> &'static str {
        match self {
            Kernel::Conv { .. } => "conv",
            Kernel::QConv { .. } => "qconv",
            Kernel::QLinear { .. } => "qlinear",
            Kernel::Depthwise { .. } => "depthwise",
            Kernel::QDepthwise { .. } => "qdepthwise",
            Kernel::Fused { expand, .. } => {
                if expand.is_quant() {
                    "qfused"
                } else {
                    "fused"
                }
            }
            Kernel::Linear { .. } => "linear",
            Kernel::BatchNorm { .. } => "bn",
            Kernel::Relu { .. } => "relu",
            Kernel::Relu6 { .. } => "relu6",
            Kernel::MaxPool { .. } => "maxpool",
            Kernel::AvgPool { .. } => "avgpool",
            Kernel::Gap => "gap",
            Kernel::Add { .. } => "add",
        }
    }

    /// Whether this kernel consumes int8-quantized operands (fused blocks
    /// delegate to their expand stage — the three stages always quantize
    /// together).
    fn is_quant(&self) -> bool {
        match self {
            Kernel::QConv { .. } | Kernel::QLinear { .. } | Kernel::QDepthwise { .. } => true,
            Kernel::Fused { expand, .. } => expand.is_quant(),
            _ => false,
        }
    }
}

/// Cached `NB_PLAN_PROFILE=1` check for [`CompiledPlan::run_in`].
fn plan_profile_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        matches!(
            std::env::var("NB_PLAN_PROFILE").as_deref(),
            Ok("1") | Ok("on")
        )
    })
}

/// How an action obtains its output buffer.
#[derive(Clone, Copy, Debug)]
enum ExecMode {
    /// Kernel writes every element into the arena home `home`.
    OutOfPlace { home: usize },
    /// In-place op whose input dies here: the input tensor (and its home,
    /// if any) moves to the output.
    Inherit,
    /// In-place op whose input is still needed (or is the caller-owned
    /// input tensor): copy into the arena home `home`, then mutate.
    CopyToHome { home: usize },
    /// Kernel allocates its own output (pooling); not arena-backed.
    Fresh,
}

/// One executable step of a compiled plan.
struct Action {
    x: usize,
    out: usize,
    /// Output dims at the probe batch; dim 0 is replaced by the run batch.
    out_dims: Vec<usize>,
    kernel: Kernel,
    mode: ExecMode,
    /// Canonical value ids whose last use is this action; their buffers
    /// return to the arena afterwards.
    free_after: Vec<usize>,
    /// Quantized actions only: value ids released *before* the output home
    /// is acquired. The f32 input is dead once it has been quantized into
    /// the arena's u8 scratch, so a dying input's home is immediately
    /// reusable for the output — this is what keeps a quantized plan's peak
    /// at or below the f32 plan's on GEMM-bound graphs.
    early_free: Vec<usize>,
}

/// An eval-only executor compiled once from a module's forward pass.
///
/// Build with [`CompiledPlan::compile`] (folding on) or
/// [`CompiledPlan::compile_with`], then call [`CompiledPlan::run`] per
/// batch — or hold a [`PlanArena`] and call [`CompiledPlan::run_in`] to
/// keep steady-state replay allocation-free. The batch size may differ
/// from the probe batch (arena buffers scale linearly); per-sample dims
/// must match.
///
/// The plan itself is immutable after compile and `Send + Sync`: share it
/// behind an `Arc` and replay it concurrently, one arena per thread or
/// request.
pub struct CompiledPlan {
    actions: Vec<Action>,
    /// Per recorded op: expected kind, action to execute (None when the op
    /// was folded/elided), canonical output value id.
    rec_meta: Vec<(RecKind, Option<usize>, usize)>,
    in_dims: Vec<usize>,
    final_out: usize,
    /// Number of canonical value slots an arena must provide.
    nvals: usize,
    val_home: Vec<Option<usize>>,
    /// Per-sample f32 counts of every arena home, fixed at compile time.
    home_units: Vec<usize>,
    /// Deterministic per-sample high-water mark of live activation f32s
    /// (same accounting as `InferCtx::peak_bytes`); quantized actions also
    /// account their transient u8 scratch here, in f32-equivalent units.
    peak_units: usize,
    packed_bytes: usize,
    /// Largest per-sample u8 count any quantized action needs for its input
    /// scratch (0 for pure-f32 plans).
    qscratch_units: usize,
}

/// Per-request replay state for a [`CompiledPlan`]: the live activation
/// values, the recycled arena buffers, the bound batch size, and the
/// replay cursor.
///
/// Arenas are cheap to create ([`CompiledPlan::new_arena`]) and grow their
/// buffers lazily on first replay; reusing one across runs keeps
/// steady-state inference allocation-free. An arena is tied to the plan
/// (or an identically compiled plan) that created it — [`CompiledPlan::run_in`]
/// panics on a structural mismatch.
pub struct PlanArena {
    values: Vec<Option<Tensor>>,
    homes: Vec<Vec<f32>>,
    /// Quantized-input scratch, shared by every quantized action in the
    /// plan (replay is sequential within an arena); high-water sized.
    qscratch: Vec<u8>,
    last_batch: usize,
    cursor: usize,
}

impl PlanArena {
    /// Bytes currently resident in the arena's recycled buffers and live
    /// values (what reusing this arena keeps allocated between runs).
    pub fn resident_bytes(&self) -> usize {
        let homes: usize = self.homes.iter().map(|h| h.len()).sum();
        let vals: usize = self
            .values
            .iter()
            .flatten()
            .map(|t| t.as_slice().len())
            .sum();
        (homes + vals) * std::mem::size_of::<f32>() + self.qscratch.len()
    }
}

impl CompiledPlan {
    /// Compiles a plan (with batch-norm folding) from a forward pass probed
    /// at input shape `dims` (`dims[0]` is the probe batch; runs may use
    /// any batch).
    ///
    /// # Panics
    ///
    /// Panics if the forward uses training-mode semantics or inconsistent
    /// shapes.
    pub fn compile(dims: &[usize], fwd: impl FnOnce(&mut dyn Forward, Value) -> Value) -> Self {
        Self::compile_with(dims, PlanOptions::default(), fwd)
    }

    /// [`CompiledPlan::compile`] with explicit [`PlanOptions`].
    ///
    /// # Panics
    ///
    /// Panics if the forward uses training-mode semantics or inconsistent
    /// shapes.
    pub fn compile_with(
        dims: &[usize],
        opts: PlanOptions,
        fwd: impl FnOnce(&mut dyn Forward, Value) -> Value,
    ) -> Self {
        let mut rec = Recorder::new();
        let x = rec.input(Tensor::zeros(dims.to_vec()));
        let y = fwd(&mut rec, x);
        build(&rec, y.index(), dims.to_vec(), opts, None)
    }

    /// Compiles an **int8 post-training-quantized** plan: batch norms fold
    /// as in [`CompiledPlan::compile`], then every dense conv and linear is
    /// rewritten to an i8 kernel with per-channel symmetric weights and a
    /// per-tensor input scale calibrated from `calib` (a few representative
    /// batches; see [`quant_calib_batches`] for the conventional count).
    ///
    /// Calibration records each kernel input's max-abs by replaying the f32
    /// plan over the calibration batches, so the quantized plan's scales
    /// line up with its own fused graph (post-folding activations, not the
    /// recorded pre-fusion ones). Depthwise convs quantize too — the int8
    /// stencil with per-channel weights and exact zero-point correction
    /// keeps inverted-residual chains entirely in u8. Batch norms, pooling
    /// and residual adds stay f32, confining quantization error to the
    /// conv/linear operands.
    ///
    /// The result replays through every existing entry point ([`run`],
    /// [`run_in`], [`replayer`], nb-serve) unchanged, and its replay is
    /// bitwise deterministic across thread widths: integer accumulation is
    /// exact under any schedule, so the only approximation is quantization
    /// itself, which the nb-verify `+plan-quant` accuracy budget bounds.
    ///
    /// [`run`]: CompiledPlan::run
    /// [`run_in`]: CompiledPlan::run_in
    /// [`replayer`]: CompiledPlan::replayer
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty, if a calibration batch's per-sample dims
    /// differ from `dims`, or on any [`CompiledPlan::compile`] failure.
    pub fn compile_quantized(
        dims: &[usize],
        calib: &[Tensor],
        fwd: impl FnOnce(&mut dyn Forward, Value) -> Value,
    ) -> Self {
        Self::compile_quantized_with(dims, PlanOptions::default(), calib, fwd)
    }

    /// [`CompiledPlan::compile_quantized`] with explicit [`PlanOptions`] —
    /// how the verify suites build a fused and an unfused quantized twin in
    /// one process without racing on the `NB_FUSE` environment variable.
    ///
    /// # Panics
    ///
    /// As [`CompiledPlan::compile_quantized`].
    pub fn compile_quantized_with(
        dims: &[usize],
        opts: PlanOptions,
        calib: &[Tensor],
        fwd: impl FnOnce(&mut dyn Forward, Value) -> Value,
    ) -> Self {
        assert!(
            !calib.is_empty(),
            "compile_quantized needs at least one calibration batch"
        );
        let mut rec = Recorder::new();
        let x = rec.input(Tensor::zeros(dims.to_vec()));
        let y = fwd(&mut rec, x);
        // Calibration runs on the *unfused* f32 plan so that maxima (and
        // the scales derived from them) are indexed by pre-fusion action
        // order — the order in which the quantized build's Pass A consumes
        // them. The fusion pass runs after scales are assigned, so the
        // final (possibly fused) plan sees identical per-stage scales.
        let calib_opts = PlanOptions {
            fuse: false,
            ..opts
        };
        let fplan = build(&rec, y.index(), dims.to_vec(), calib_opts, None);
        let mut maxima = vec![0.0f32; fplan.actions.len()];
        let mut arena = fplan.new_arena();
        for batch in calib {
            fplan.run_calibrate(&mut arena, batch, &mut maxima);
        }
        let scales: Vec<f32> = maxima.iter().map(|&m| activation_scale(m)).collect();
        build(&rec, y.index(), dims.to_vec(), opts, Some(&scales))
    }

    /// Creates a replay arena sized for this plan. Buffers grow lazily on
    /// first use; reuse one arena across runs ([`CompiledPlan::run_in`]) to
    /// keep steady-state replay allocation-free.
    pub fn new_arena(&self) -> PlanArena {
        PlanArena {
            values: vec![None; self.nvals],
            homes: self.home_units.iter().map(|_| Vec::new()).collect(),
            qscratch: Vec::new(),
            last_batch: self.in_dims[0],
            cursor: 0,
        }
    }

    /// Runs the compiled graph over one batch with a one-shot arena,
    /// returning the final value.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s per-sample dims differ from the compiled shape.
    pub fn run(&self, x: &Tensor) -> Tensor {
        let mut arena = self.new_arena();
        self.run_in(&mut arena, x)
    }

    /// Runs the compiled graph over one batch, recycling `arena`'s buffers
    /// (the steady-state serving path: no activation allocation once the
    /// arena is warm).
    ///
    /// # Panics
    ///
    /// Panics if `x`'s per-sample dims differ from the compiled shape, or
    /// if `arena` was created by a structurally different plan.
    pub fn run_in(&self, arena: &mut PlanArena, x: &Tensor) -> Tensor {
        let v = self.bind(arena, x.clone());
        debug_assert_eq!(v.index(), 0);
        if plan_profile_enabled() {
            let mut rows = Vec::with_capacity(self.actions.len());
            let t_all = std::time::Instant::now();
            for ai in 0..self.actions.len() {
                let t0 = std::time::Instant::now();
                self.exec(arena, ai);
                rows.push(t0.elapsed().as_nanos());
            }
            self.print_profile(arena.last_batch, &rows, t_all.elapsed().as_nanos());
        } else {
            for ai in 0..self.actions.len() {
                self.exec(arena, ai);
            }
        }
        self.take_value(arena, Value::from_index(self.final_out))
    }

    /// `NB_PLAN_PROFILE=1` breakdown table: one row per action with the
    /// kernel tag, output dims, wall ns, and share of the run.
    fn print_profile(&self, batch: usize, rows: &[u128], total: u128) {
        eprintln!(
            "[plan-profile] batch={batch} actions={} total={total} ns",
            rows.len()
        );
        for (ai, (a, ns)) in self.actions.iter().zip(rows).enumerate() {
            let dims: Vec<String> = a.out_dims[1..].iter().map(|d| d.to_string()).collect();
            let pct = *ns as f64 * 100.0 / total.max(1) as f64;
            eprintln!(
                "  #{ai:<3} {:<11} [{}] {ns:>10} ns  {pct:>5.1}%",
                a.kernel.tag(),
                dims.join("x"),
            );
        }
    }

    /// Wraps this plan and a fresh arena into a [`Forward`] executor that
    /// replays the recorded op sequence call-by-call (for callers that walk
    /// `Module::forward` themselves instead of using [`CompiledPlan::run`]).
    pub fn replayer(&self) -> PlanReplay<'_> {
        PlanReplay {
            plan: self,
            arena: self.new_arena(),
        }
    }

    /// Deterministic peak of live activation bytes at the probe batch — the
    /// compile-time liveness high-water mark, directly comparable to
    /// [`crate::InferCtx::peak_bytes`] at the same batch.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes_at(self.in_dims[0])
    }

    /// [`CompiledPlan::peak_bytes`] scaled to an arbitrary run batch (the
    /// liveness peak is linear in the batch).
    pub fn peak_bytes_at(&self, batch: usize) -> usize {
        self.peak_units * batch * std::mem::size_of::<f32>()
    }

    /// Total arena footprint in bytes at the probe batch: what a warm
    /// [`PlanArena`] for this plan keeps resident between runs.
    pub fn arena_bytes(&self) -> usize {
        self.arena_bytes_at(self.in_dims[0])
    }

    /// [`CompiledPlan::arena_bytes`] scaled to an arbitrary run batch.
    pub fn arena_bytes_at(&self, batch: usize) -> usize {
        self.home_units.iter().sum::<usize>() * batch * std::mem::size_of::<f32>()
            + self.qscratch_units * batch
    }

    /// Whether this plan carries int8 GEMM actions (built by
    /// [`CompiledPlan::compile_quantized`]).
    pub fn is_quantized(&self) -> bool {
        self.actions.iter().any(|a| a.kernel.is_quant())
    }

    /// Bytes held by prepacked weight panels (including retained raw
    /// operands for the small-problem dispatch).
    pub fn packed_bytes(&self) -> usize {
        self.packed_bytes
    }

    /// Number of executable actions after folding/elision.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Binds the run input into `arena`, reclaiming the previous run's
    /// buffers first.
    fn bind(&self, arena: &mut PlanArena, t: Tensor) -> Value {
        assert_eq!(
            t.dims().len(),
            self.in_dims.len(),
            "CompiledPlan input rank"
        );
        assert_eq!(
            &t.dims()[1..],
            &self.in_dims[1..],
            "CompiledPlan input per-sample shape"
        );
        assert_eq!(
            arena.values.len(),
            self.nvals,
            "PlanArena belongs to a structurally different plan"
        );
        assert_eq!(
            arena.homes.len(),
            self.home_units.len(),
            "PlanArena belongs to a structurally different plan"
        );
        arena.last_batch = t.dims()[0];
        arena.cursor = 0;
        // Reclaim last run's buffers into the arena before rebinding.
        let PlanArena { values, homes, .. } = arena;
        for (id, slot) in values.iter_mut().enumerate() {
            if let Some(t) = slot.take() {
                if let Some(h) = self.val_home[id] {
                    if !t.is_shared() {
                        homes[h] = t.into_vec();
                    }
                }
            }
        }
        arena.values[0] = Some(t);
        Value::from_index(0)
    }

    /// Deep-copies a live value out of `arena` (the arena keeps its buffer;
    /// final outputs are small relative to the activations saved).
    fn take_value(&self, arena: &PlanArena, v: Value) -> Tensor {
        let t = arena.values[v.index()]
            .as_ref()
            .expect("value not live in compiled plan");
        Tensor::from_vec(t.as_slice().to_vec(), t.dims().to_vec()).expect("take copy")
    }

    /// Executes action `ai` against `arena`'s values/buffer state.
    fn exec(&self, arena: &mut PlanArena, ai: usize) {
        let Self {
            actions, val_home, ..
        } = self;
        let PlanArena {
            values,
            homes,
            qscratch,
            last_batch,
            ..
        } = arena;
        let a = &actions[ai];
        let mut dims = a.out_dims.clone();
        dims[0] = *last_batch;
        let unit: usize = dims[1..].iter().product();
        let need = unit * *last_batch;

        let take_home = |homes: &mut Vec<Vec<f32>>, h: usize| -> Vec<f32> {
            let mut buf = std::mem::take(&mut homes[h]);
            if buf.len() != need {
                buf.resize(need, 0.0);
            }
            buf
        };

        let out_t = match (&a.kernel, a.mode) {
            (
                Kernel::Conv {
                    wp,
                    bias,
                    geom,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("conv input live");
                conv2d_packed_into(
                    xt,
                    wp,
                    bias.as_ref().map(Tensor::as_slice),
                    *geom,
                    *act,
                    &mut buf,
                );
                Tensor::from_vec(buf, dims).expect("conv output shape")
            }
            (
                Kernel::QConv {
                    qw,
                    x_scale,
                    bias,
                    geom,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                // Quantize the f32 input into the arena's u8 scratch, then
                // release the (now dead) input *before* taking the output
                // home — pass B may have aliased the two.
                let (c_in, h, w_in) = {
                    let xt = values[a.x].as_ref().expect("qconv input live");
                    let d = xt.dims();
                    let src = xt.as_slice();
                    if qscratch.len() < src.len() {
                        qscratch.resize(src.len(), Q_SCRATCH_FILL);
                    }
                    quantize_activations(src, *x_scale, &mut qscratch[..src.len()]);
                    (d[1], d[2], d[3])
                };
                release_values(&a.early_free, values, val_home, homes);
                let mut buf = take_home(homes, home);
                let (ho, wo) = geom.output_hw(h, w_in);
                let unit_in = c_in * h * w_in;
                let unit_out = qw.m() * ho * wo;
                let pointwise = geom.kh == 1
                    && geom.kw == 1
                    && geom.sh == 1
                    && geom.sw == 1
                    && geom.ph == 0
                    && geom.pw == 0;
                for s in 0..*last_batch {
                    let qs = &qscratch[s * unit_in..(s + 1) * unit_in];
                    let cs = &mut buf[s * unit_out..(s + 1) * unit_out];
                    let bias = bias.as_ref().map(Tensor::as_slice);
                    if pointwise {
                        qgemm_conv_mat(qw, qs, cs, ho * wo, *x_scale, bias, *act);
                    } else {
                        let qim = QIm2colRef {
                            x: qs,
                            c_in,
                            h,
                            w: w_in,
                            geom: *geom,
                            ho,
                            wo,
                        };
                        qgemm_conv(qw, &qim, cs, *x_scale, bias, *act);
                    }
                }
                Tensor::from_vec(buf, dims).expect("qconv output shape")
            }
            (
                Kernel::QLinear {
                    qw,
                    x_scale,
                    bias,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                let in_f = qw.k();
                {
                    let xt = values[a.x].as_ref().expect("qlinear input live");
                    let src = xt.as_slice();
                    if qscratch.len() < src.len() {
                        qscratch.resize(src.len(), Q_SCRATCH_FILL);
                    }
                    quantize_activations(src, *x_scale, &mut qscratch[..src.len()]);
                }
                release_values(&a.early_free, values, val_home, homes);
                let mut buf = take_home(homes, home);
                qgemm_linear(
                    qw,
                    &qscratch[..*last_batch * in_f],
                    *last_batch,
                    &mut buf,
                    *x_scale,
                    bias.as_ref().map(Tensor::as_slice),
                    *act,
                );
                Tensor::from_vec(buf, dims).expect("qlinear output shape")
            }
            (Kernel::Depthwise { w, b, geom, act }, ExecMode::OutOfPlace { home }) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("depthwise input live");
                depthwise_conv2d_fused_into(xt, w, b.as_ref(), *geom, *act, &mut buf);
                Tensor::from_vec(buf, dims).expect("depthwise output shape")
            }
            (
                Kernel::QDepthwise {
                    qw,
                    x_scale,
                    bias,
                    geom,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                // Mirror of the QConv arm: quantize into the u8 scratch,
                // release the dead f32 input, then take the output home.
                let (c, h, w_in) = {
                    let xt = values[a.x].as_ref().expect("qdepthwise input live");
                    let d = xt.dims();
                    let src = xt.as_slice();
                    if qscratch.len() < src.len() {
                        qscratch.resize(src.len(), Q_SCRATCH_FILL);
                    }
                    quantize_activations(src, *x_scale, &mut qscratch[..src.len()]);
                    (d[1], d[2], d[3])
                };
                release_values(&a.early_free, values, val_home, homes);
                let mut buf = take_home(homes, home);
                qdepthwise_conv2d_into(
                    &qscratch[..*last_batch * c * h * w_in],
                    *last_batch,
                    qw,
                    bias.as_ref().map(Tensor::as_slice),
                    *geom,
                    *act,
                    *x_scale,
                    h,
                    w_in,
                    &mut buf,
                );
                Tensor::from_vec(buf, dims).expect("qdepthwise output shape")
            }
            (
                Kernel::Fused {
                    expand,
                    dw,
                    project,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("fused input live");
                run_fused(expand, dw, project, xt, &mut buf);
                Tensor::from_vec(buf, dims).expect("fused output shape")
            }
            (Kernel::Linear { wp, bias, act }, ExecMode::OutOfPlace { home }) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("linear input live");
                // With a bias the order must match InferCtx (matmul, then
                // add_bias2, then activation); without one the activation
                // rides the GEMM epilogue.
                let gemm_act = if bias.is_some() { Epilogue::None } else { *act };
                nb_tensor::gemm_b_packed(
                    xt.as_slice(),
                    false,
                    wp,
                    &mut buf,
                    *last_batch,
                    None,
                    gemm_act,
                );
                let mut t = Tensor::from_vec(buf, dims).expect("linear output shape");
                if let Some(b) = bias {
                    eltwise::add_bias2_inplace(&mut t, b);
                    act.apply(t.as_mut_slice());
                }
                t
            }
            (kernel, ExecMode::Inherit) => {
                let mut t = values[a.x].take().expect("in-place input live");
                apply_inplace(kernel, &mut t, values);
                t
            }
            (kernel, ExecMode::CopyToHome { home }) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("in-place input live");
                buf.copy_from_slice(xt.as_slice());
                let mut t = Tensor::from_vec(buf, dims).expect("in-place output shape");
                apply_inplace(kernel, &mut t, values);
                t
            }
            (Kernel::MaxPool { geom }, ExecMode::Fresh) => {
                let (t, _idx) = maxpool2d(values[a.x].as_ref().expect("pool input live"), *geom);
                t
            }
            (Kernel::AvgPool { geom }, ExecMode::Fresh) => {
                avgpool2d(values[a.x].as_ref().expect("pool input live"), *geom)
            }
            (Kernel::Gap, ExecMode::Fresh) => {
                global_avg_pool(values[a.x].as_ref().expect("pool input live"))
            }
            _ => unreachable!("kernel/mode combination not produced by compile"),
        };
        values[a.out] = Some(out_t);
        release_values(&a.free_after, values, val_home, homes);
    }

    /// [`CompiledPlan::run_in`] with a max-abs probe: before each
    /// quantizable action (conv / linear / depthwise) executes, folds its
    /// live f32 input's max-abs into `maxima[action]`. This is the
    /// calibration pass behind [`CompiledPlan::compile_quantized`] — it
    /// runs on an *unfused* f32 plan, and action indices line up with the
    /// quantized build because quantization changes kernels (never the
    /// emission order) and chain fusion runs only after scales are
    /// assigned.
    fn run_calibrate(&self, arena: &mut PlanArena, x: &Tensor, maxima: &mut [f32]) {
        let v = self.bind(arena, x.clone());
        debug_assert_eq!(v.index(), 0);
        for (ai, mx) in maxima.iter_mut().enumerate().take(self.actions.len()) {
            let a = &self.actions[ai];
            if matches!(
                a.kernel,
                Kernel::Conv { .. } | Kernel::Linear { .. } | Kernel::Depthwise { .. }
            ) {
                let xt = arena.values[a.x].as_ref().expect("calibration input live");
                *mx = mx.max(max_abs(xt.as_slice()));
            }
            self.exec(arena, ai);
        }
    }

    /// Replays one recorded op: executes its action (if any) and returns
    /// the canonical output handle.
    fn replay(&self, arena: &mut PlanArena, kind: RecKind) -> Value {
        let i = arena.cursor;
        arena.cursor += 1;
        let (rec_kind, action, out) = self.rec_meta[i];
        debug_assert_eq!(
            rec_kind, kind,
            "CompiledPlan replayed against a different forward than it was compiled from"
        );
        if let Some(ai) = action {
            self.exec(arena, ai);
        }
        Value::from_index(out)
    }
}

/// Fresh u8 scratch bytes start at the activation zero point; every byte the
/// kernels read is overwritten by `quantize_activations` first, so the fill
/// value is cosmetic.
const Q_SCRATCH_FILL: u8 = nb_tensor::Q_ZERO;

/// Returns dying values' buffers to their arena homes (shared-buffer tensors
/// are dropped instead — their storage is borrowed, not arena-owned).
fn release_values(
    ids: &[usize],
    values: &mut [Option<Tensor>],
    val_home: &[Option<usize>],
    homes: &mut [Vec<f32>],
) {
    for &id in ids {
        if let Some(t) = values[id].take() {
            if let Some(h) = val_home[id] {
                if !t.is_shared() {
                    homes[h] = t.into_vec();
                }
            }
        }
    }
}

/// Applies an in-place kernel to an exclusively-owned tensor.
fn apply_inplace(kernel: &Kernel, t: &mut Tensor, values: &[Option<Tensor>]) {
    match kernel {
        Kernel::BatchNorm {
            gamma,
            beta,
            mean,
            invstd,
        } => eltwise::bn_apply_inplace(t, gamma, beta, mean, invstd),
        Kernel::Relu { alpha } => eltwise::relu_decay_inplace(t, *alpha),
        Kernel::Relu6 { alpha } => eltwise::relu6_decay_inplace(t, *alpha),
        Kernel::Add { rhs } => t.add_assign(values[*rhs].as_ref().expect("add rhs live")),
        _ => unreachable!("not an in-place kernel"),
    }
}

// Thread-local scratch for the fused inverted-residual executor: one f32
// buffer partitioned into [gathered input | expand out | depthwise out |
// project out] strip regions, plus one u8 buffer the quantized path
// reuses across its three quantize steps. Grown to a high-water mark and
// reused, like nb-tensor's packing scratch, and excluded from
// `CompiledPlan::peak_bytes` the same way — it is bounded by the strip
// budget, not the activation footprint.
thread_local! {
    static FUSE_F32: std::cell::Cell<Vec<f32>> = const { std::cell::Cell::new(Vec::new()) };
    static FUSE_U8: std::cell::Cell<Vec<u8>> = const { std::cell::Cell::new(Vec::new()) };
}

fn with_fuse_scratch<R>(
    f32_len: usize,
    u8_len: usize,
    f: impl FnOnce(&mut [f32], &mut [u8]) -> R,
) -> R {
    FUSE_F32.with(|cf| {
        FUSE_U8.with(|cq| {
            let mut fb = cf.take();
            let mut qb = cq.take();
            if fb.len() < f32_len {
                fb.resize(f32_len, 0.0);
            }
            if qb.len() < u8_len {
                qb.resize(u8_len, Q_SCRATCH_FILL);
            }
            let r = f(&mut fb[..], &mut qb[..]);
            cf.set(fb);
            cq.set(qb);
            r
        })
    })
}

/// Depthwise-output rows per fused strip: the largest strip whose f32
/// scratch stays roughly L2-resident, clamped to `[1, ho]`. A pure
/// function of the shapes, so fused replay is deterministic.
fn fused_strip_rows(
    c_in: usize,
    e: usize,
    c_out: usize,
    w: usize,
    wo: usize,
    sh: usize,
    ho: usize,
) -> usize {
    // f32 units per depthwise output row: gathered input and expand output
    // cover `sh` input rows each (the kh-1 halo is amortized), plus the
    // depthwise and project output rows.
    let per_row = (c_in + e) * sh * w + (e + c_out) * wo;
    const TARGET_UNITS: usize = 48 * 1024; // ~192 KiB of f32 strip scratch
    (TARGET_UNITS / per_row.max(1)).clamp(1, ho.max(1))
}

/// Executes a fused expand → depthwise → project block sample by sample:
/// strips of depthwise output rows flow through thread-local scratch, so
/// the two `[E, H, W]` intermediates never round-trip through the arena.
///
/// The quantized variant is **bitwise identical** to its unfused twin:
/// `quantize_activations` is elementwise (strip-wise quantization produces
/// the same bytes), the integer GEMM/stencil stages are exact under any
/// schedule, and the dequant epilogues evaluate the same expression per
/// element. The f32 variant is ULP-bounded only — the strip-shaped
/// pointwise GEMMs may select a different schedule than the full-plane
/// ones. Both are bitwise thread-width invariant.
fn run_fused(expand: &Kernel, dw: &Kernel, project: &Kernel, xt: &Tensor, out: &mut [f32]) {
    use nb_tensor::selector;
    let d = xt.dims();
    let (n, c_in, h, w) = (d[0], d[1], d[2], d[3]);
    let x = xt.as_slice();
    match (expand, dw, project) {
        (
            Kernel::Conv {
                wp: ewp,
                bias: ebias,
                act: eact,
                ..
            },
            Kernel::Depthwise {
                w: dww,
                b: dwb,
                geom,
                act: dact,
            },
            Kernel::Conv {
                wp: pwp,
                bias: pbias,
                act: pact,
                ..
            },
        ) => {
            let g = *geom;
            let (ho, wo) = g.output_hw(h, w);
            let (e, c_out) = (ewp.m(), pwp.m());
            debug_assert_eq!(out.len(), n * c_out * ho * wo, "fused output length");
            let strip = fused_strip_rows(c_in, e, c_out, w, wo, g.sh, ho);
            let rows_in_max = ((strip - 1) * g.sh + g.kh).min(h);
            let (xg_cap, e_cap) = (c_in * rows_in_max * w, e * rows_in_max * w);
            let (d_cap, p_cap) = (e * strip * wo, c_out * strip * wo);
            // One depthwise schedule decision per run, keyed exactly like
            // the standalone action, so strips run the same kernel.
            let dvar = selector::select(
                selector::Op::Depthwise,
                selector::Layout::NN,
                e,
                g.kh * g.kw,
                ho * wo,
            );
            let simd = dvar.schedule != nb_tensor::Schedule::Direct;
            let ws = dww.as_slice();
            let ebias = ebias.as_ref().map(Tensor::as_slice);
            let dbias = dwb.as_ref().map(Tensor::as_slice);
            let pbias = pbias.as_ref().map(Tensor::as_slice);
            with_fuse_scratch(xg_cap + e_cap + d_cap + p_cap, 0, |fb, _| {
                let (xg, rest) = fb.split_at_mut(xg_cap);
                let (eb, rest) = rest.split_at_mut(e_cap);
                let (db, pb) = rest.split_at_mut(d_cap);
                for s in 0..n {
                    let x_s = &x[s * c_in * h * w..(s + 1) * c_in * h * w];
                    let o_s = &mut out[s * c_out * ho * wo..(s + 1) * c_out * ho * wo];
                    let mut o0 = 0;
                    while o0 < ho {
                        let o1 = (o0 + strip).min(ho);
                        let r0 = (o0 * g.sh).saturating_sub(g.ph);
                        let r1 = ((o1 - 1) * g.sh + g.kh).saturating_sub(g.ph).min(h).max(r0);
                        let ri = r1 - r0;
                        let (ni, no) = (ri * w, (o1 - o0) * wo);
                        if ni > 0 {
                            // A strip that spans the whole input plane needs
                            // no gather: the sample is already the k x n
                            // matrix the pointwise GEMM expects.
                            let xin: &[f32] = if ri == h {
                                &x_s[..c_in * ni]
                            } else {
                                for ci in 0..c_in {
                                    xg[ci * ni..(ci + 1) * ni].copy_from_slice(
                                        &x_s[ci * h * w + r0 * w..ci * h * w + r1 * w],
                                    );
                                }
                                &xg[..c_in * ni]
                            };
                            conv2d_pointwise_mat_into(
                                ewp,
                                xin,
                                &mut eb[..e * ni],
                                ni,
                                ebias,
                                *eact,
                            );
                        }
                        for ci in 0..e {
                            let bv = dbias.map(|b| b[ci]).unwrap_or(0.0);
                            dw_channel_rows(
                                &eb[ci * ni..(ci + 1) * ni],
                                r0,
                                h,
                                w,
                                &ws[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw],
                                bv,
                                g,
                                wo,
                                o0,
                                o1,
                                &mut db[ci * no..(ci + 1) * no],
                                simd,
                            );
                        }
                        dact.apply(&mut db[..e * no]);
                        // Mirror of the gather skip: a full-plane strip can
                        // project straight into the output sample.
                        if no == ho * wo {
                            conv2d_pointwise_mat_into(pwp, &db[..e * no], o_s, no, pbias, *pact);
                        } else {
                            conv2d_pointwise_mat_into(
                                pwp,
                                &db[..e * no],
                                &mut pb[..c_out * no],
                                no,
                                pbias,
                                *pact,
                            );
                            for co in 0..c_out {
                                o_s[co * ho * wo + o0 * wo..co * ho * wo + o0 * wo + no]
                                    .copy_from_slice(&pb[co * no..(co + 1) * no]);
                            }
                        }
                        o0 = o1;
                    }
                }
            });
        }
        (
            Kernel::QConv {
                qw: eqw,
                x_scale: exs,
                bias: ebias,
                act: eact,
                ..
            },
            Kernel::QDepthwise {
                qw: dqw,
                x_scale: dxs,
                bias: dwb,
                geom,
                act: dact,
            },
            Kernel::QConv {
                qw: pqw,
                x_scale: pxs,
                bias: pbias,
                act: pact,
                ..
            },
        ) => {
            let g = *geom;
            let (ho, wo) = g.output_hw(h, w);
            let (e, c_out) = (eqw.m(), pqw.m());
            debug_assert_eq!(out.len(), n * c_out * ho * wo, "qfused output length");
            let strip = fused_strip_rows(c_in, e, c_out, w, wo, g.sh, ho);
            let rows_in_max = ((strip - 1) * g.sh + g.kh).min(h);
            let (xg_cap, e_cap) = (c_in * rows_in_max * w, e * rows_in_max * w);
            let (d_cap, p_cap) = (e * strip * wo, c_out * strip * wo);
            // u8 scratch: one region shared by the quantized input and the
            // requantized depthwise output (their lifetimes don't overlap),
            // one for the requantized expand output the stencil reads from.
            // Both producers requantize in their epilogues, so no f32
            // intermediate exists between the three stages.
            let qa_cap = xg_cap.max(d_cap);
            let dvar = selector::select(
                selector::Op::QDepthwise,
                selector::Layout::NN,
                e,
                g.kh * g.kw,
                ho * wo,
            );
            let simd = dvar.schedule != nb_tensor::Schedule::Direct;
            let scales = dqw.scales();
            let ebias = ebias.as_ref().map(Tensor::as_slice);
            let dbias = dwb.as_ref().map(Tensor::as_slice);
            let pbias = pbias.as_ref().map(Tensor::as_slice);
            with_fuse_scratch(xg_cap + p_cap, qa_cap + e_cap, |fb, qb| {
                let (xg, pb) = fb.split_at_mut(xg_cap);
                let (qa, qe) = qb.split_at_mut(qa_cap);
                for s in 0..n {
                    let x_s = &x[s * c_in * h * w..(s + 1) * c_in * h * w];
                    let o_s = &mut out[s * c_out * ho * wo..(s + 1) * c_out * ho * wo];
                    let mut o0 = 0;
                    while o0 < ho {
                        let o1 = (o0 + strip).min(ho);
                        let r0 = (o0 * g.sh).saturating_sub(g.ph);
                        let r1 = ((o1 - 1) * g.sh + g.kh).saturating_sub(g.ph).min(h).max(r0);
                        let ri = r1 - r0;
                        let (ni, no) = (ri * w, (o1 - o0) * wo);
                        if ni > 0 {
                            // Full-plane strips quantize straight from the
                            // sample; the f32 gather is only a staging copy.
                            let src: &[f32] = if ri == h {
                                &x_s[..c_in * ni]
                            } else {
                                for ci in 0..c_in {
                                    xg[ci * ni..(ci + 1) * ni].copy_from_slice(
                                        &x_s[ci * h * w + r0 * w..ci * h * w + r1 * w],
                                    );
                                }
                                &xg[..c_in * ni]
                            };
                            quantize_activations(src, *exs, &mut qa[..c_in * ni]);
                            // The expand stage requantizes in its epilogue:
                            // its only consumer is the int8 stencil, so the
                            // f32 intermediate never exists.
                            qgemm_conv_mat_requant(
                                eqw,
                                &qa[..c_in * ni],
                                &mut qe[..e * ni],
                                ni,
                                *exs,
                                ebias,
                                *eact,
                                *dxs,
                            );
                        }
                        // The stencil requantizes per channel row: dequant,
                        // activation, and the project stage's input quantize
                        // collapse into its epilogue.
                        for ci in 0..e {
                            let base = dbias.map(|b| b[ci]).unwrap_or(0.0);
                            qdw_channel_rows_requant(
                                &qe[ci * ni..(ci + 1) * ni],
                                r0,
                                h,
                                w,
                                dqw.filter(ci),
                                dqw.kersum(ci),
                                scales[ci] * *dxs,
                                base,
                                *dact,
                                *pxs,
                                g,
                                wo,
                                o0,
                                o1,
                                &mut qa[ci * no..(ci + 1) * no],
                                simd,
                            );
                        }
                        if no == ho * wo {
                            qgemm_conv_mat(pqw, &qa[..e * no], o_s, no, *pxs, pbias, *pact);
                        } else {
                            qgemm_conv_mat(
                                pqw,
                                &qa[..e * no],
                                &mut pb[..c_out * no],
                                no,
                                *pxs,
                                pbias,
                                *pact,
                            );
                            for co in 0..c_out {
                                o_s[co * ho * wo + o0 * wo..co * ho * wo + o0 * wo + no]
                                    .copy_from_slice(&pb[co * no..(co + 1) * no]);
                            }
                        }
                        o0 = o1;
                    }
                }
            });
        }
        _ => unreachable!("fused stages are Conv/Depthwise/Conv or their quantized twins"),
    }
}

/// [`Forward`] adapter over a shared [`CompiledPlan`] and an owned
/// [`PlanArena`]: replays the recorded op sequence call-by-call.
///
/// Built by [`CompiledPlan::replayer`]. Multiple replayers over one plan
/// may run concurrently — the plan is borrowed shared; all mutation lands
/// in this replayer's arena.
pub struct PlanReplay<'p> {
    plan: &'p CompiledPlan,
    arena: PlanArena,
}

impl Forward for PlanReplay<'_> {
    fn training(&self) -> bool {
        false
    }

    fn input(&mut self, t: Tensor) -> Value {
        self.plan.bind(&mut self.arena, t)
    }

    fn value(&self, v: Value) -> &Tensor {
        self.arena.values[v.index()]
            .as_ref()
            .expect("value not live in compiled plan")
    }

    fn take(&mut self, v: Value) -> Tensor {
        // Deep copy so the arena keeps its buffer; final outputs are small
        // (logits / detection grids) relative to the activations saved.
        self.plan.take_value(&self.arena, v)
    }

    fn retain(&mut self, _v: Value) {}

    fn conv2d(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _b: Option<&Parameter>,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Conv)
    }

    fn conv2d_sliced(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _out_c: usize,
        _in_c: usize,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Conv)
    }

    fn depthwise_conv2d(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _b: Option<&Parameter>,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Depthwise)
    }

    fn depthwise_conv2d_sliced(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _channels: usize,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Depthwise)
    }

    fn linear(&mut self, _x: Value, _w: &Parameter, _b: Option<&Parameter>) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Linear)
    }

    fn linear_sliced(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _b: Option<&Parameter>,
        _in_features: usize,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Linear)
    }

    fn batch_norm(&mut self, _x: Value, _bn: &BatchNorm2d) -> Value {
        self.plan.replay(&mut self.arena, RecKind::BatchNorm)
    }

    fn batch_norm_sliced(&mut self, _x: Value, _bn: &BatchNorm2d, _channels: usize) -> Value {
        self.plan.replay(&mut self.arena, RecKind::BatchNorm)
    }

    fn relu_decay(&mut self, _x: Value, _alpha: f32) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Relu)
    }

    fn relu6_decay(&mut self, _x: Value, _alpha: f32) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Relu6)
    }

    fn max_pool(&mut self, _x: Value, _geom: ConvGeometry) -> Value {
        self.plan.replay(&mut self.arena, RecKind::MaxPool)
    }

    fn avg_pool(&mut self, _x: Value, _geom: ConvGeometry) -> Value {
        self.plan.replay(&mut self.arena, RecKind::AvgPool)
    }

    fn global_avg_pool(&mut self, _x: Value) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Gap)
    }

    fn add(&mut self, _a: Value, _b: Value) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Add)
    }
}

/// Identity activation test: slopes are clamped to `[0, 1]`, so
/// `alpha >= 1` means exactly `max(x, x) = x` (and the ReLU6 correction
/// term is multiplied by zero).
fn is_identity_alpha(alpha: f32) -> bool {
    alpha >= 1.0
}

/// Working state of the arena-assignment/liveness pass (pass B of [`build`]).
struct Liveness<'a> {
    /// Uses left per canonical value id (op inputs + 1 for the final output).
    remaining: Vec<usize>,
    val_home: Vec<Option<usize>>,
    home_units: Vec<usize>,
    /// Homes currently unoccupied, available for reuse.
    free: Vec<usize>,
    live_units: usize,
    peak_units: usize,
    val_dims: &'a [Vec<usize>],
}

impl Liveness<'_> {
    fn unit_of(&self, id: usize) -> usize {
        self.val_dims[id][1..].iter().product()
    }

    /// Best-fit home acquisition, mirroring `InferCtx::alloc`: smallest free
    /// home that fits, else grow the largest free home, else a new home.
    fn acquire(&mut self, need: usize) -> usize {
        let mut best: Option<usize> = None;
        for (pos, &h) in self.free.iter().enumerate() {
            if self.home_units[h] >= need
                && best.is_none_or(|bp: usize| self.home_units[self.free[bp]] > self.home_units[h])
            {
                best = Some(pos);
            }
        }
        if best.is_none() && !self.free.is_empty() {
            let largest = (0..self.free.len())
                .max_by_key(|&p| self.home_units[self.free[p]])
                .expect("non-empty free list");
            self.home_units[self.free[largest]] = need;
            best = Some(largest);
        }
        match best {
            Some(pos) => self.free.swap_remove(pos),
            None => {
                self.home_units.push(need);
                self.home_units.len() - 1
            }
        }
    }

    /// Records one use of `id`; on its last use the value dies, and (unless
    /// its tensor moves to the output via `Inherit`) its buffer returns to
    /// the arena after the current action.
    fn consume(&mut self, id: usize, free_after: &mut Vec<usize>, return_home: bool) {
        self.remaining[id] -= 1;
        if self.remaining[id] == 0 {
            self.live_units -= self.unit_of(id);
            if return_home {
                free_after.push(id);
                if let Some(h) = self.val_home[id] {
                    self.free.push(h);
                }
            }
        }
    }

    /// Accounts a newly-live output of `unit` per-sample f32s.
    fn store(&mut self, unit: usize) {
        self.live_units += unit;
        self.peak_units = self.peak_units.max(self.live_units);
    }
}

/// Per-op int8 lowering decisions for [`QuantPolicy::Auto`]: `true` means
/// Pass A emits the quantized kernel for the op at that index.
///
/// Int8 pays only when the GEMM saving outruns the activation-quantize pass
/// it forces in front of the kernel, so shallow or tiny layers stay f32.
/// The thresholds come from per-action profiles of the benchmark families
/// on the int8 target machine (DESIGN.md §5j):
///
/// - **Depthwise** always quantizes — the u8/i8 stencil beats the f32 rows
///   even counting its own input quantize.
/// - **Inverted-residual chains** (the pointwise-expand → depthwise →
///   pointwise-project triples Pass F fuses) decide as one unit, so fusion
///   never has to split a chain over precision: quantized iff the expand
///   input depth reaches `MIN_CHAIN_C` (the expand GEMM's reduction depth —
///   at `k = 4` the i8 microkernel runs one maddubs quad and saves nothing)
///   and the depthwise output plane reaches `MIN_SPATIAL` pixels (below
///   that, per-call fixed costs dominate both GEMMs).
/// - **Standalone convs** need `m, k >= MIN_DENSE` and an output plane of
///   `MIN_SPATIAL` — a 3x3 stem from 3 channels (`k = 27`) loses to the
///   f32 implicit GEMM once the quantized im2col pack is charged.
/// - **Linears** need `m, k >= MIN_DENSE` (their `n` is the batch size;
///   the win scales with `m` alone).
fn quant_policy(ops: &[RecOp], val_dims: &[Vec<usize>], rec_uses: &[usize]) -> Vec<bool> {
    const MIN_DENSE: usize = 32;
    const MIN_CHAIN_C: usize = 8;
    const MIN_SPATIAL: usize = 64;
    let pointwise = |g: &ConvGeometry| {
        g.kh == 1 && g.kw == 1 && g.sh == 1 && g.sw == 1 && g.ph == 0 && g.pw == 0
    };
    // Follows op `i`'s output through the directly-following foldable tail
    // (one single-use batch norm, then one single-use activation — exactly
    // what Pass A's peephole consumes) and returns the index past the tail
    // plus the value the next consumer reads.
    let fold_tail = |i: usize, out: usize| -> (usize, usize) {
        let mut j = i + 1;
        let mut tail = out;
        if rec_uses[tail] == 1 {
            if let Some(RecOp::BatchNorm { x, out, .. }) = ops.get(j) {
                if *x == tail {
                    tail = *out;
                    j += 1;
                }
            }
        }
        if rec_uses[tail] == 1 {
            match ops.get(j) {
                Some(RecOp::Relu { x, out, .. }) | Some(RecOp::Relu6 { x, out, .. })
                    if *x == tail =>
                {
                    tail = *out;
                    j += 1;
                }
                _ => {}
            }
        }
        (j, tail)
    };
    let mut policy: Vec<bool> = ops
        .iter()
        .map(|op| match op {
            RecOp::Depthwise { .. } => true,
            RecOp::Conv { w, out, .. } => {
                let d = w.dims();
                let od = &val_dims[*out];
                d[0] >= MIN_DENSE && d[1] * d[2] * d[3] >= MIN_DENSE && od[2] * od[3] >= MIN_SPATIAL
            }
            RecOp::Linear { w, .. } => {
                let (m, k) = w.shape().rc();
                m >= MIN_DENSE && k >= MIN_DENSE
            }
            _ => true,
        })
        .collect();
    // Chain pass: override all three members of each expand → depthwise →
    // project triple with the chain-level decision.
    let mut i = 0;
    while i < ops.len() {
        let chain = (|| {
            let RecOp::Conv {
                w: ew,
                out: e_out,
                geom: eg,
                ..
            } = &ops[i]
            else {
                return None;
            };
            if !pointwise(eg) {
                return None;
            }
            let (j, tail) = fold_tail(i, *e_out);
            let Some(RecOp::Depthwise {
                x: dx, out: d_out, ..
            }) = ops.get(j)
            else {
                return None;
            };
            if *dx != tail || rec_uses[tail] != 1 {
                return None;
            }
            let (j2, tail2) = fold_tail(j, *d_out);
            let Some(RecOp::Conv {
                x: px, geom: pg, ..
            }) = ops.get(j2)
            else {
                return None;
            };
            if *px != tail2 || rec_uses[tail2] != 1 || !pointwise(pg) {
                return None;
            }
            let od = &val_dims[*d_out];
            Some((
                j,
                j2,
                ew.dims()[1] >= MIN_CHAIN_C && od[2] * od[3] >= MIN_SPATIAL,
            ))
        })();
        if let Some((j, j2, q)) = chain {
            policy[i] = q;
            policy[j] = q;
            policy[j2] = q;
            i = j2 + 1;
        } else {
            i += 1;
        }
    }
    policy
}

/// The rewrite + arena-assignment pass: recorded ops in, compiled plan out.
///
/// `quant`, when present, holds per-action input scales (indexed by the
/// action order this pass emits, which is identical with or without it) and
/// switches eligible dense conv/linear/depthwise ops to their int8 kernels
/// — every eligible op under [`QuantPolicy::All`], the shape-filtered
/// subset computed by [`quant_policy`] under [`QuantPolicy::Auto`].
fn build(
    rec: &Recorder,
    final_val: usize,
    in_dims: Vec<usize>,
    opts: PlanOptions,
    quant: Option<&[f32]>,
) -> CompiledPlan {
    let Recorder { vals, ops } = rec;
    let nvals = vals.len();
    let val_dims: Vec<Vec<usize>> = vals.iter().map(|t| t.dims().to_vec()).collect();

    // Rec-level use counts (for fold/fuse legality): one per op input, plus
    // the final output.
    let mut rec_uses = vec![0usize; nvals];
    for op in ops {
        let (x, b) = op.inputs();
        rec_uses[x] += 1;
        if let Some(b) = b {
            rec_uses[b] += 1;
        }
    }
    rec_uses[final_val] += 1;

    // Which ops lower to int8 this build (all-true unless a quantized build
    // asked for the shape-driven mixed-precision policy).
    let qpol: Vec<bool> = match (quant, opts.quant_policy) {
        (Some(_), QuantPolicy::Auto) => quant_policy(ops, &val_dims, &rec_uses),
        _ => vec![true; ops.len()],
    };

    // --- Pass A: peephole rewrite into actions over canonical value ids ---
    let mut canon: Vec<usize> = (0..nvals).collect();
    let mut actions: Vec<Action> = Vec::new();
    let mut rec_meta: Vec<(RecKind, Option<usize>, usize)> = Vec::with_capacity(ops.len());
    let mut packed_bytes = 0usize;
    let mut i = 0;
    while i < ops.len() {
        let kind = ops[i].kind();
        match &ops[i] {
            RecOp::Conv { x, out, w, b, geom } | RecOp::Depthwise { x, out, w, b, geom } => {
                let depthwise = kind == RecKind::Depthwise;
                let (mut w, mut b) = (w.clone(), b.clone());
                let mut tail = *out;
                let mut consumed = 0usize;
                // Fold a directly-following single-use batch norm.
                if opts.fold_bn && rec_uses[tail] == 1 {
                    if let Some(RecOp::BatchNorm {
                        x: bx,
                        out: bout,
                        snap,
                    }) = ops.get(i + 1)
                    {
                        if *bx == tail {
                            let (wf, bf) = if depthwise {
                                fold_bn_depthwise(&w, b.as_ref(), snap)
                            } else {
                                fold_bn(&w, b.as_ref(), snap)
                            };
                            w = wf;
                            b = Some(bf);
                            canon[*bout] = tail;
                            tail = *bout;
                            consumed += 1;
                        }
                    }
                }
                // Fuse (or elide) a directly-following single-use activation.
                let mut act = Epilogue::None;
                if rec_uses[tail] == 1 {
                    match ops.get(i + 1 + consumed) {
                        Some(RecOp::Relu {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu { alpha: *alpha };
                            }
                            canon[*rout] = canon[tail];
                            consumed += 1;
                        }
                        Some(RecOp::Relu6 {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu6 { alpha: *alpha };
                            }
                            canon[*rout] = canon[tail];
                            consumed += 1;
                        }
                        _ => {}
                    }
                }
                let ai = actions.len();
                let kernel = if depthwise {
                    if let Some(scales) = quant.filter(|_| qpol[i]) {
                        let d = w.dims().to_vec();
                        let qw = QDepthwiseW::pack(w.as_slice(), d[0], d[1], d[2]);
                        packed_bytes += qw.bytes();
                        Kernel::QDepthwise {
                            qw,
                            x_scale: scales[ai],
                            bias: b,
                            geom: *geom,
                            act,
                        }
                    } else {
                        Kernel::Depthwise {
                            w,
                            b,
                            geom: *geom,
                            act,
                        }
                    }
                } else if let Some(scales) = quant.filter(|_| qpol[i]) {
                    let d = w.dims().to_vec();
                    let qw = QPackedW::pack(w.as_slice(), d[0], d[1] * d[2] * d[3]);
                    packed_bytes += qw.bytes();
                    Kernel::QConv {
                        qw,
                        x_scale: scales[ai],
                        bias: b,
                        geom: *geom,
                        act,
                    }
                } else {
                    let d = w.dims().to_vec();
                    let wp = PackedA::pack(w.as_slice(), false, d[0], d[1] * d[2] * d[3]);
                    packed_bytes += wp.bytes();
                    Kernel::Conv {
                        wp,
                        bias: b,
                        geom: *geom,
                        act,
                    }
                };
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel,
                    mode: ExecMode::Fresh, // assigned in pass B
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                for j in 1..=consumed {
                    rec_meta.push((ops[i + j].kind(), None, canon[ops[i + j].out()]));
                }
                i += 1 + consumed;
            }
            RecOp::Linear { x, out, w, b } => {
                let tail = *out;
                let mut consumed = 0usize;
                let mut act = Epilogue::None;
                if rec_uses[tail] == 1 {
                    match ops.get(i + 1) {
                        Some(RecOp::Relu {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu { alpha: *alpha };
                            }
                            canon[*rout] = tail;
                            consumed += 1;
                        }
                        Some(RecOp::Relu6 {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu6 { alpha: *alpha };
                            }
                            canon[*rout] = tail;
                            consumed += 1;
                        }
                        _ => {}
                    }
                }
                let (out_f, in_f) = w.shape().rc();
                let ai = actions.len();
                let kernel = if let Some(scales) = quant.filter(|_| qpol[i]) {
                    let qw = QPackedW::pack(w.as_slice(), out_f, in_f);
                    packed_bytes += qw.bytes();
                    Kernel::QLinear {
                        qw,
                        x_scale: scales[ai],
                        bias: b.clone(),
                        act,
                    }
                } else {
                    // y = x W^T: the weight is the logical [in_f, out_f]
                    // right operand stored transposed, matching `matmul_nt`.
                    let wp = PackedB::pack(w.as_slice(), true, in_f, out_f);
                    packed_bytes += wp.bytes();
                    Kernel::Linear {
                        wp,
                        bias: b.clone(),
                        act,
                    }
                };
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel,
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                for j in 1..=consumed {
                    rec_meta.push((ops[i + j].kind(), None, canon[ops[i + j].out()]));
                }
                i += 1 + consumed;
            }
            RecOp::BatchNorm { x, out, snap } => {
                let invstd = eltwise::bn_invstd(&snap.running_var(), snap.eps());
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel: Kernel::BatchNorm {
                        gamma: snap.gamma().value(),
                        beta: snap.beta().value(),
                        mean: snap.running_mean(),
                        invstd,
                    },
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
            RecOp::Relu { x, out, alpha } | RecOp::Relu6 { x, out, alpha } => {
                if is_identity_alpha(*alpha) {
                    // Standalone identity activation (PLT endpoint): pure alias.
                    canon[*out] = canon[*x];
                    rec_meta.push((kind, None, canon[*out]));
                } else {
                    let kernel = if kind == RecKind::Relu {
                        Kernel::Relu { alpha: *alpha }
                    } else {
                        Kernel::Relu6 { alpha: *alpha }
                    };
                    let ai = actions.len();
                    actions.push(Action {
                        x: canon[*x],
                        out: canon[*out],
                        out_dims: val_dims[*out].clone(),
                        kernel,
                        mode: ExecMode::Fresh,
                        free_after: Vec::new(),
                        early_free: Vec::new(),
                    });
                    rec_meta.push((kind, Some(ai), canon[*out]));
                }
                i += 1;
            }
            RecOp::MaxPool { x, out, geom } | RecOp::AvgPool { x, out, geom } => {
                let kernel = if kind == RecKind::MaxPool {
                    Kernel::MaxPool { geom: *geom }
                } else {
                    Kernel::AvgPool { geom: *geom }
                };
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel,
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
            RecOp::Gap { x, out } => {
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel: Kernel::Gap,
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
            RecOp::Add { a, b, out } => {
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*a],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel: Kernel::Add { rhs: canon[*b] },
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
        }
    }
    let final_out = canon[final_val];

    // --- Pass F: fuse pointwise-expand → depthwise → pointwise-project ---
    // Consecutive action triples forming an inverted-residual body collapse
    // into one strip-tiled [`Kernel::Fused`] action when both intermediate
    // values are single-use and neither is the plan output. Runs after
    // Pass A so quantization scales (indexed by pre-fusion action order)
    // are already bound into the sub-kernels, and before Pass B so the
    // `[E, H, W]` intermediates never receive arena homes — fusion shrinks
    // `arena_bytes`, never grows it.
    if opts.fuse {
        let mut uses = vec![0usize; nvals];
        for a in &actions {
            uses[a.x] += 1;
            if let Kernel::Add { rhs } = a.kernel {
                uses[rhs] += 1;
            }
        }
        uses[final_out] += 1;
        let pointwise = |g: &ConvGeometry| {
            g.kh == 1 && g.kw == 1 && g.sh == 1 && g.sw == 1 && g.ph == 0 && g.pw == 0
        };
        let fusable = |acts: &[Action], i: usize| -> bool {
            if i + 2 >= acts.len() {
                return false;
            }
            let (a0, a1, a2) = (&acts[i], &acts[i + 1], &acts[i + 2]);
            let e_pw = match &a0.kernel {
                Kernel::Conv { geom, .. } | Kernel::QConv { geom, .. } => pointwise(geom),
                _ => false,
            };
            let d_dw = matches!(
                a1.kernel,
                Kernel::Depthwise { .. } | Kernel::QDepthwise { .. }
            );
            let p_pw = match &a2.kernel {
                Kernel::Conv { geom, .. } | Kernel::QConv { geom, .. } => pointwise(geom),
                _ => false,
            };
            e_pw
                && d_dw
                && p_pw
                // Precision-homogeneous only: the fused runner executes all
                // three stages in one numeric domain. The Auto quant policy
                // already decides chains as a unit, so this only rejects
                // triples the policy never meant to be chains.
                && a0.kernel.is_quant() == a1.kernel.is_quant()
                && a1.kernel.is_quant() == a2.kernel.is_quant()
                && a1.x == a0.out
                && a2.x == a1.out
                && uses[a0.out] == 1
                && uses[a1.out] == 1
                && a0.out != final_out
                && a1.out != final_out
        };
        // Greedy non-overlapping left-to-right match.
        let mut fuse_at = vec![false; actions.len()];
        let mut i = 0;
        while i < actions.len() {
            if fusable(&actions, i) {
                fuse_at[i] = true;
                i += 3;
            } else {
                i += 1;
            }
        }
        if fuse_at.iter().any(|&f| f) {
            let mut old: Vec<Option<Action>> =
                std::mem::take(&mut actions).into_iter().map(Some).collect();
            let mut old2new: Vec<Option<usize>> = vec![None; old.len()];
            // Swallowed intermediates alias to the block's final output so
            // replay hands back a live value for the covered rec ops.
            let mut val_alias: Vec<usize> = (0..nvals).collect();
            let mut i = 0;
            while i < old.len() {
                if fuse_at[i] {
                    let a0 = old[i].take().expect("pass F take");
                    let a1 = old[i + 1].take().expect("pass F take");
                    let a2 = old[i + 2].take().expect("pass F take");
                    val_alias[a0.out] = a2.out;
                    val_alias[a1.out] = a2.out;
                    old2new[i] = Some(actions.len());
                    actions.push(Action {
                        x: a0.x,
                        out: a2.out,
                        out_dims: a2.out_dims,
                        kernel: Kernel::Fused {
                            expand: Box::new(a0.kernel),
                            dw: Box::new(a1.kernel),
                            project: Box::new(a2.kernel),
                        },
                        mode: ExecMode::Fresh, // assigned in pass B
                        free_after: Vec::new(),
                        early_free: Vec::new(),
                    });
                    i += 3;
                } else {
                    old2new[i] = Some(actions.len());
                    actions.push(old[i].take().expect("pass F take"));
                    i += 1;
                }
            }
            for (_, act_opt, out) in rec_meta.iter_mut() {
                *act_opt = act_opt.and_then(|ai| old2new[ai]);
                *out = val_alias[*out];
            }
        }
    }

    // --- Pass B: arena assignment + liveness over the emitted actions ---
    let mut remaining = vec![0usize; nvals];
    for a in &actions {
        remaining[a.x] += 1;
        if let Kernel::Add { rhs } = a.kernel {
            remaining[rhs] += 1;
        }
    }
    remaining[final_out] += 1;

    let mut st = Liveness {
        remaining,
        val_home: vec![None; nvals],
        home_units: Vec::new(),
        free: Vec::new(),
        live_units: val_dims[0][1..].iter().product(), // the bound input
        peak_units: 0,
        val_dims: &val_dims,
    };
    st.peak_units = st.live_units;

    let mut qscratch_units = 0usize;
    for a in actions.iter_mut() {
        let out = a.out;
        let x = a.x;
        let out_unit: usize = a.out_dims[1..].iter().product();
        let in_place = matches!(
            a.kernel,
            Kernel::BatchNorm { .. }
                | Kernel::Relu { .. }
                | Kernel::Relu6 { .. }
                | Kernel::Add { .. }
        );
        let fresh = matches!(
            a.kernel,
            Kernel::MaxPool { .. } | Kernel::AvgPool { .. } | Kernel::Gap
        );
        // Fused blocks quantize strip-wise into their own thread-local
        // scratch (not the arena's), so they take the plain out-of-place
        // path below even when quantized.
        let quantized = matches!(
            a.kernel,
            Kernel::QConv { .. } | Kernel::QLinear { .. } | Kernel::QDepthwise { .. }
        );

        let mut free_after: Vec<usize> = Vec::new();
        if quantized {
            // Quantize-then-free: the f32 input dies into the u8 scratch
            // copy before the output home is acquired, so a dying input's
            // home is immediately reusable for the output. The transient
            // scratch is accounted in f32-equivalent units so `peak_units`
            // stays an honest high-water mark.
            let in_unit = st.unit_of(x);
            qscratch_units = qscratch_units.max(in_unit);
            let q_units = in_unit.div_ceil(4);
            st.live_units += q_units;
            st.peak_units = st.peak_units.max(st.live_units);
            let mut early_free: Vec<usize> = Vec::new();
            st.consume(x, &mut early_free, true);
            let h = st.acquire(out_unit);
            a.mode = ExecMode::OutOfPlace { home: h };
            st.val_home[out] = Some(h);
            st.store(out_unit);
            st.live_units -= q_units;
            a.early_free = early_free;
        } else if in_place {
            // Mirror InferCtx's consume-then-store accounting: the input
            // leaves before the output lands, so same-size in-place ops
            // never bump the peak.
            let inherits = st.remaining[x] == 1 && x != 0;
            st.consume(x, &mut free_after, !inherits);
            if inherits {
                a.mode = ExecMode::Inherit;
                st.val_home[out] = st.val_home[x];
            } else {
                let h = st.acquire(out_unit);
                a.mode = ExecMode::CopyToHome { home: h };
                st.val_home[out] = Some(h);
            }
            st.store(out_unit);
            if let Kernel::Add { rhs } = a.kernel {
                st.consume(rhs, &mut free_after, true);
            }
        } else if fresh {
            a.mode = ExecMode::Fresh;
            st.val_home[out] = None;
            st.store(out_unit);
            st.consume(x, &mut free_after, true);
        } else {
            let h = st.acquire(out_unit);
            a.mode = ExecMode::OutOfPlace { home: h };
            st.val_home[out] = Some(h);
            st.store(out_unit);
            st.consume(x, &mut free_after, true);
        }
        a.free_after = free_after;
    }
    let Liveness {
        val_home,
        home_units,
        peak_units,
        ..
    } = st;

    CompiledPlan {
        actions,
        rec_meta,
        in_dims,
        final_out,
        nvals,
        val_home,
        home_units,
        peak_units,
        packed_bytes,
        qscratch_units,
    }
}

/// Compile-time proof that plans may be shared across threads: every field
/// is plain data or `Arc`-backed tensors, so `Send + Sync` must hold (the
/// serving layer relies on `Arc<CompiledPlan>` replayed concurrently).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledPlan>();
    assert_send_sync::<PlanArena>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{ActKind, Activation, BatchNorm2d, Conv2d, DepthwiseConv2d, Linear};
    use crate::{InferCtx, Module, Sequential};
    use nb_autograd::nodes_allocated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// conv -> bn -> relu -> depthwise -> bn -> relu6 -> gap -> linear,
    /// with randomized bn statistics so folding is non-trivial.
    fn conv_model(rng: &mut StdRng) -> Sequential {
        let bn1 = BatchNorm2d::new(8);
        bn1.set_running_stats(
            Tensor::randn([8], rng),
            Tensor::randn([8], rng).map(|v| v.abs() + 0.5),
        );
        bn1.gamma().set_value(Tensor::randn([8], rng));
        bn1.beta().set_value(Tensor::randn([8], rng));
        let bn2 = BatchNorm2d::new(8);
        bn2.set_running_stats(
            Tensor::randn([8], rng),
            Tensor::randn([8], rng).map(|v| v.abs() + 0.5),
        );
        Sequential::new()
            .push(Conv2d::new(3, 8, ConvGeometry::same(3, 1), true, rng))
            .push(bn1)
            .push(Activation::new(ActKind::Relu))
            .push(DepthwiseConv2d::new(
                8,
                ConvGeometry::same(3, 1),
                false,
                rng,
            ))
            .push(bn2)
            .push(Activation::new(ActKind::Relu6))
            .push(crate::layers::GlobalAvgPool::new())
            .push(Linear::new(8, 4, true, rng))
    }

    fn infer_forward(model: &Sequential, x: &Tensor) -> (Tensor, usize) {
        let mut ctx = InferCtx::new();
        let xv = ctx.input(x.clone());
        let yv = model.forward(&mut ctx, xv);
        let out = ctx.take(yv);
        (out, ctx.peak_bytes())
    }

    #[test]
    fn unfolded_plan_is_bitwise_with_zero_nodes() {
        let mut rng = StdRng::seed_from_u64(10);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let (want, _) = infer_forward(&model, &x);

        let before = nodes_allocated();
        let plan = CompiledPlan::compile_with(
            x.dims(),
            PlanOptions {
                fold_bn: false,
                fuse: false,
                ..PlanOptions::default()
            },
            |f, v| model.forward(f, v),
        );
        let got = plan.run(&x);
        assert_eq!(nodes_allocated(), before, "plan allocated tape nodes");
        assert_eq!(got.dims(), want.dims());
        assert_eq!(got.as_slice(), want.as_slice(), "bitwise parity");
    }

    #[test]
    fn folded_plan_is_close_and_smaller() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let (want, _) = infer_forward(&model, &x);

        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let unfolded = CompiledPlan::compile_with(
            x.dims(),
            PlanOptions {
                fold_bn: false,
                fuse: false,
                ..PlanOptions::default()
            },
            |f, v| model.forward(f, v),
        );
        assert!(
            plan.action_count() < unfolded.action_count(),
            "folding should remove bn/activation actions ({} vs {})",
            plan.action_count(),
            unfolded.action_count()
        );
        let got = plan.run(&x);
        assert!(got.allclose(&want, 1e-4), "folded plan diverged");
        let _ = unfolded.run(&x);
    }

    #[test]
    fn repeated_runs_reuse_arena_and_match_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let mut arena = plan.new_arena();
        let first = plan.run_in(&mut arena, &x);
        let second = plan.run_in(&mut arena, &x);
        assert_eq!(
            first.as_slice(),
            second.as_slice(),
            "runs must be identical"
        );
        // A one-shot run (fresh arena) agrees with the recycled arena.
        assert_eq!(plan.run(&x).as_slice(), first.as_slice());
        // A different batch reuses the same plan and arena.
        let x8 = Tensor::randn([8, 3, 8, 8], &mut rng);
        let big = plan.run_in(&mut arena, &x8);
        assert_eq!(big.dims(), &[8, 4]);
        let (want, _) = infer_forward(&model, &x8);
        assert!(big.allclose(&want, 1e-4));
    }

    #[test]
    fn peak_bytes_no_worse_than_infer_ctx() {
        let mut rng = StdRng::seed_from_u64(13);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let (_, infer_peak) = infer_forward(&model, &x);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let _ = plan.run(&x);
        assert!(
            plan.peak_bytes() <= infer_peak,
            "plan peak {} vs InferCtx {}",
            plan.peak_bytes(),
            infer_peak
        );
        assert!(plan.arena_bytes() > 0);
        assert!(plan.packed_bytes() > 0);
    }

    #[test]
    fn identity_activations_are_elided() {
        let mut rng = StdRng::seed_from_u64(14);
        let conv = Conv2d::new(3, 4, ConvGeometry::same(3, 1), true, &mut rng);
        let act = Activation::new(ActKind::Relu);
        act.slope().set(1.0); // PLT-linearized
        let model = Sequential::new().push(conv).push(act);
        let x = Tensor::randn([1, 3, 6, 6], &mut rng);
        let (want, _) = infer_forward(&model, &x);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        assert_eq!(plan.action_count(), 1, "identity activation not elided");
        let got = plan.run(&x);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn mlp_with_residual_retain_matches_infer_ctx() {
        let mut rng = StdRng::seed_from_u64(15);
        let l1 = Linear::new(6, 6, true, &mut rng);
        let l2 = Linear::new(6, 4, false, &mut rng);
        let x = Tensor::randn([3, 6], &mut rng);
        let fwd = |f: &mut dyn Forward, v: Value| {
            f.retain(v);
            let h = l1.forward(f, v);
            let h = f.relu_decay(h, 0.25);
            let h = f.add(h, v);
            l2.forward(f, h)
        };
        let mut ctx = InferCtx::new();
        let xv = ctx.input(x.clone());
        let yv = fwd(&mut ctx, xv);
        let want = ctx.take(yv);

        let plan = CompiledPlan::compile(x.dims(), fwd);
        let got = plan.run(&x);
        assert_eq!(got.as_slice(), want.as_slice(), "residual path bitwise");
    }

    #[test]
    fn forward_replay_matches_run() {
        let mut rng = StdRng::seed_from_u64(16);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let via_run = plan.run(&x);
        let mut replay = plan.replayer();
        let xv = replay.input(x.clone());
        let yv = model.forward(&mut replay, xv);
        let via_replay = replay.take(yv);
        assert_eq!(via_run.as_slice(), via_replay.as_slice());
    }

    #[test]
    fn arc_shared_plan_replays_concurrently_bitwise() {
        let mut rng = StdRng::seed_from_u64(19);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let plan = std::sync::Arc::new(CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v)));
        let want = plan.run(&x);
        let outputs: Vec<Tensor> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let plan = std::sync::Arc::clone(&plan);
                    let x = x.clone();
                    s.spawn(move || {
                        let mut arena = plan.new_arena();
                        let a = plan.run_in(&mut arena, &x);
                        let b = plan.run_in(&mut arena, &x);
                        assert_eq!(a.as_slice(), b.as_slice());
                        a
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("replay thread"))
                .collect()
        });
        for got in outputs {
            assert_eq!(got.as_slice(), want.as_slice(), "concurrent replay bitwise");
        }
    }

    #[test]
    #[should_panic(expected = "structurally different plan")]
    fn foreign_arena_panics() {
        let mut rng = StdRng::seed_from_u64(20);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([1, 3, 8, 8], &mut rng);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let other = CompiledPlan::compile(&[1, 6], |f, v| {
            let l = Linear::new(6, 2, true, &mut StdRng::seed_from_u64(0));
            l.forward(f, v)
        });
        let mut arena = other.new_arena();
        let _ = plan.run_in(&mut arena, &x);
    }

    #[test]
    #[should_panic(expected = "per-sample shape")]
    fn wrong_input_shape_panics() {
        let mut rng = StdRng::seed_from_u64(17);
        let model = conv_model(&mut rng);
        let plan = CompiledPlan::compile(&[1, 3, 8, 8], |f, v| model.forward(f, v));
        let _ = plan.run(&Tensor::zeros([1, 3, 9, 9]));
    }

    /// Calibration batches for the quantized-plan tests: a few deterministic
    /// randn batches matching the probe shape.
    fn calib_batches(dims: &[usize], n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Tensor::randn(dims.to_vec(), &mut rng))
            .collect()
    }

    /// `compile_quantized` with the Auto shape policy overridden to All —
    /// the kernel-path tests here use deliberately tiny models that Auto
    /// would (correctly) keep in f32.
    fn compile_quantized_all(
        dims: &[usize],
        calib: &[Tensor],
        fwd: impl FnOnce(&mut dyn Forward, Value) -> Value,
    ) -> CompiledPlan {
        CompiledPlan::compile_quantized_with(
            dims,
            PlanOptions {
                quant_policy: QuantPolicy::All,
                ..PlanOptions::default()
            },
            calib,
            fwd,
        )
    }

    #[test]
    fn quantized_plan_tracks_f32_plan() {
        let mut rng = StdRng::seed_from_u64(30);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan = compile_quantized_all(
            x.dims(),
            &calib_batches(x.dims(), quant_calib_batches(), 31),
            |f, v| model.forward(f, v),
        );
        assert!(qplan.is_quantized());
        assert!(!fplan.is_quantized());
        let want = fplan.run(&x);
        let got = qplan.run(&x);
        assert_eq!(got.dims(), want.dims());
        // Int8 PTQ is approximate: bound the error relative to the f32
        // output's dynamic range (the top-1 budget lives in nb-verify).
        let range = max_abs(want.as_slice()).max(1e-6);
        let worst = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= 0.1 * range,
            "quantized output off by {worst} on range {range}"
        );
    }

    #[test]
    fn quantized_plan_is_smaller_and_replay_deterministic() {
        let mut rng = StdRng::seed_from_u64(32);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let calib = calib_batches(x.dims(), 2, 33);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan = compile_quantized_all(x.dims(), &calib, |f, v| model.forward(f, v));
        assert!(
            qplan.packed_bytes() < fplan.packed_bytes(),
            "i8 panels should undercut f32 panels ({} vs {})",
            qplan.packed_bytes(),
            fplan.packed_bytes()
        );
        assert!(
            qplan.peak_bytes() <= fplan.peak_bytes(),
            "quantize-then-free should not raise the peak ({} vs {})",
            qplan.peak_bytes(),
            fplan.peak_bytes()
        );
        // Warm-arena replay is bitwise repeatable, and a one-shot arena
        // agrees (integer accumulation is exact under any schedule).
        let mut arena = qplan.new_arena();
        let first = qplan.run_in(&mut arena, &x);
        let second = qplan.run_in(&mut arena, &x);
        assert_eq!(first.as_slice(), second.as_slice());
        assert_eq!(qplan.run(&x).as_slice(), first.as_slice());
        assert!(arena.resident_bytes() > 0);
    }

    #[test]
    fn quantized_pointwise_and_linear_paths_run() {
        // 1x1 stride-1 conv exercises the materialized-matrix fast path;
        // the trailing linear exercises QLinear with bias.
        let mut rng = StdRng::seed_from_u64(34);
        let model = Sequential::new()
            .push(Conv2d::new(
                3,
                16,
                ConvGeometry::pointwise(),
                true,
                &mut rng,
            ))
            .push(Activation::new(ActKind::Relu))
            .push(crate::layers::GlobalAvgPool::new())
            .push(Linear::new(16, 5, true, &mut rng));
        let x = Tensor::randn([3, 3, 6, 6], &mut rng);
        let calib = calib_batches(x.dims(), 2, 35);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan = compile_quantized_all(x.dims(), &calib, |f, v| model.forward(f, v));
        let want = fplan.run(&x);
        let got = qplan.run(&x);
        let range = max_abs(want.as_slice()).max(1e-6);
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() <= 0.1 * range, "pointwise quant diverged");
        }
        // Replayer path over a quantized plan.
        let mut replay = qplan.replayer();
        let xv = replay.input(x.clone());
        let yv = model.forward(&mut replay, xv);
        assert_eq!(replay.take(yv).as_slice(), got.as_slice());
    }

    #[test]
    fn auto_policy_keeps_tiny_model_f32_bitwise() {
        // A shallow stem conv (k = 27 < 32) into a tiny linear (m = 5):
        // both sit under the Auto thresholds, so the "quantized" plan
        // compiles to pure f32 kernels and owes bitwise parity to the
        // plain plan. (Depthwise layers are excluded on purpose — Auto
        // always lowers those.)
        let mut rng = StdRng::seed_from_u64(40);
        let model = Sequential::new()
            .push(Conv2d::new(3, 16, ConvGeometry::same(3, 1), true, &mut rng))
            .push(Activation::new(ActKind::Relu))
            .push(crate::layers::GlobalAvgPool::new())
            .push(Linear::new(16, 5, true, &mut rng));
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan =
            CompiledPlan::compile_quantized(x.dims(), &calib_batches(x.dims(), 2, 41), |f, v| {
                model.forward(f, v)
            });
        assert!(!qplan.is_quantized(), "Auto should reject every tiny layer");
        assert_eq!(qplan.run(&x).as_slice(), fplan.run(&x).as_slice());
    }

    #[test]
    fn auto_policy_quantizes_wide_chain_as_unit() {
        // An inverted-residual chain over the Auto thresholds (c_in=8,
        // 16x16 plane) quantizes whole — and still fuses, proving the
        // chain decision and Pass F's homogeneity check line up.
        let mut rng = StdRng::seed_from_u64(42);
        let model = Sequential::new()
            .push(Conv2d::new(
                8,
                48,
                ConvGeometry::pointwise(),
                true,
                &mut rng,
            ))
            .push(Activation::new(ActKind::Relu6))
            .push(DepthwiseConv2d::new(
                48,
                ConvGeometry::same(3, 1),
                true,
                &mut rng,
            ))
            .push(Activation::new(ActKind::Relu6))
            .push(Conv2d::new(
                48,
                8,
                ConvGeometry::pointwise(),
                true,
                &mut rng,
            ));
        let x = Tensor::randn([1, 8, 16, 16], &mut rng);
        let qplan =
            CompiledPlan::compile_quantized(x.dims(), &calib_batches(x.dims(), 2, 43), |f, v| {
                model.forward(f, v)
            });
        assert!(qplan.is_quantized(), "chain over thresholds should lower");
        let fused = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        assert_eq!(
            qplan.action_count(),
            fused.action_count(),
            "quantized chain should still fuse to one action"
        );
    }

    #[test]
    #[should_panic(expected = "at least one calibration batch")]
    fn compile_quantized_rejects_empty_calibration() {
        let mut rng = StdRng::seed_from_u64(36);
        let model = conv_model(&mut rng);
        let _ = CompiledPlan::compile_quantized(&[1, 3, 8, 8], &[], |f, v| model.forward(f, v));
    }

    #[test]
    fn quant_calib_batches_default() {
        // The knob is read per call; without the env var it is 4.
        if std::env::var("NB_QUANT_CALIB").is_err() {
            assert_eq!(quant_calib_batches(), 4);
        }
    }

    /// Satellite coverage for random fold configurations without proptest:
    /// sweep channel counts, eps values, and affine/non-affine configs.
    #[test]
    fn bn_fold_sweep_matches_unfused_path() {
        let mut rng = StdRng::seed_from_u64(18);
        for &(c, eps, affine) in &[
            (1usize, 1e-5f32, true),
            (3, 1e-3, false),
            (8, 1e-1, true),
            (13, 1e-7, false),
            (32, 1e-5, true),
        ] {
            let conv = Conv2d::new(3, c, ConvGeometry::same(3, 1), affine, &mut rng);
            let bn = BatchNorm2d::new(c).with_eps(eps);
            bn.set_running_stats(
                Tensor::randn([c], &mut rng),
                Tensor::randn([c], &mut rng).map(|v| v.abs() + 0.1),
            );
            if affine {
                bn.gamma().set_value(Tensor::randn([c], &mut rng));
                bn.beta().set_value(Tensor::randn([c], &mut rng));
            }
            let model = Sequential::new().push(conv).push(bn);
            let x = Tensor::randn([2, 3, 6, 6], &mut rng);
            let (want, _) = infer_forward(&model, &x);
            let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
            let got = plan.run(&x);
            assert!(
                got.allclose(&want, 1e-3),
                "fold sweep c={c} eps={eps} affine={affine}"
            );
        }
    }
}
