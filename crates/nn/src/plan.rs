//! [`CompiledPlan`]: the ahead-of-time compiled serving executor.
//!
//! [`InferCtx`](crate::InferCtx) already skips the tape, but it still pays
//! per-call costs a frozen deployment graph shouldn't: every forward
//! re-packs GEMM weight panels, runs eval-mode batch norm as a separate
//! elementwise pass, and grows thread-local scratch on demand. A
//! `CompiledPlan` moves all of that to a one-time compile step:
//!
//! 1. **Record** — the module's `forward` runs once against a shape-only
//!    recorder (zero tensors, no kernels, no tape nodes), capturing the op
//!    sequence, activation shapes at a probe batch, and parameter snapshots
//!    (sliced exactly as `InferCtx` would slice them).
//! 2. **Rewrite** — eval-mode batch norms fold into their preceding
//!    conv/depthwise weights ([`crate::fold`]); identity activations
//!    (decay slope `alpha >= 1`, the PLT endpoint) are elided; remaining
//!    ReLU/ReLU6 fuse into the producing kernel's epilogue
//!    ([`nb_tensor::Epilogue`]).
//! 3. **Prepack** — every GEMM-backed weight is packed once into panel
//!    format ([`nb_tensor::PackedA`]/[`nb_tensor::PackedB`]) and reused
//!    across calls. Conv replay then runs as a fully implicit GEMM: the
//!    prepacked weight multiplies the input through a virtual im2col view,
//!    so neither GEMM operand touches a scratch matrix at serve time. The
//!    shape-keyed selector (`nb_tensor::selector`) picks each GEMM's
//!    schedule, honoring the `NB_AUTOTUNE` cache when enabled.
//! 4. **Arena** — activation buffers are assigned at compile time by a
//!    best-fit liveness pass over per-sample sizes, so steady-state runs
//!    perform no activation allocation and [`peak_bytes`] is a deterministic
//!    function of the graph and batch size, not of runtime history.
//!
//! With folding disabled ([`PlanOptions`]) the plan is **bitwise identical**
//! to `InferCtx` at every thread width: prepacked panels are byte-identical
//! to on-demand packing, fused epilogues delegate to the same
//! [`nb_tensor::eltwise`] expressions, and unfused batch norm uses the same
//! `bn_invstd`/`bn_apply_inplace` kernels. Folding reassociates the
//! per-channel scale into the convolution's multiply-accumulate chain, so a
//! folded plan is exact in infinite precision and ULP-bounded in f32 (the
//! parity suite in `nb-verify` checks both regimes).
//!
//! A compiled plan is **immutable after compile** (`Send + Sync`): every
//! replay borrows the plan shared (`&self`) and keeps its mutable state —
//! activation values, arena buffers, batch size, replay cursor — in a
//! caller-owned [`PlanArena`]. That is what lets a multi-tenant server wrap
//! one plan in an `Arc` and replay it concurrently from many worker
//! threads, each with its own arena. [`CompiledPlan::run`] is the one-shot
//! entry point (fresh arena per call); steady-state loops should hold a
//! [`PlanArena`] from [`CompiledPlan::new_arena`] and call
//! [`CompiledPlan::run_in`] so no activation allocation happens per batch.
//!
//! A plan replays only the module it was compiled from: the [`Forward`]
//! implementation ([`PlanReplay`], from [`CompiledPlan::replayer`]) walks
//! the recorded op sequence with a cursor and debug-asserts each call
//! against the recorded kind. Use [`CompiledPlan::run`] for the common
//! whole-model case.
//!
//! [`peak_bytes`]: CompiledPlan::peak_bytes

use crate::fold::{fold_bn, fold_bn_depthwise};
use crate::forward::Forward;
use crate::layers::BatchNorm2d;
use crate::Parameter;
use nb_autograd::Value;
use nb_tensor::{
    activation_scale, avgpool2d, conv2d_packed_into, depthwise_conv2d_fused_into, eltwise,
    global_avg_pool, max_abs, maxpool2d, qgemm_conv, qgemm_conv_mat, qgemm_linear,
    quantize_activations, ConvGeometry, Epilogue, PackedA, PackedB, QIm2colRef, QPackedW, Tensor,
};

/// Number of calibration batches [`CompiledPlan::compile_quantized`] callers
/// should draw, from `NB_QUANT_CALIB` (default 4). The plan itself accepts
/// whatever slice it is given; this helper just centralizes the knob so
/// verify, bench, and ci read the same value.
pub fn quant_calib_batches() -> usize {
    std::env::var("NB_QUANT_CALIB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// Compile-time switches for [`CompiledPlan::compile_with`].
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Fold eval-mode batch norms into their preceding conv/depthwise
    /// weights. On (the default), the plan is fastest but ULP-bounded
    /// rather than bitwise against `InferCtx`; off, it is bitwise.
    pub fold_bn: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { fold_bn: true }
    }
}

/// Discriminant of a recorded op, used to check replay alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecKind {
    Conv,
    Depthwise,
    Linear,
    BatchNorm,
    Relu,
    Relu6,
    MaxPool,
    AvgPool,
    Gap,
    Add,
}

/// One op captured by the recording pass. Parameter tensors are snapshotted
/// (and pre-sliced, for the NetAug `_sliced` variants) exactly as `InferCtx`
/// would materialize them.
enum RecOp {
    Conv {
        x: usize,
        out: usize,
        w: Tensor,
        b: Option<Tensor>,
        geom: ConvGeometry,
    },
    Depthwise {
        x: usize,
        out: usize,
        w: Tensor,
        b: Option<Tensor>,
        geom: ConvGeometry,
    },
    Linear {
        x: usize,
        out: usize,
        w: Tensor,
        b: Option<Tensor>,
    },
    BatchNorm {
        x: usize,
        out: usize,
        snap: BatchNorm2d,
    },
    Relu {
        x: usize,
        out: usize,
        alpha: f32,
    },
    Relu6 {
        x: usize,
        out: usize,
        alpha: f32,
    },
    MaxPool {
        x: usize,
        out: usize,
        geom: ConvGeometry,
    },
    AvgPool {
        x: usize,
        out: usize,
        geom: ConvGeometry,
    },
    Gap {
        x: usize,
        out: usize,
    },
    Add {
        a: usize,
        b: usize,
        out: usize,
    },
}

impl RecOp {
    fn kind(&self) -> RecKind {
        match self {
            RecOp::Conv { .. } => RecKind::Conv,
            RecOp::Depthwise { .. } => RecKind::Depthwise,
            RecOp::Linear { .. } => RecKind::Linear,
            RecOp::BatchNorm { .. } => RecKind::BatchNorm,
            RecOp::Relu { .. } => RecKind::Relu,
            RecOp::Relu6 { .. } => RecKind::Relu6,
            RecOp::MaxPool { .. } => RecKind::MaxPool,
            RecOp::AvgPool { .. } => RecKind::AvgPool,
            RecOp::Gap { .. } => RecKind::Gap,
            RecOp::Add { .. } => RecKind::Add,
        }
    }

    fn out(&self) -> usize {
        match *self {
            RecOp::Conv { out, .. }
            | RecOp::Depthwise { out, .. }
            | RecOp::Linear { out, .. }
            | RecOp::BatchNorm { out, .. }
            | RecOp::Relu { out, .. }
            | RecOp::Relu6 { out, .. }
            | RecOp::MaxPool { out, .. }
            | RecOp::AvgPool { out, .. }
            | RecOp::Gap { out, .. }
            | RecOp::Add { out, .. } => out,
        }
    }

    fn inputs(&self) -> (usize, Option<usize>) {
        match *self {
            RecOp::Conv { x, .. }
            | RecOp::Depthwise { x, .. }
            | RecOp::Linear { x, .. }
            | RecOp::BatchNorm { x, .. }
            | RecOp::Relu { x, .. }
            | RecOp::Relu6 { x, .. }
            | RecOp::MaxPool { x, .. }
            | RecOp::AvgPool { x, .. }
            | RecOp::Gap { x, .. } => (x, None),
            RecOp::Add { a, b, .. } => (a, Some(b)),
        }
    }
}

/// Shape-only recorder: implements [`Forward`] over zero tensors, capturing
/// the op list without running any kernel.
struct Recorder {
    vals: Vec<Tensor>,
    ops: Vec<RecOp>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            vals: Vec::new(),
            ops: Vec::new(),
        }
    }

    fn push_val(&mut self, dims: Vec<usize>) -> usize {
        self.vals.push(Tensor::zeros(dims));
        self.vals.len() - 1
    }

    fn dims(&self, v: Value) -> Vec<usize> {
        self.vals[v.index()].dims().to_vec()
    }
}

/// Reconstructs a standalone eval-mode batch-norm snapshot from explicit
/// statistics, so compile-time folding can call the real [`fold_bn`].
fn snap_bn(gamma: Tensor, beta: Tensor, mean: Tensor, var: Tensor, eps: f32) -> BatchNorm2d {
    let c = gamma.dims()[0];
    let bn = BatchNorm2d::new(c).with_eps(eps);
    bn.gamma().set_value(gamma);
    bn.beta().set_value(beta);
    bn.set_running_stats(mean, var);
    bn
}

impl Forward for Recorder {
    fn training(&self) -> bool {
        false
    }

    fn input(&mut self, t: Tensor) -> Value {
        self.vals.push(t);
        Value::from_index(self.vals.len() - 1)
    }

    fn value(&self, v: Value) -> &Tensor {
        &self.vals[v.index()]
    }

    fn take(&mut self, v: Value) -> Tensor {
        self.vals[v.index()].clone()
    }

    fn retain(&mut self, _v: Value) {}

    fn conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value();
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], wt.dims()[0], ho, wo]);
        self.ops.push(RecOp::Conv {
            x: x.index(),
            out,
            w: wt,
            b: b.map(|p| p.value()),
            geom,
        });
        Value::from_index(out)
    }

    fn conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        out_c: usize,
        in_c: usize,
        geom: ConvGeometry,
    ) -> Value {
        let wt = w.value().narrow_out_in((0, out_c), (0, in_c));
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], out_c, ho, wo]);
        self.ops.push(RecOp::Conv {
            x: x.index(),
            out,
            w: wt,
            b: None,
            geom,
        });
        Value::from_index(out)
    }

    fn depthwise_conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], d[1], ho, wo]);
        self.ops.push(RecOp::Depthwise {
            x: x.index(),
            out,
            w: w.value(),
            b: b.map(|p| p.value()),
            geom,
        });
        Value::from_index(out)
    }

    fn depthwise_conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        channels: usize,
        geom: ConvGeometry,
    ) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], channels, ho, wo]);
        self.ops.push(RecOp::Depthwise {
            x: x.index(),
            out,
            w: w.value().narrow0(0, channels),
            b: None,
            geom,
        });
        Value::from_index(out)
    }

    fn linear(&mut self, x: Value, w: &Parameter, b: Option<&Parameter>) -> Value {
        let wt = w.value();
        let d = self.dims(x);
        let out = self.push_val(vec![d[0], wt.dims()[0]]);
        self.ops.push(RecOp::Linear {
            x: x.index(),
            out,
            w: wt,
            b: b.map(|p| p.value()),
        });
        Value::from_index(out)
    }

    fn linear_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        in_features: usize,
    ) -> Value {
        let wv = w.value();
        let (out_f, big_in) = wv.shape().rc();
        // Materialize the sliced weight exactly as `InferCtx` does: the
        // leading `in_features` columns of every row.
        let mut wk = Tensor::zeros([out_f, in_features]);
        {
            let dst = wk.as_mut_slice();
            let src = wv.as_slice();
            for r in 0..out_f {
                dst[r * in_features..(r + 1) * in_features]
                    .copy_from_slice(&src[r * big_in..r * big_in + in_features]);
            }
        }
        let d = self.dims(x);
        let out = self.push_val(vec![d[0], out_f]);
        self.ops.push(RecOp::Linear {
            x: x.index(),
            out,
            w: wk,
            b: b.map(|p| p.value()),
        });
        Value::from_index(out)
    }

    fn batch_norm(&mut self, x: Value, bn: &BatchNorm2d) -> Value {
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::BatchNorm {
            x: x.index(),
            out,
            snap: snap_bn(
                bn.gamma().value(),
                bn.beta().value(),
                bn.running_mean(),
                bn.running_var(),
                bn.eps(),
            ),
        });
        Value::from_index(out)
    }

    fn batch_norm_sliced(&mut self, x: Value, bn: &BatchNorm2d, channels: usize) -> Value {
        let k = channels;
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::BatchNorm {
            x: x.index(),
            out,
            snap: snap_bn(
                bn.gamma().value().narrow0(0, k),
                bn.beta().value().narrow0(0, k),
                bn.running_mean().narrow0(0, k),
                bn.running_var().narrow0(0, k),
                bn.eps(),
            ),
        });
        Value::from_index(out)
    }

    fn relu_decay(&mut self, x: Value, alpha: f32) -> Value {
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::Relu {
            x: x.index(),
            out,
            alpha,
        });
        Value::from_index(out)
    }

    fn relu6_decay(&mut self, x: Value, alpha: f32) -> Value {
        let d = self.dims(x);
        let out = self.push_val(d);
        self.ops.push(RecOp::Relu6 {
            x: x.index(),
            out,
            alpha,
        });
        Value::from_index(out)
    }

    fn max_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], d[1], ho, wo]);
        self.ops.push(RecOp::MaxPool {
            x: x.index(),
            out,
            geom,
        });
        Value::from_index(out)
    }

    fn avg_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        let d = self.dims(x);
        let (ho, wo) = geom.output_hw(d[2], d[3]);
        let out = self.push_val(vec![d[0], d[1], ho, wo]);
        self.ops.push(RecOp::AvgPool {
            x: x.index(),
            out,
            geom,
        });
        Value::from_index(out)
    }

    fn global_avg_pool(&mut self, x: Value) -> Value {
        let d = self.dims(x);
        let out = self.push_val(vec![d[0], d[1]]);
        self.ops.push(RecOp::Gap { x: x.index(), out });
        Value::from_index(out)
    }

    fn add(&mut self, a: Value, b: Value) -> Value {
        let d = self.dims(a);
        let out = self.push_val(d);
        self.ops.push(RecOp::Add {
            a: a.index(),
            b: b.index(),
            out,
        });
        Value::from_index(out)
    }
}

/// The kernel an [`Action`] executes.
enum Kernel {
    Conv {
        wp: PackedA,
        bias: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    /// Int8 dense conv: per-channel quantized prepacked weights multiplying
    /// the per-tensor quantized input through a virtual u8 im2col view, with
    /// dequant + bias + activation fused in the GEMM epilogue.
    QConv {
        qw: QPackedW,
        /// Per-tensor input scale, calibrated at compile time.
        x_scale: f32,
        bias: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    /// Int8 linear: quantized twin of `Linear` (bias and activation ride the
    /// dequant epilogue; quantized plans owe no bitwise parity to `InferCtx`).
    QLinear {
        qw: QPackedW,
        x_scale: f32,
        bias: Option<Tensor>,
        act: Epilogue,
    },
    Depthwise {
        w: Tensor,
        b: Option<Tensor>,
        geom: ConvGeometry,
        act: Epilogue,
    },
    Linear {
        wp: PackedB,
        bias: Option<Tensor>,
        act: Epilogue,
    },
    BatchNorm {
        gamma: Tensor,
        beta: Tensor,
        mean: Tensor,
        invstd: Tensor,
    },
    Relu {
        alpha: f32,
    },
    Relu6 {
        alpha: f32,
    },
    MaxPool {
        geom: ConvGeometry,
    },
    AvgPool {
        geom: ConvGeometry,
    },
    Gap,
    Add {
        rhs: usize,
    },
}

/// How an action obtains its output buffer.
#[derive(Clone, Copy, Debug)]
enum ExecMode {
    /// Kernel writes every element into the arena home `home`.
    OutOfPlace { home: usize },
    /// In-place op whose input dies here: the input tensor (and its home,
    /// if any) moves to the output.
    Inherit,
    /// In-place op whose input is still needed (or is the caller-owned
    /// input tensor): copy into the arena home `home`, then mutate.
    CopyToHome { home: usize },
    /// Kernel allocates its own output (pooling); not arena-backed.
    Fresh,
}

/// One executable step of a compiled plan.
struct Action {
    x: usize,
    out: usize,
    /// Output dims at the probe batch; dim 0 is replaced by the run batch.
    out_dims: Vec<usize>,
    kernel: Kernel,
    mode: ExecMode,
    /// Canonical value ids whose last use is this action; their buffers
    /// return to the arena afterwards.
    free_after: Vec<usize>,
    /// Quantized actions only: value ids released *before* the output home
    /// is acquired. The f32 input is dead once it has been quantized into
    /// the arena's u8 scratch, so a dying input's home is immediately
    /// reusable for the output — this is what keeps a quantized plan's peak
    /// at or below the f32 plan's on GEMM-bound graphs.
    early_free: Vec<usize>,
}

/// An eval-only executor compiled once from a module's forward pass.
///
/// Build with [`CompiledPlan::compile`] (folding on) or
/// [`CompiledPlan::compile_with`], then call [`CompiledPlan::run`] per
/// batch — or hold a [`PlanArena`] and call [`CompiledPlan::run_in`] to
/// keep steady-state replay allocation-free. The batch size may differ
/// from the probe batch (arena buffers scale linearly); per-sample dims
/// must match.
///
/// The plan itself is immutable after compile and `Send + Sync`: share it
/// behind an `Arc` and replay it concurrently, one arena per thread or
/// request.
pub struct CompiledPlan {
    actions: Vec<Action>,
    /// Per recorded op: expected kind, action to execute (None when the op
    /// was folded/elided), canonical output value id.
    rec_meta: Vec<(RecKind, Option<usize>, usize)>,
    in_dims: Vec<usize>,
    final_out: usize,
    /// Number of canonical value slots an arena must provide.
    nvals: usize,
    val_home: Vec<Option<usize>>,
    /// Per-sample f32 counts of every arena home, fixed at compile time.
    home_units: Vec<usize>,
    /// Deterministic per-sample high-water mark of live activation f32s
    /// (same accounting as `InferCtx::peak_bytes`); quantized actions also
    /// account their transient u8 scratch here, in f32-equivalent units.
    peak_units: usize,
    packed_bytes: usize,
    /// Largest per-sample u8 count any quantized action needs for its input
    /// scratch (0 for pure-f32 plans).
    qscratch_units: usize,
}

/// Per-request replay state for a [`CompiledPlan`]: the live activation
/// values, the recycled arena buffers, the bound batch size, and the
/// replay cursor.
///
/// Arenas are cheap to create ([`CompiledPlan::new_arena`]) and grow their
/// buffers lazily on first replay; reusing one across runs keeps
/// steady-state inference allocation-free. An arena is tied to the plan
/// (or an identically compiled plan) that created it — [`CompiledPlan::run_in`]
/// panics on a structural mismatch.
pub struct PlanArena {
    values: Vec<Option<Tensor>>,
    homes: Vec<Vec<f32>>,
    /// Quantized-input scratch, shared by every quantized action in the
    /// plan (replay is sequential within an arena); high-water sized.
    qscratch: Vec<u8>,
    last_batch: usize,
    cursor: usize,
}

impl PlanArena {
    /// Bytes currently resident in the arena's recycled buffers and live
    /// values (what reusing this arena keeps allocated between runs).
    pub fn resident_bytes(&self) -> usize {
        let homes: usize = self.homes.iter().map(|h| h.len()).sum();
        let vals: usize = self
            .values
            .iter()
            .flatten()
            .map(|t| t.as_slice().len())
            .sum();
        (homes + vals) * std::mem::size_of::<f32>() + self.qscratch.len()
    }
}

impl CompiledPlan {
    /// Compiles a plan (with batch-norm folding) from a forward pass probed
    /// at input shape `dims` (`dims[0]` is the probe batch; runs may use
    /// any batch).
    ///
    /// # Panics
    ///
    /// Panics if the forward uses training-mode semantics or inconsistent
    /// shapes.
    pub fn compile(dims: &[usize], fwd: impl FnOnce(&mut dyn Forward, Value) -> Value) -> Self {
        Self::compile_with(dims, PlanOptions::default(), fwd)
    }

    /// [`CompiledPlan::compile`] with explicit [`PlanOptions`].
    ///
    /// # Panics
    ///
    /// Panics if the forward uses training-mode semantics or inconsistent
    /// shapes.
    pub fn compile_with(
        dims: &[usize],
        opts: PlanOptions,
        fwd: impl FnOnce(&mut dyn Forward, Value) -> Value,
    ) -> Self {
        let mut rec = Recorder::new();
        let x = rec.input(Tensor::zeros(dims.to_vec()));
        let y = fwd(&mut rec, x);
        build(&rec, y.index(), dims.to_vec(), opts, None)
    }

    /// Compiles an **int8 post-training-quantized** plan: batch norms fold
    /// as in [`CompiledPlan::compile`], then every dense conv and linear is
    /// rewritten to an i8 kernel with per-channel symmetric weights and a
    /// per-tensor input scale calibrated from `calib` (a few representative
    /// batches; see [`quant_calib_batches`] for the conventional count).
    ///
    /// Calibration records each GEMM input's max-abs by replaying the f32
    /// plan over the calibration batches, so the quantized plan's scales
    /// line up with its own fused graph (post-folding activations, not the
    /// recorded pre-fusion ones). Depthwise convs, batch norms, pooling and
    /// residual adds stay f32 — they are bandwidth-bound, and keeping them
    /// exact confines all quantization error to the GEMM operands.
    ///
    /// The result replays through every existing entry point ([`run`],
    /// [`run_in`], [`replayer`], nb-serve) unchanged, and its replay is
    /// bitwise deterministic across thread widths: integer accumulation is
    /// exact under any schedule, so the only approximation is quantization
    /// itself, which the nb-verify `+plan-quant` accuracy budget bounds.
    ///
    /// [`run`]: CompiledPlan::run
    /// [`run_in`]: CompiledPlan::run_in
    /// [`replayer`]: CompiledPlan::replayer
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty, if a calibration batch's per-sample dims
    /// differ from `dims`, or on any [`CompiledPlan::compile`] failure.
    pub fn compile_quantized(
        dims: &[usize],
        calib: &[Tensor],
        fwd: impl FnOnce(&mut dyn Forward, Value) -> Value,
    ) -> Self {
        assert!(
            !calib.is_empty(),
            "compile_quantized needs at least one calibration batch"
        );
        let mut rec = Recorder::new();
        let x = rec.input(Tensor::zeros(dims.to_vec()));
        let y = fwd(&mut rec, x);
        let opts = PlanOptions::default();
        let fplan = build(&rec, y.index(), dims.to_vec(), opts, None);
        let mut maxima = vec![0.0f32; fplan.actions.len()];
        let mut arena = fplan.new_arena();
        for batch in calib {
            fplan.run_calibrate(&mut arena, batch, &mut maxima);
        }
        let scales: Vec<f32> = maxima.iter().map(|&m| activation_scale(m)).collect();
        build(&rec, y.index(), dims.to_vec(), opts, Some(&scales))
    }

    /// Creates a replay arena sized for this plan. Buffers grow lazily on
    /// first use; reuse one arena across runs ([`CompiledPlan::run_in`]) to
    /// keep steady-state replay allocation-free.
    pub fn new_arena(&self) -> PlanArena {
        PlanArena {
            values: vec![None; self.nvals],
            homes: self.home_units.iter().map(|_| Vec::new()).collect(),
            qscratch: Vec::new(),
            last_batch: self.in_dims[0],
            cursor: 0,
        }
    }

    /// Runs the compiled graph over one batch with a one-shot arena,
    /// returning the final value.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s per-sample dims differ from the compiled shape.
    pub fn run(&self, x: &Tensor) -> Tensor {
        let mut arena = self.new_arena();
        self.run_in(&mut arena, x)
    }

    /// Runs the compiled graph over one batch, recycling `arena`'s buffers
    /// (the steady-state serving path: no activation allocation once the
    /// arena is warm).
    ///
    /// # Panics
    ///
    /// Panics if `x`'s per-sample dims differ from the compiled shape, or
    /// if `arena` was created by a structurally different plan.
    pub fn run_in(&self, arena: &mut PlanArena, x: &Tensor) -> Tensor {
        let v = self.bind(arena, x.clone());
        debug_assert_eq!(v.index(), 0);
        for ai in 0..self.actions.len() {
            self.exec(arena, ai);
        }
        self.take_value(arena, Value::from_index(self.final_out))
    }

    /// Wraps this plan and a fresh arena into a [`Forward`] executor that
    /// replays the recorded op sequence call-by-call (for callers that walk
    /// `Module::forward` themselves instead of using [`CompiledPlan::run`]).
    pub fn replayer(&self) -> PlanReplay<'_> {
        PlanReplay {
            plan: self,
            arena: self.new_arena(),
        }
    }

    /// Deterministic peak of live activation bytes at the probe batch — the
    /// compile-time liveness high-water mark, directly comparable to
    /// [`crate::InferCtx::peak_bytes`] at the same batch.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes_at(self.in_dims[0])
    }

    /// [`CompiledPlan::peak_bytes`] scaled to an arbitrary run batch (the
    /// liveness peak is linear in the batch).
    pub fn peak_bytes_at(&self, batch: usize) -> usize {
        self.peak_units * batch * std::mem::size_of::<f32>()
    }

    /// Total arena footprint in bytes at the probe batch: what a warm
    /// [`PlanArena`] for this plan keeps resident between runs.
    pub fn arena_bytes(&self) -> usize {
        self.arena_bytes_at(self.in_dims[0])
    }

    /// [`CompiledPlan::arena_bytes`] scaled to an arbitrary run batch.
    pub fn arena_bytes_at(&self, batch: usize) -> usize {
        self.home_units.iter().sum::<usize>() * batch * std::mem::size_of::<f32>()
            + self.qscratch_units * batch
    }

    /// Whether this plan carries int8 GEMM actions (built by
    /// [`CompiledPlan::compile_quantized`]).
    pub fn is_quantized(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a.kernel, Kernel::QConv { .. } | Kernel::QLinear { .. }))
    }

    /// Bytes held by prepacked weight panels (including retained raw
    /// operands for the small-problem dispatch).
    pub fn packed_bytes(&self) -> usize {
        self.packed_bytes
    }

    /// Number of executable actions after folding/elision.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Binds the run input into `arena`, reclaiming the previous run's
    /// buffers first.
    fn bind(&self, arena: &mut PlanArena, t: Tensor) -> Value {
        assert_eq!(
            t.dims().len(),
            self.in_dims.len(),
            "CompiledPlan input rank"
        );
        assert_eq!(
            &t.dims()[1..],
            &self.in_dims[1..],
            "CompiledPlan input per-sample shape"
        );
        assert_eq!(
            arena.values.len(),
            self.nvals,
            "PlanArena belongs to a structurally different plan"
        );
        assert_eq!(
            arena.homes.len(),
            self.home_units.len(),
            "PlanArena belongs to a structurally different plan"
        );
        arena.last_batch = t.dims()[0];
        arena.cursor = 0;
        // Reclaim last run's buffers into the arena before rebinding.
        let PlanArena { values, homes, .. } = arena;
        for (id, slot) in values.iter_mut().enumerate() {
            if let Some(t) = slot.take() {
                if let Some(h) = self.val_home[id] {
                    if !t.is_shared() {
                        homes[h] = t.into_vec();
                    }
                }
            }
        }
        arena.values[0] = Some(t);
        Value::from_index(0)
    }

    /// Deep-copies a live value out of `arena` (the arena keeps its buffer;
    /// final outputs are small relative to the activations saved).
    fn take_value(&self, arena: &PlanArena, v: Value) -> Tensor {
        let t = arena.values[v.index()]
            .as_ref()
            .expect("value not live in compiled plan");
        Tensor::from_vec(t.as_slice().to_vec(), t.dims().to_vec()).expect("take copy")
    }

    /// Executes action `ai` against `arena`'s values/buffer state.
    fn exec(&self, arena: &mut PlanArena, ai: usize) {
        let Self {
            actions, val_home, ..
        } = self;
        let PlanArena {
            values,
            homes,
            qscratch,
            last_batch,
            ..
        } = arena;
        let a = &actions[ai];
        let mut dims = a.out_dims.clone();
        dims[0] = *last_batch;
        let unit: usize = dims[1..].iter().product();
        let need = unit * *last_batch;

        let take_home = |homes: &mut Vec<Vec<f32>>, h: usize| -> Vec<f32> {
            let mut buf = std::mem::take(&mut homes[h]);
            if buf.len() != need {
                buf.resize(need, 0.0);
            }
            buf
        };

        let out_t = match (&a.kernel, a.mode) {
            (
                Kernel::Conv {
                    wp,
                    bias,
                    geom,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("conv input live");
                conv2d_packed_into(
                    xt,
                    wp,
                    bias.as_ref().map(Tensor::as_slice),
                    *geom,
                    *act,
                    &mut buf,
                );
                Tensor::from_vec(buf, dims).expect("conv output shape")
            }
            (
                Kernel::QConv {
                    qw,
                    x_scale,
                    bias,
                    geom,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                // Quantize the f32 input into the arena's u8 scratch, then
                // release the (now dead) input *before* taking the output
                // home — pass B may have aliased the two.
                let (c_in, h, w_in) = {
                    let xt = values[a.x].as_ref().expect("qconv input live");
                    let d = xt.dims();
                    let src = xt.as_slice();
                    if qscratch.len() < src.len() {
                        qscratch.resize(src.len(), Q_SCRATCH_FILL);
                    }
                    quantize_activations(src, *x_scale, &mut qscratch[..src.len()]);
                    (d[1], d[2], d[3])
                };
                release_values(&a.early_free, values, val_home, homes);
                let mut buf = take_home(homes, home);
                let (ho, wo) = geom.output_hw(h, w_in);
                let unit_in = c_in * h * w_in;
                let unit_out = qw.m() * ho * wo;
                let pointwise = geom.kh == 1
                    && geom.kw == 1
                    && geom.sh == 1
                    && geom.sw == 1
                    && geom.ph == 0
                    && geom.pw == 0;
                for s in 0..*last_batch {
                    let qs = &qscratch[s * unit_in..(s + 1) * unit_in];
                    let cs = &mut buf[s * unit_out..(s + 1) * unit_out];
                    let bias = bias.as_ref().map(Tensor::as_slice);
                    if pointwise {
                        qgemm_conv_mat(qw, qs, cs, ho * wo, *x_scale, bias, *act);
                    } else {
                        let qim = QIm2colRef {
                            x: qs,
                            c_in,
                            h,
                            w: w_in,
                            geom: *geom,
                            ho,
                            wo,
                        };
                        qgemm_conv(qw, &qim, cs, *x_scale, bias, *act);
                    }
                }
                Tensor::from_vec(buf, dims).expect("qconv output shape")
            }
            (
                Kernel::QLinear {
                    qw,
                    x_scale,
                    bias,
                    act,
                },
                ExecMode::OutOfPlace { home },
            ) => {
                let in_f = qw.k();
                {
                    let xt = values[a.x].as_ref().expect("qlinear input live");
                    let src = xt.as_slice();
                    if qscratch.len() < src.len() {
                        qscratch.resize(src.len(), Q_SCRATCH_FILL);
                    }
                    quantize_activations(src, *x_scale, &mut qscratch[..src.len()]);
                }
                release_values(&a.early_free, values, val_home, homes);
                let mut buf = take_home(homes, home);
                qgemm_linear(
                    qw,
                    &qscratch[..*last_batch * in_f],
                    *last_batch,
                    &mut buf,
                    *x_scale,
                    bias.as_ref().map(Tensor::as_slice),
                    *act,
                );
                Tensor::from_vec(buf, dims).expect("qlinear output shape")
            }
            (Kernel::Depthwise { w, b, geom, act }, ExecMode::OutOfPlace { home }) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("depthwise input live");
                depthwise_conv2d_fused_into(xt, w, b.as_ref(), *geom, *act, &mut buf);
                Tensor::from_vec(buf, dims).expect("depthwise output shape")
            }
            (Kernel::Linear { wp, bias, act }, ExecMode::OutOfPlace { home }) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("linear input live");
                // With a bias the order must match InferCtx (matmul, then
                // add_bias2, then activation); without one the activation
                // rides the GEMM epilogue.
                let gemm_act = if bias.is_some() { Epilogue::None } else { *act };
                nb_tensor::gemm_b_packed(
                    xt.as_slice(),
                    false,
                    wp,
                    &mut buf,
                    *last_batch,
                    None,
                    gemm_act,
                );
                let mut t = Tensor::from_vec(buf, dims).expect("linear output shape");
                if let Some(b) = bias {
                    eltwise::add_bias2_inplace(&mut t, b);
                    act.apply(t.as_mut_slice());
                }
                t
            }
            (kernel, ExecMode::Inherit) => {
                let mut t = values[a.x].take().expect("in-place input live");
                apply_inplace(kernel, &mut t, values);
                t
            }
            (kernel, ExecMode::CopyToHome { home }) => {
                let mut buf = take_home(homes, home);
                let xt = values[a.x].as_ref().expect("in-place input live");
                buf.copy_from_slice(xt.as_slice());
                let mut t = Tensor::from_vec(buf, dims).expect("in-place output shape");
                apply_inplace(kernel, &mut t, values);
                t
            }
            (Kernel::MaxPool { geom }, ExecMode::Fresh) => {
                let (t, _idx) = maxpool2d(values[a.x].as_ref().expect("pool input live"), *geom);
                t
            }
            (Kernel::AvgPool { geom }, ExecMode::Fresh) => {
                avgpool2d(values[a.x].as_ref().expect("pool input live"), *geom)
            }
            (Kernel::Gap, ExecMode::Fresh) => {
                global_avg_pool(values[a.x].as_ref().expect("pool input live"))
            }
            _ => unreachable!("kernel/mode combination not produced by compile"),
        };
        values[a.out] = Some(out_t);
        release_values(&a.free_after, values, val_home, homes);
    }

    /// [`CompiledPlan::run_in`] with a max-abs probe: before each GEMM-backed
    /// action executes, folds its live f32 input's max-abs into
    /// `maxima[action]`. This is the calibration pass behind
    /// [`CompiledPlan::compile_quantized`] — action indices line up between
    /// the f32 and quantized builds because quantization changes kernels,
    /// never the fusion decisions.
    fn run_calibrate(&self, arena: &mut PlanArena, x: &Tensor, maxima: &mut [f32]) {
        let v = self.bind(arena, x.clone());
        debug_assert_eq!(v.index(), 0);
        for (ai, mx) in maxima.iter_mut().enumerate().take(self.actions.len()) {
            let a = &self.actions[ai];
            if matches!(a.kernel, Kernel::Conv { .. } | Kernel::Linear { .. }) {
                let xt = arena.values[a.x].as_ref().expect("calibration input live");
                *mx = mx.max(max_abs(xt.as_slice()));
            }
            self.exec(arena, ai);
        }
    }

    /// Replays one recorded op: executes its action (if any) and returns
    /// the canonical output handle.
    fn replay(&self, arena: &mut PlanArena, kind: RecKind) -> Value {
        let i = arena.cursor;
        arena.cursor += 1;
        let (rec_kind, action, out) = self.rec_meta[i];
        debug_assert_eq!(
            rec_kind, kind,
            "CompiledPlan replayed against a different forward than it was compiled from"
        );
        if let Some(ai) = action {
            self.exec(arena, ai);
        }
        Value::from_index(out)
    }
}

/// Fresh u8 scratch bytes start at the activation zero point; every byte the
/// kernels read is overwritten by `quantize_activations` first, so the fill
/// value is cosmetic.
const Q_SCRATCH_FILL: u8 = nb_tensor::Q_ZERO;

/// Returns dying values' buffers to their arena homes (shared-buffer tensors
/// are dropped instead — their storage is borrowed, not arena-owned).
fn release_values(
    ids: &[usize],
    values: &mut [Option<Tensor>],
    val_home: &[Option<usize>],
    homes: &mut [Vec<f32>],
) {
    for &id in ids {
        if let Some(t) = values[id].take() {
            if let Some(h) = val_home[id] {
                if !t.is_shared() {
                    homes[h] = t.into_vec();
                }
            }
        }
    }
}

/// Applies an in-place kernel to an exclusively-owned tensor.
fn apply_inplace(kernel: &Kernel, t: &mut Tensor, values: &[Option<Tensor>]) {
    match kernel {
        Kernel::BatchNorm {
            gamma,
            beta,
            mean,
            invstd,
        } => eltwise::bn_apply_inplace(t, gamma, beta, mean, invstd),
        Kernel::Relu { alpha } => eltwise::relu_decay_inplace(t, *alpha),
        Kernel::Relu6 { alpha } => eltwise::relu6_decay_inplace(t, *alpha),
        Kernel::Add { rhs } => t.add_assign(values[*rhs].as_ref().expect("add rhs live")),
        _ => unreachable!("not an in-place kernel"),
    }
}

/// [`Forward`] adapter over a shared [`CompiledPlan`] and an owned
/// [`PlanArena`]: replays the recorded op sequence call-by-call.
///
/// Built by [`CompiledPlan::replayer`]. Multiple replayers over one plan
/// may run concurrently — the plan is borrowed shared; all mutation lands
/// in this replayer's arena.
pub struct PlanReplay<'p> {
    plan: &'p CompiledPlan,
    arena: PlanArena,
}

impl Forward for PlanReplay<'_> {
    fn training(&self) -> bool {
        false
    }

    fn input(&mut self, t: Tensor) -> Value {
        self.plan.bind(&mut self.arena, t)
    }

    fn value(&self, v: Value) -> &Tensor {
        self.arena.values[v.index()]
            .as_ref()
            .expect("value not live in compiled plan")
    }

    fn take(&mut self, v: Value) -> Tensor {
        // Deep copy so the arena keeps its buffer; final outputs are small
        // (logits / detection grids) relative to the activations saved.
        self.plan.take_value(&self.arena, v)
    }

    fn retain(&mut self, _v: Value) {}

    fn conv2d(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _b: Option<&Parameter>,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Conv)
    }

    fn conv2d_sliced(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _out_c: usize,
        _in_c: usize,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Conv)
    }

    fn depthwise_conv2d(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _b: Option<&Parameter>,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Depthwise)
    }

    fn depthwise_conv2d_sliced(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _channels: usize,
        _geom: ConvGeometry,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Depthwise)
    }

    fn linear(&mut self, _x: Value, _w: &Parameter, _b: Option<&Parameter>) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Linear)
    }

    fn linear_sliced(
        &mut self,
        _x: Value,
        _w: &Parameter,
        _b: Option<&Parameter>,
        _in_features: usize,
    ) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Linear)
    }

    fn batch_norm(&mut self, _x: Value, _bn: &BatchNorm2d) -> Value {
        self.plan.replay(&mut self.arena, RecKind::BatchNorm)
    }

    fn batch_norm_sliced(&mut self, _x: Value, _bn: &BatchNorm2d, _channels: usize) -> Value {
        self.plan.replay(&mut self.arena, RecKind::BatchNorm)
    }

    fn relu_decay(&mut self, _x: Value, _alpha: f32) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Relu)
    }

    fn relu6_decay(&mut self, _x: Value, _alpha: f32) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Relu6)
    }

    fn max_pool(&mut self, _x: Value, _geom: ConvGeometry) -> Value {
        self.plan.replay(&mut self.arena, RecKind::MaxPool)
    }

    fn avg_pool(&mut self, _x: Value, _geom: ConvGeometry) -> Value {
        self.plan.replay(&mut self.arena, RecKind::AvgPool)
    }

    fn global_avg_pool(&mut self, _x: Value) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Gap)
    }

    fn add(&mut self, _a: Value, _b: Value) -> Value {
        self.plan.replay(&mut self.arena, RecKind::Add)
    }
}

/// Identity activation test: slopes are clamped to `[0, 1]`, so
/// `alpha >= 1` means exactly `max(x, x) = x` (and the ReLU6 correction
/// term is multiplied by zero).
fn is_identity_alpha(alpha: f32) -> bool {
    alpha >= 1.0
}

/// Working state of the arena-assignment/liveness pass (pass B of [`build`]).
struct Liveness<'a> {
    /// Uses left per canonical value id (op inputs + 1 for the final output).
    remaining: Vec<usize>,
    val_home: Vec<Option<usize>>,
    home_units: Vec<usize>,
    /// Homes currently unoccupied, available for reuse.
    free: Vec<usize>,
    live_units: usize,
    peak_units: usize,
    val_dims: &'a [Vec<usize>],
}

impl Liveness<'_> {
    fn unit_of(&self, id: usize) -> usize {
        self.val_dims[id][1..].iter().product()
    }

    /// Best-fit home acquisition, mirroring `InferCtx::alloc`: smallest free
    /// home that fits, else grow the largest free home, else a new home.
    fn acquire(&mut self, need: usize) -> usize {
        let mut best: Option<usize> = None;
        for (pos, &h) in self.free.iter().enumerate() {
            if self.home_units[h] >= need
                && best.is_none_or(|bp: usize| self.home_units[self.free[bp]] > self.home_units[h])
            {
                best = Some(pos);
            }
        }
        if best.is_none() && !self.free.is_empty() {
            let largest = (0..self.free.len())
                .max_by_key(|&p| self.home_units[self.free[p]])
                .expect("non-empty free list");
            self.home_units[self.free[largest]] = need;
            best = Some(largest);
        }
        match best {
            Some(pos) => self.free.swap_remove(pos),
            None => {
                self.home_units.push(need);
                self.home_units.len() - 1
            }
        }
    }

    /// Records one use of `id`; on its last use the value dies, and (unless
    /// its tensor moves to the output via `Inherit`) its buffer returns to
    /// the arena after the current action.
    fn consume(&mut self, id: usize, free_after: &mut Vec<usize>, return_home: bool) {
        self.remaining[id] -= 1;
        if self.remaining[id] == 0 {
            self.live_units -= self.unit_of(id);
            if return_home {
                free_after.push(id);
                if let Some(h) = self.val_home[id] {
                    self.free.push(h);
                }
            }
        }
    }

    /// Accounts a newly-live output of `unit` per-sample f32s.
    fn store(&mut self, unit: usize) {
        self.live_units += unit;
        self.peak_units = self.peak_units.max(self.live_units);
    }
}

/// The rewrite + arena-assignment pass: recorded ops in, compiled plan out.
///
/// `quant`, when present, holds per-action input scales (indexed by the
/// action order this pass emits, which is identical with or without it) and
/// switches every dense conv/linear to its int8 kernel.
fn build(
    rec: &Recorder,
    final_val: usize,
    in_dims: Vec<usize>,
    opts: PlanOptions,
    quant: Option<&[f32]>,
) -> CompiledPlan {
    let Recorder { vals, ops } = rec;
    let nvals = vals.len();
    let val_dims: Vec<Vec<usize>> = vals.iter().map(|t| t.dims().to_vec()).collect();

    // Rec-level use counts (for fold/fuse legality): one per op input, plus
    // the final output.
    let mut rec_uses = vec![0usize; nvals];
    for op in ops {
        let (x, b) = op.inputs();
        rec_uses[x] += 1;
        if let Some(b) = b {
            rec_uses[b] += 1;
        }
    }
    rec_uses[final_val] += 1;

    // --- Pass A: peephole rewrite into actions over canonical value ids ---
    let mut canon: Vec<usize> = (0..nvals).collect();
    let mut actions: Vec<Action> = Vec::new();
    let mut rec_meta: Vec<(RecKind, Option<usize>, usize)> = Vec::with_capacity(ops.len());
    let mut packed_bytes = 0usize;
    let mut i = 0;
    while i < ops.len() {
        let kind = ops[i].kind();
        match &ops[i] {
            RecOp::Conv { x, out, w, b, geom } | RecOp::Depthwise { x, out, w, b, geom } => {
                let depthwise = kind == RecKind::Depthwise;
                let (mut w, mut b) = (w.clone(), b.clone());
                let mut tail = *out;
                let mut consumed = 0usize;
                // Fold a directly-following single-use batch norm.
                if opts.fold_bn && rec_uses[tail] == 1 {
                    if let Some(RecOp::BatchNorm {
                        x: bx,
                        out: bout,
                        snap,
                    }) = ops.get(i + 1)
                    {
                        if *bx == tail {
                            let (wf, bf) = if depthwise {
                                fold_bn_depthwise(&w, b.as_ref(), snap)
                            } else {
                                fold_bn(&w, b.as_ref(), snap)
                            };
                            w = wf;
                            b = Some(bf);
                            canon[*bout] = tail;
                            tail = *bout;
                            consumed += 1;
                        }
                    }
                }
                // Fuse (or elide) a directly-following single-use activation.
                let mut act = Epilogue::None;
                if rec_uses[tail] == 1 {
                    match ops.get(i + 1 + consumed) {
                        Some(RecOp::Relu {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu { alpha: *alpha };
                            }
                            canon[*rout] = canon[tail];
                            consumed += 1;
                        }
                        Some(RecOp::Relu6 {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu6 { alpha: *alpha };
                            }
                            canon[*rout] = canon[tail];
                            consumed += 1;
                        }
                        _ => {}
                    }
                }
                let ai = actions.len();
                let kernel = if depthwise {
                    Kernel::Depthwise {
                        w,
                        b,
                        geom: *geom,
                        act,
                    }
                } else if let Some(scales) = quant {
                    let d = w.dims().to_vec();
                    let qw = QPackedW::pack(w.as_slice(), d[0], d[1] * d[2] * d[3]);
                    packed_bytes += qw.bytes();
                    Kernel::QConv {
                        qw,
                        x_scale: scales[ai],
                        bias: b,
                        geom: *geom,
                        act,
                    }
                } else {
                    let d = w.dims().to_vec();
                    let wp = PackedA::pack(w.as_slice(), false, d[0], d[1] * d[2] * d[3]);
                    packed_bytes += wp.bytes();
                    Kernel::Conv {
                        wp,
                        bias: b,
                        geom: *geom,
                        act,
                    }
                };
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel,
                    mode: ExecMode::Fresh, // assigned in pass B
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                for j in 1..=consumed {
                    rec_meta.push((ops[i + j].kind(), None, canon[ops[i + j].out()]));
                }
                i += 1 + consumed;
            }
            RecOp::Linear { x, out, w, b } => {
                let tail = *out;
                let mut consumed = 0usize;
                let mut act = Epilogue::None;
                if rec_uses[tail] == 1 {
                    match ops.get(i + 1) {
                        Some(RecOp::Relu {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu { alpha: *alpha };
                            }
                            canon[*rout] = tail;
                            consumed += 1;
                        }
                        Some(RecOp::Relu6 {
                            x: rx,
                            out: rout,
                            alpha,
                        }) if *rx == tail => {
                            if !is_identity_alpha(*alpha) {
                                act = Epilogue::Relu6 { alpha: *alpha };
                            }
                            canon[*rout] = tail;
                            consumed += 1;
                        }
                        _ => {}
                    }
                }
                let (out_f, in_f) = w.shape().rc();
                let ai = actions.len();
                let kernel = if let Some(scales) = quant {
                    let qw = QPackedW::pack(w.as_slice(), out_f, in_f);
                    packed_bytes += qw.bytes();
                    Kernel::QLinear {
                        qw,
                        x_scale: scales[ai],
                        bias: b.clone(),
                        act,
                    }
                } else {
                    // y = x W^T: the weight is the logical [in_f, out_f]
                    // right operand stored transposed, matching `matmul_nt`.
                    let wp = PackedB::pack(w.as_slice(), true, in_f, out_f);
                    packed_bytes += wp.bytes();
                    Kernel::Linear {
                        wp,
                        bias: b.clone(),
                        act,
                    }
                };
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel,
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                for j in 1..=consumed {
                    rec_meta.push((ops[i + j].kind(), None, canon[ops[i + j].out()]));
                }
                i += 1 + consumed;
            }
            RecOp::BatchNorm { x, out, snap } => {
                let invstd = eltwise::bn_invstd(&snap.running_var(), snap.eps());
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel: Kernel::BatchNorm {
                        gamma: snap.gamma().value(),
                        beta: snap.beta().value(),
                        mean: snap.running_mean(),
                        invstd,
                    },
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
            RecOp::Relu { x, out, alpha } | RecOp::Relu6 { x, out, alpha } => {
                if is_identity_alpha(*alpha) {
                    // Standalone identity activation (PLT endpoint): pure alias.
                    canon[*out] = canon[*x];
                    rec_meta.push((kind, None, canon[*out]));
                } else {
                    let kernel = if kind == RecKind::Relu {
                        Kernel::Relu { alpha: *alpha }
                    } else {
                        Kernel::Relu6 { alpha: *alpha }
                    };
                    let ai = actions.len();
                    actions.push(Action {
                        x: canon[*x],
                        out: canon[*out],
                        out_dims: val_dims[*out].clone(),
                        kernel,
                        mode: ExecMode::Fresh,
                        free_after: Vec::new(),
                        early_free: Vec::new(),
                    });
                    rec_meta.push((kind, Some(ai), canon[*out]));
                }
                i += 1;
            }
            RecOp::MaxPool { x, out, geom } | RecOp::AvgPool { x, out, geom } => {
                let kernel = if kind == RecKind::MaxPool {
                    Kernel::MaxPool { geom: *geom }
                } else {
                    Kernel::AvgPool { geom: *geom }
                };
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel,
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
            RecOp::Gap { x, out } => {
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*x],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel: Kernel::Gap,
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
            RecOp::Add { a, b, out } => {
                let ai = actions.len();
                actions.push(Action {
                    x: canon[*a],
                    out: canon[*out],
                    out_dims: val_dims[*out].clone(),
                    kernel: Kernel::Add { rhs: canon[*b] },
                    mode: ExecMode::Fresh,
                    free_after: Vec::new(),
                    early_free: Vec::new(),
                });
                rec_meta.push((kind, Some(ai), canon[*out]));
                i += 1;
            }
        }
    }
    let final_out = canon[final_val];

    // --- Pass B: arena assignment + liveness over the emitted actions ---
    let mut remaining = vec![0usize; nvals];
    for a in &actions {
        remaining[a.x] += 1;
        if let Kernel::Add { rhs } = a.kernel {
            remaining[rhs] += 1;
        }
    }
    remaining[final_out] += 1;

    let mut st = Liveness {
        remaining,
        val_home: vec![None; nvals],
        home_units: Vec::new(),
        free: Vec::new(),
        live_units: val_dims[0][1..].iter().product(), // the bound input
        peak_units: 0,
        val_dims: &val_dims,
    };
    st.peak_units = st.live_units;

    let mut qscratch_units = 0usize;
    for a in actions.iter_mut() {
        let out = a.out;
        let x = a.x;
        let out_unit: usize = a.out_dims[1..].iter().product();
        let in_place = matches!(
            a.kernel,
            Kernel::BatchNorm { .. }
                | Kernel::Relu { .. }
                | Kernel::Relu6 { .. }
                | Kernel::Add { .. }
        );
        let fresh = matches!(
            a.kernel,
            Kernel::MaxPool { .. } | Kernel::AvgPool { .. } | Kernel::Gap
        );
        let quantized = matches!(a.kernel, Kernel::QConv { .. } | Kernel::QLinear { .. });

        let mut free_after: Vec<usize> = Vec::new();
        if quantized {
            // Quantize-then-free: the f32 input dies into the u8 scratch
            // copy before the output home is acquired, so a dying input's
            // home is immediately reusable for the output. The transient
            // scratch is accounted in f32-equivalent units so `peak_units`
            // stays an honest high-water mark.
            let in_unit = st.unit_of(x);
            qscratch_units = qscratch_units.max(in_unit);
            let q_units = in_unit.div_ceil(4);
            st.live_units += q_units;
            st.peak_units = st.peak_units.max(st.live_units);
            let mut early_free: Vec<usize> = Vec::new();
            st.consume(x, &mut early_free, true);
            let h = st.acquire(out_unit);
            a.mode = ExecMode::OutOfPlace { home: h };
            st.val_home[out] = Some(h);
            st.store(out_unit);
            st.live_units -= q_units;
            a.early_free = early_free;
        } else if in_place {
            // Mirror InferCtx's consume-then-store accounting: the input
            // leaves before the output lands, so same-size in-place ops
            // never bump the peak.
            let inherits = st.remaining[x] == 1 && x != 0;
            st.consume(x, &mut free_after, !inherits);
            if inherits {
                a.mode = ExecMode::Inherit;
                st.val_home[out] = st.val_home[x];
            } else {
                let h = st.acquire(out_unit);
                a.mode = ExecMode::CopyToHome { home: h };
                st.val_home[out] = Some(h);
            }
            st.store(out_unit);
            if let Kernel::Add { rhs } = a.kernel {
                st.consume(rhs, &mut free_after, true);
            }
        } else if fresh {
            a.mode = ExecMode::Fresh;
            st.val_home[out] = None;
            st.store(out_unit);
            st.consume(x, &mut free_after, true);
        } else {
            let h = st.acquire(out_unit);
            a.mode = ExecMode::OutOfPlace { home: h };
            st.val_home[out] = Some(h);
            st.store(out_unit);
            st.consume(x, &mut free_after, true);
        }
        a.free_after = free_after;
    }
    let Liveness {
        val_home,
        home_units,
        peak_units,
        ..
    } = st;

    CompiledPlan {
        actions,
        rec_meta,
        in_dims,
        final_out,
        nvals,
        val_home,
        home_units,
        peak_units,
        packed_bytes,
        qscratch_units,
    }
}

/// Compile-time proof that plans may be shared across threads: every field
/// is plain data or `Arc`-backed tensors, so `Send + Sync` must hold (the
/// serving layer relies on `Arc<CompiledPlan>` replayed concurrently).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledPlan>();
    assert_send_sync::<PlanArena>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{ActKind, Activation, BatchNorm2d, Conv2d, DepthwiseConv2d, Linear};
    use crate::{InferCtx, Module, Sequential};
    use nb_autograd::nodes_allocated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// conv -> bn -> relu -> depthwise -> bn -> relu6 -> gap -> linear,
    /// with randomized bn statistics so folding is non-trivial.
    fn conv_model(rng: &mut StdRng) -> Sequential {
        let bn1 = BatchNorm2d::new(8);
        bn1.set_running_stats(
            Tensor::randn([8], rng),
            Tensor::randn([8], rng).map(|v| v.abs() + 0.5),
        );
        bn1.gamma().set_value(Tensor::randn([8], rng));
        bn1.beta().set_value(Tensor::randn([8], rng));
        let bn2 = BatchNorm2d::new(8);
        bn2.set_running_stats(
            Tensor::randn([8], rng),
            Tensor::randn([8], rng).map(|v| v.abs() + 0.5),
        );
        Sequential::new()
            .push(Conv2d::new(3, 8, ConvGeometry::same(3, 1), true, rng))
            .push(bn1)
            .push(Activation::new(ActKind::Relu))
            .push(DepthwiseConv2d::new(
                8,
                ConvGeometry::same(3, 1),
                false,
                rng,
            ))
            .push(bn2)
            .push(Activation::new(ActKind::Relu6))
            .push(crate::layers::GlobalAvgPool::new())
            .push(Linear::new(8, 4, true, rng))
    }

    fn infer_forward(model: &Sequential, x: &Tensor) -> (Tensor, usize) {
        let mut ctx = InferCtx::new();
        let xv = ctx.input(x.clone());
        let yv = model.forward(&mut ctx, xv);
        let out = ctx.take(yv);
        (out, ctx.peak_bytes())
    }

    #[test]
    fn unfolded_plan_is_bitwise_with_zero_nodes() {
        let mut rng = StdRng::seed_from_u64(10);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let (want, _) = infer_forward(&model, &x);

        let before = nodes_allocated();
        let plan = CompiledPlan::compile_with(x.dims(), PlanOptions { fold_bn: false }, |f, v| {
            model.forward(f, v)
        });
        let got = plan.run(&x);
        assert_eq!(nodes_allocated(), before, "plan allocated tape nodes");
        assert_eq!(got.dims(), want.dims());
        assert_eq!(got.as_slice(), want.as_slice(), "bitwise parity");
    }

    #[test]
    fn folded_plan_is_close_and_smaller() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let (want, _) = infer_forward(&model, &x);

        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let unfolded =
            CompiledPlan::compile_with(x.dims(), PlanOptions { fold_bn: false }, |f, v| {
                model.forward(f, v)
            });
        assert!(
            plan.action_count() < unfolded.action_count(),
            "folding should remove bn/activation actions ({} vs {})",
            plan.action_count(),
            unfolded.action_count()
        );
        let got = plan.run(&x);
        assert!(got.allclose(&want, 1e-4), "folded plan diverged");
        let _ = unfolded.run(&x);
    }

    #[test]
    fn repeated_runs_reuse_arena_and_match_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let mut arena = plan.new_arena();
        let first = plan.run_in(&mut arena, &x);
        let second = plan.run_in(&mut arena, &x);
        assert_eq!(
            first.as_slice(),
            second.as_slice(),
            "runs must be identical"
        );
        // A one-shot run (fresh arena) agrees with the recycled arena.
        assert_eq!(plan.run(&x).as_slice(), first.as_slice());
        // A different batch reuses the same plan and arena.
        let x8 = Tensor::randn([8, 3, 8, 8], &mut rng);
        let big = plan.run_in(&mut arena, &x8);
        assert_eq!(big.dims(), &[8, 4]);
        let (want, _) = infer_forward(&model, &x8);
        assert!(big.allclose(&want, 1e-4));
    }

    #[test]
    fn peak_bytes_no_worse_than_infer_ctx() {
        let mut rng = StdRng::seed_from_u64(13);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let (_, infer_peak) = infer_forward(&model, &x);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let _ = plan.run(&x);
        assert!(
            plan.peak_bytes() <= infer_peak,
            "plan peak {} vs InferCtx {}",
            plan.peak_bytes(),
            infer_peak
        );
        assert!(plan.arena_bytes() > 0);
        assert!(plan.packed_bytes() > 0);
    }

    #[test]
    fn identity_activations_are_elided() {
        let mut rng = StdRng::seed_from_u64(14);
        let conv = Conv2d::new(3, 4, ConvGeometry::same(3, 1), true, &mut rng);
        let act = Activation::new(ActKind::Relu);
        act.slope().set(1.0); // PLT-linearized
        let model = Sequential::new().push(conv).push(act);
        let x = Tensor::randn([1, 3, 6, 6], &mut rng);
        let (want, _) = infer_forward(&model, &x);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        assert_eq!(plan.action_count(), 1, "identity activation not elided");
        let got = plan.run(&x);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn mlp_with_residual_retain_matches_infer_ctx() {
        let mut rng = StdRng::seed_from_u64(15);
        let l1 = Linear::new(6, 6, true, &mut rng);
        let l2 = Linear::new(6, 4, false, &mut rng);
        let x = Tensor::randn([3, 6], &mut rng);
        let fwd = |f: &mut dyn Forward, v: Value| {
            f.retain(v);
            let h = l1.forward(f, v);
            let h = f.relu_decay(h, 0.25);
            let h = f.add(h, v);
            l2.forward(f, h)
        };
        let mut ctx = InferCtx::new();
        let xv = ctx.input(x.clone());
        let yv = fwd(&mut ctx, xv);
        let want = ctx.take(yv);

        let plan = CompiledPlan::compile(x.dims(), fwd);
        let got = plan.run(&x);
        assert_eq!(got.as_slice(), want.as_slice(), "residual path bitwise");
    }

    #[test]
    fn forward_replay_matches_run() {
        let mut rng = StdRng::seed_from_u64(16);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let via_run = plan.run(&x);
        let mut replay = plan.replayer();
        let xv = replay.input(x.clone());
        let yv = model.forward(&mut replay, xv);
        let via_replay = replay.take(yv);
        assert_eq!(via_run.as_slice(), via_replay.as_slice());
    }

    #[test]
    fn arc_shared_plan_replays_concurrently_bitwise() {
        let mut rng = StdRng::seed_from_u64(19);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let plan = std::sync::Arc::new(CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v)));
        let want = plan.run(&x);
        let outputs: Vec<Tensor> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let plan = std::sync::Arc::clone(&plan);
                    let x = x.clone();
                    s.spawn(move || {
                        let mut arena = plan.new_arena();
                        let a = plan.run_in(&mut arena, &x);
                        let b = plan.run_in(&mut arena, &x);
                        assert_eq!(a.as_slice(), b.as_slice());
                        a
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("replay thread"))
                .collect()
        });
        for got in outputs {
            assert_eq!(got.as_slice(), want.as_slice(), "concurrent replay bitwise");
        }
    }

    #[test]
    #[should_panic(expected = "structurally different plan")]
    fn foreign_arena_panics() {
        let mut rng = StdRng::seed_from_u64(20);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([1, 3, 8, 8], &mut rng);
        let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let other = CompiledPlan::compile(&[1, 6], |f, v| {
            let l = Linear::new(6, 2, true, &mut StdRng::seed_from_u64(0));
            l.forward(f, v)
        });
        let mut arena = other.new_arena();
        let _ = plan.run_in(&mut arena, &x);
    }

    #[test]
    #[should_panic(expected = "per-sample shape")]
    fn wrong_input_shape_panics() {
        let mut rng = StdRng::seed_from_u64(17);
        let model = conv_model(&mut rng);
        let plan = CompiledPlan::compile(&[1, 3, 8, 8], |f, v| model.forward(f, v));
        let _ = plan.run(&Tensor::zeros([1, 3, 9, 9]));
    }

    /// Calibration batches for the quantized-plan tests: a few deterministic
    /// randn batches matching the probe shape.
    fn calib_batches(dims: &[usize], n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Tensor::randn(dims.to_vec(), &mut rng))
            .collect()
    }

    #[test]
    fn quantized_plan_tracks_f32_plan() {
        let mut rng = StdRng::seed_from_u64(30);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan = CompiledPlan::compile_quantized(
            x.dims(),
            &calib_batches(x.dims(), quant_calib_batches(), 31),
            |f, v| model.forward(f, v),
        );
        assert!(qplan.is_quantized());
        assert!(!fplan.is_quantized());
        let want = fplan.run(&x);
        let got = qplan.run(&x);
        assert_eq!(got.dims(), want.dims());
        // Int8 PTQ is approximate: bound the error relative to the f32
        // output's dynamic range (the top-1 budget lives in nb-verify).
        let range = max_abs(want.as_slice()).max(1e-6);
        let worst = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= 0.1 * range,
            "quantized output off by {worst} on range {range}"
        );
    }

    #[test]
    fn quantized_plan_is_smaller_and_replay_deterministic() {
        let mut rng = StdRng::seed_from_u64(32);
        let model = conv_model(&mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let calib = calib_batches(x.dims(), 2, 33);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan = CompiledPlan::compile_quantized(x.dims(), &calib, |f, v| model.forward(f, v));
        assert!(
            qplan.packed_bytes() < fplan.packed_bytes(),
            "i8 panels should undercut f32 panels ({} vs {})",
            qplan.packed_bytes(),
            fplan.packed_bytes()
        );
        assert!(
            qplan.peak_bytes() <= fplan.peak_bytes(),
            "quantize-then-free should not raise the peak ({} vs {})",
            qplan.peak_bytes(),
            fplan.peak_bytes()
        );
        // Warm-arena replay is bitwise repeatable, and a one-shot arena
        // agrees (integer accumulation is exact under any schedule).
        let mut arena = qplan.new_arena();
        let first = qplan.run_in(&mut arena, &x);
        let second = qplan.run_in(&mut arena, &x);
        assert_eq!(first.as_slice(), second.as_slice());
        assert_eq!(qplan.run(&x).as_slice(), first.as_slice());
        assert!(arena.resident_bytes() > 0);
    }

    #[test]
    fn quantized_pointwise_and_linear_paths_run() {
        // 1x1 stride-1 conv exercises the materialized-matrix fast path;
        // the trailing linear exercises QLinear with bias.
        let mut rng = StdRng::seed_from_u64(34);
        let model = Sequential::new()
            .push(Conv2d::new(
                3,
                16,
                ConvGeometry::pointwise(),
                true,
                &mut rng,
            ))
            .push(Activation::new(ActKind::Relu))
            .push(crate::layers::GlobalAvgPool::new())
            .push(Linear::new(16, 5, true, &mut rng));
        let x = Tensor::randn([3, 3, 6, 6], &mut rng);
        let calib = calib_batches(x.dims(), 2, 35);
        let fplan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
        let qplan = CompiledPlan::compile_quantized(x.dims(), &calib, |f, v| model.forward(f, v));
        let want = fplan.run(&x);
        let got = qplan.run(&x);
        let range = max_abs(want.as_slice()).max(1e-6);
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() <= 0.1 * range, "pointwise quant diverged");
        }
        // Replayer path over a quantized plan.
        let mut replay = qplan.replayer();
        let xv = replay.input(x.clone());
        let yv = model.forward(&mut replay, xv);
        assert_eq!(replay.take(yv).as_slice(), got.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one calibration batch")]
    fn compile_quantized_rejects_empty_calibration() {
        let mut rng = StdRng::seed_from_u64(36);
        let model = conv_model(&mut rng);
        let _ = CompiledPlan::compile_quantized(&[1, 3, 8, 8], &[], |f, v| model.forward(f, v));
    }

    #[test]
    fn quant_calib_batches_default() {
        // The knob is read per call; without the env var it is 4.
        if std::env::var("NB_QUANT_CALIB").is_err() {
            assert_eq!(quant_calib_batches(), 4);
        }
    }

    /// Satellite coverage for random fold configurations without proptest:
    /// sweep channel counts, eps values, and affine/non-affine configs.
    #[test]
    fn bn_fold_sweep_matches_unfused_path() {
        let mut rng = StdRng::seed_from_u64(18);
        for &(c, eps, affine) in &[
            (1usize, 1e-5f32, true),
            (3, 1e-3, false),
            (8, 1e-1, true),
            (13, 1e-7, false),
            (32, 1e-5, true),
        ] {
            let conv = Conv2d::new(3, c, ConvGeometry::same(3, 1), affine, &mut rng);
            let bn = BatchNorm2d::new(c).with_eps(eps);
            bn.set_running_stats(
                Tensor::randn([c], &mut rng),
                Tensor::randn([c], &mut rng).map(|v| v.abs() + 0.1),
            );
            if affine {
                bn.gamma().set_value(Tensor::randn([c], &mut rng));
                bn.beta().set_value(Tensor::randn([c], &mut rng));
            }
            let model = Sequential::new().push(conv).push(bn);
            let x = Tensor::randn([2, 3, 6, 6], &mut rng);
            let (want, _) = infer_forward(&model, &x);
            let plan = CompiledPlan::compile(x.dims(), |f, v| model.forward(f, v));
            let got = plan.run(&x);
            assert!(
                got.allclose(&want, 1e-3),
                "fold sweep c={c} eps={eps} affine={affine}"
            );
        }
    }
}
