//! The [`Forward`] execution abstraction.
//!
//! Layer code (`Module::forward` and the model-level forwards built on it)
//! is written once against this trait and served by two executors:
//!
//! - the taped [`Session`] — records every op on an autograd [`Graph`]
//!   node so [`Session::backward`] can run, retains all intermediates, and
//!   honours training semantics (batch statistics, running-stat updates);
//! - the eager [`InferCtx`](crate::InferCtx) — executes the same layer
//!   math directly with no tape, recycling activation buffers as soon as
//!   their last consumer has run.
//!
//! Both paths share the pointwise kernels in [`nb_tensor::eltwise`] and the
//! convolution/GEMM kernels, so for a fixed thread-pool width they produce
//! bitwise-identical activations (see the parity suite in `nb-verify`).
//!
//! [`Graph`]: nb_autograd::Graph

use crate::layers::{BatchNorm2d, BnUpdate};
use crate::{Parameter, Session};
use nb_autograd::Value;
use nb_tensor::{ConvGeometry, Tensor};

/// One execution path's view of a forward pass.
///
/// [`Value`] handles are executor-local: a handle produced by one executor
/// is meaningless to another. Ops *consume* their activation inputs — an
/// executor is free to recycle an input buffer once the op returns, so a
/// value that is needed again later (a residual branch) must be announced
/// with [`Forward::retain`] before its first consumer runs. The taped
/// executor retains everything and treats `retain` as a no-op.
///
/// Parameters are passed as [`Parameter`] handles, not tensors: the taped
/// executor binds them (gradient-bearing, idempotent per session) while the
/// grad-free executor borrows their storage for the duration of the op.
pub trait Forward {
    /// Whether layers should run in training mode (batch statistics, etc.).
    fn training(&self) -> bool;

    /// Inserts an input tensor, returning its handle.
    fn input(&mut self, t: Tensor) -> Value;

    /// The tensor behind a live handle.
    ///
    /// # Panics
    ///
    /// May panic if the value has already been consumed (grad-free path).
    fn value(&self, v: Value) -> &Tensor;

    /// Takes the tensor behind a handle out of the executor (cheaply, via
    /// COW-sharing on the taped path).
    fn take(&mut self, v: Value) -> Tensor;

    /// Declares one extra future use of `v`, keeping it alive past its next
    /// consumer. Required before forking a residual branch on the grad-free
    /// path; a no-op on the tape.
    fn retain(&mut self, v: Value);

    /// Dense 2-D convolution with a layer's weight/bias parameters.
    fn conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value;

    /// Dense convolution over the leading `[out_c, in_c]` channel slice of
    /// `w` (NetAug weight sharing), bias-free.
    fn conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        out_c: usize,
        in_c: usize,
        geom: ConvGeometry,
    ) -> Value;

    /// Depthwise 2-D convolution with a layer's weight/bias parameters.
    fn depthwise_conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value;

    /// Depthwise convolution over the leading `channels` slice of `w`,
    /// bias-free.
    fn depthwise_conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        channels: usize,
        geom: ConvGeometry,
    ) -> Value;

    /// Fully-connected product `y = x W^T (+ b)`.
    fn linear(&mut self, x: Value, w: &Parameter, b: Option<&Parameter>) -> Value;

    /// Fully-connected product using only the leading `in_features` columns
    /// of every weight row (NetAug's sliced classifier).
    fn linear_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        in_features: usize,
    ) -> Value;

    /// Batch normalization with the layer's full parameter set. Training
    /// semantics (batch statistics + running-stat EMA updates) are the
    /// executor's responsibility; the grad-free path always normalizes with
    /// running statistics and never writes them.
    fn batch_norm(&mut self, x: Value, bn: &BatchNorm2d) -> Value;

    /// Batch normalization over the first `channels` channels of a sliced
    /// activation, touching only the leading entries of the running
    /// statistics when training.
    fn batch_norm_sliced(&mut self, x: Value, bn: &BatchNorm2d, channels: usize) -> Value;

    /// Decayable ReLU `y = max(alpha*x, x)`.
    fn relu_decay(&mut self, x: Value, alpha: f32) -> Value;

    /// Decayable ReLU6 `y = max(alpha*x, x) - (1-alpha)*max(0, x-6)`.
    fn relu6_decay(&mut self, x: Value, alpha: f32) -> Value;

    /// Windowed max pooling.
    fn max_pool(&mut self, x: Value, geom: ConvGeometry) -> Value;

    /// Windowed average pooling.
    fn avg_pool(&mut self, x: Value, geom: ConvGeometry) -> Value;

    /// Global average pooling `[n,c,h,w] -> [n,c]`.
    fn global_avg_pool(&mut self, x: Value) -> Value;

    /// Elementwise sum of two same-shape values (residual join).
    fn add(&mut self, a: Value, b: Value) -> Value;
}

impl Forward for Session {
    fn training(&self) -> bool {
        self.training
    }

    fn input(&mut self, t: Tensor) -> Value {
        Session::input(self, t)
    }

    fn value(&self, v: Value) -> &Tensor {
        self.graph.value(v)
    }

    fn take(&mut self, v: Value) -> Tensor {
        self.graph.value(v).clone()
    }

    fn retain(&mut self, _v: Value) {}

    fn conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let wv = self.bind(w);
        let bv = b.map(|p| self.bind(p));
        self.graph.conv2d(x, wv, bv, geom)
    }

    fn conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        out_c: usize,
        in_c: usize,
        geom: ConvGeometry,
    ) -> Value {
        let wv = self.bind(w);
        let wv = self.graph.narrow_out_in(wv, (0, out_c), (0, in_c));
        self.graph.conv2d(x, wv, None, geom)
    }

    fn depthwise_conv2d(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        geom: ConvGeometry,
    ) -> Value {
        let wv = self.bind(w);
        let bv = b.map(|p| self.bind(p));
        self.graph.depthwise_conv2d(x, wv, bv, geom)
    }

    fn depthwise_conv2d_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        channels: usize,
        geom: ConvGeometry,
    ) -> Value {
        let wv = self.bind(w);
        let wv = self.graph.narrow0(wv, 0, channels);
        self.graph.depthwise_conv2d(x, wv, None, geom)
    }

    fn linear(&mut self, x: Value, w: &Parameter, b: Option<&Parameter>) -> Value {
        let wv = self.bind(w);
        let y = self.graph.matmul_nt(x, wv);
        match b {
            Some(b) => {
                let bv = self.bind(b);
                self.graph.add_bias2(y, bv)
            }
            None => y,
        }
    }

    fn linear_sliced(
        &mut self,
        x: Value,
        w: &Parameter,
        b: Option<&Parameter>,
        in_features: usize,
    ) -> Value {
        let (out_f, big_in) = w.value().shape().rc();
        let wv = self.bind(w);
        // Narrow the input-feature dimension through a rank-4 view so the
        // gradient scatters back into the full weight.
        let w4 = self.graph.reshape(wv, [out_f, big_in, 1, 1]);
        let w4 = self.graph.narrow_out_in(w4, (0, out_f), (0, in_features));
        let wk = self.graph.reshape(w4, [out_f, in_features]);
        let y = self.graph.matmul_nt(x, wk);
        match b {
            Some(b) => {
                let bv = self.bind(b);
                self.graph.add_bias2(y, bv)
            }
            None => y,
        }
    }

    fn batch_norm(&mut self, x: Value, bn: &BatchNorm2d) -> Value {
        let gamma = self.bind(bn.gamma());
        let beta = self.bind(bn.beta());
        if self.training {
            let (y, stats) = self.graph.batch_norm_train(x, gamma, beta, bn.eps());
            if self.update_bn_stats {
                let update = BnUpdate {
                    momentum: bn.momentum(),
                    channels: bn.channels(),
                    mean: stats.mean,
                    var: stats.var,
                };
                self.apply_or_record_bn(bn.running_mean_param(), bn.running_var_param(), update);
            }
            y
        } else {
            let rm = bn.running_mean();
            let rv = bn.running_var();
            self.graph
                .batch_norm_eval(x, gamma, beta, &rm, &rv, bn.eps())
        }
    }

    fn batch_norm_sliced(&mut self, x: Value, bn: &BatchNorm2d, channels: usize) -> Value {
        let k = channels;
        let gamma = self.bind(bn.gamma());
        let gamma = self.graph.narrow0(gamma, 0, k);
        let beta = self.bind(bn.beta());
        let beta = self.graph.narrow0(beta, 0, k);
        if self.training {
            let (y, stats) = self.graph.batch_norm_train(x, gamma, beta, bn.eps());
            if !self.update_bn_stats {
                return y;
            }
            let update = BnUpdate {
                momentum: bn.momentum(),
                channels: k,
                mean: stats.mean,
                var: stats.var,
            };
            self.apply_or_record_bn(bn.running_mean_param(), bn.running_var_param(), update);
            y
        } else {
            let rm = bn.running_mean().narrow0(0, k);
            let rv = bn.running_var().narrow0(0, k);
            self.graph
                .batch_norm_eval(x, gamma, beta, &rm, &rv, bn.eps())
        }
    }

    fn relu_decay(&mut self, x: Value, alpha: f32) -> Value {
        self.graph.relu_decay(x, alpha)
    }

    fn relu6_decay(&mut self, x: Value, alpha: f32) -> Value {
        self.graph.relu6_decay(x, alpha)
    }

    fn max_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        self.graph.max_pool(x, geom)
    }

    fn avg_pool(&mut self, x: Value, geom: ConvGeometry) -> Value {
        self.graph.avg_pool(x, geom)
    }

    fn global_avg_pool(&mut self, x: Value) -> Value {
        self.graph.global_avg_pool(x)
    }

    fn add(&mut self, a: Value, b: Value) -> Value {
        self.graph.add(a, b)
    }
}
