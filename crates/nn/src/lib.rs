//! # nb-nn
//!
//! Neural-network layers over [`nb_autograd`]: convolutions, batch norm,
//! decayable activations (the handle Progressive Linearization Tuning
//! drives), linear and pooling layers, a [`Sequential`] container, weight
//! initialization, and state-dict checkpointing.
//!
//! The central abstractions are [`Module`] (a differentiable function with
//! named parameters) and [`Forward`] (one execution path's view of a
//! forward pass). Three executors implement [`Forward`]: the taped
//! [`Session`] (one training step's tape plus the parameter bindings into
//! it), the grad-free [`InferCtx`] (eager evaluation with recycled
//! activation buffers and no tape), and the [`CompiledPlan`] (a serving
//! path compiled once per model: batch-norm folding, activation fusion,
//! prepacked GEMM weights, and a static activation arena). A single
//! `Module::forward` definition serves all three.
//!
//! ## Example
//!
//! ```
//! use nb_nn::{layers::{ActKind, Activation, Linear}, Module, Sequential, Session};
//! use nb_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Sequential::new()
//!     .push(Linear::new(8, 16, true, &mut rng))
//!     .push(Activation::new(ActKind::Relu))
//!     .push(Linear::new(16, 4, true, &mut rng));
//! let mut s = Session::new(true);
//! let x = s.input(Tensor::randn([2, 8], &mut rng));
//! let logits = mlp.forward(&mut s, x);
//! let loss = s.graph.softmax_cross_entropy(logits, &[0, 3], 0.0);
//! s.backward(loss);
//! assert!(mlp.parameters().iter().all(|p| p.grad().abs_sum() >= 0.0));
//! ```

#![warn(missing_docs)]

pub mod fold;
mod forward;
mod infer;
pub mod init;
pub mod layers;
mod module;
mod param;
pub mod plan;
mod sequential;
mod state;

pub use fold::{fold_bn, fold_bn_depthwise};
pub use forward::Forward;
pub use infer::InferCtx;
pub use module::{join_name, BnRecord, Module, Session};
pub use param::Parameter;
pub use plan::{
    quant_calib_batches, CompiledPlan, PlanArena, PlanOptions, PlanReplay, QuantPolicy,
};
pub use sequential::Sequential;
pub use state::{copy_params, named_parameters, StateDict};
