//! State dictionaries: named-tensor maps for checkpointing and for copying
//! weights between model variants (e.g. pretrain to downstream transfer).
//!
//! The on-disk format is a tiny hand-rolled binary layout (magic, entry
//! count, then length-prefixed names with shaped `f32` payloads) so the
//! stack stays dependency-free.

use crate::{Module, Parameter};
use nb_tensor::{Shape, Tensor, TensorError};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NBST";

/// An ordered map from hierarchical parameter names to tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// An empty state dict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots every parameter of a module.
    pub fn from_module(module: &impl Module) -> Self {
        let mut sd = StateDict::new();
        module.visit_params("", &mut |name, p| {
            sd.entries.insert(name.to_string(), p.value());
        });
        sd
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.entries.insert(name.into(), t);
    }

    /// Looks up an entry.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Loads every matching entry into `module`'s parameters, strictly:
    /// every module parameter must be present with the right shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Corrupt`] naming the first missing or
    /// mis-shaped parameter.
    pub fn load_into(&self, module: &impl Module) -> Result<(), TensorError> {
        let mut failure: Option<String> = None;
        module.visit_params("", &mut |name, p| {
            if failure.is_some() {
                return;
            }
            match self.entries.get(name) {
                None => failure = Some(format!("missing parameter `{name}`")),
                Some(t) if t.shape() != p.value().shape() => {
                    failure = Some(format!(
                        "shape mismatch for `{name}`: checkpoint {} vs model {}",
                        t.shape(),
                        p.value().shape()
                    ))
                }
                Some(t) => p.set_value(t.clone()),
            }
        });
        match failure {
            Some(msg) => Err(TensorError::Corrupt(msg)),
            None => Ok(()),
        }
    }

    /// Loads every entry whose name and shape match, skipping the rest.
    /// Returns the number of parameters loaded. Useful when transferring a
    /// backbone under a new head.
    pub fn load_matching(&self, module: &impl Module) -> usize {
        let mut loaded = 0;
        module.visit_params("", &mut |name, p| {
            if let Some(t) = self.entries.get(name) {
                if t.shape() == p.value().shape() {
                    p.set_value(t.clone());
                    loaded += 1;
                }
            }
        });
        loaded
    }

    /// Serializes to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, t) in &self.entries {
            let name_bytes = name.as_bytes();
            w.write_all(&(name_bytes.len() as u16).to_le_bytes())?;
            w.write_all(name_bytes)?;
            let dims = t.dims();
            w.write_all(&(dims.len() as u8).to_le_bytes())?;
            for &d in dims {
                w.write_all(&(d as u32).to_le_bytes())?;
            }
            for &v in t.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes from a reader.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Corrupt`] on malformed input; I/O errors are
    /// folded into the same variant with the OS message.
    pub fn read_from(r: &mut impl Read) -> Result<Self, TensorError> {
        fn io(e: std::io::Error) -> TensorError {
            TensorError::Corrupt(format!("io: {e}"))
        }
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(io)?;
        if &magic != MAGIC {
            return Err(TensorError::Corrupt("bad magic".into()));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4).map_err(io)?;
        let count = u32::from_le_bytes(b4) as usize;
        let mut sd = StateDict::new();
        for _ in 0..count {
            let mut b2 = [0u8; 2];
            r.read_exact(&mut b2).map_err(io)?;
            let name_len = u16::from_le_bytes(b2) as usize;
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name).map_err(io)?;
            let name = String::from_utf8(name)
                .map_err(|_| TensorError::Corrupt("non-utf8 name".into()))?;
            let mut b1 = [0u8; 1];
            r.read_exact(&mut b1).map_err(io)?;
            let rank = b1[0] as usize;
            if rank > 8 {
                return Err(TensorError::Corrupt(format!("implausible rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                r.read_exact(&mut b4).map_err(io)?;
                dims.push(u32::from_le_bytes(b4) as usize);
            }
            let shape = Shape::new(dims);
            let n = shape.numel();
            if n > (1 << 30) {
                return Err(TensorError::Corrupt(format!("implausible size {n}")));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                r.read_exact(&mut b4).map_err(io)?;
                data.push(f32::from_le_bytes(b4));
            }
            sd.insert(name, Tensor::from_vec(data, shape)?);
        }
        Ok(sd)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Corrupt`] on malformed or unreadable input.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TensorError> {
        let f =
            std::fs::File::open(path).map_err(|e| TensorError::Corrupt(format!("open: {e}")))?;
        Self::read_from(&mut std::io::BufReader::new(f))
    }
}

impl FromIterator<(String, Tensor)> for StateDict {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        StateDict {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Copies all parameter values from `src` to `dst` by matching names; both
/// modules must expose identical parameter sets.
///
/// # Errors
///
/// Returns [`TensorError::Corrupt`] if `dst` has a parameter missing from
/// `src` or with a different shape.
pub fn copy_params(src: &impl Module, dst: &impl Module) -> Result<(), TensorError> {
    StateDict::from_module(src).load_into(dst)
}

/// Accumulates `visit_params` output into `(name, Parameter)` pairs.
pub fn named_parameters(module: &impl Module) -> Vec<(String, Parameter)> {
    let mut out = Vec::new();
    module.visit_params("", &mut |name, p| out.push((name.to_string(), p.clone())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_through_bytes() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(3, 2, true, &mut rng);
        let sd = StateDict::from_module(&lin);
        let mut buf = Vec::new();
        sd.write_to(&mut buf).unwrap();
        let back = StateDict::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(sd, back);
    }

    #[test]
    fn load_into_strict() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(3, 2, true, &mut rng);
        assert!(a.weight().value() != b.weight().value());
        copy_params(&a, &b).unwrap();
        assert_eq!(a.weight().value(), b.weight().value());
        assert_eq!(a.bias().unwrap().value(), b.bias().unwrap().value());
    }

    #[test]
    fn load_into_detects_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(4, 2, true, &mut rng);
        let err = StateDict::from_module(&a).load_into(&b).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn load_matching_skips_new_head() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(3, 5, true, &mut rng); // different head size
        let n = StateDict::from_module(&a).load_matching(&b);
        assert_eq!(n, 0); // shapes differ => nothing loaded, no panic
    }

    #[test]
    fn corrupt_magic_rejected() {
        let buf = b"XXXX\0\0\0\0".to_vec();
        let err = StateDict::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let lin = Linear::new(3, 2, false, &mut rng);
        let mut buf = Vec::new();
        StateDict::from_module(&lin).write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(StateDict::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let lin = Linear::new(2, 2, true, &mut rng);
        let sd = StateDict::from_module(&lin);
        let dir = std::env::temp_dir().join("nb_state_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.nbst");
        sd.save(&path).unwrap();
        let back = StateDict::load(&path).unwrap();
        assert_eq!(sd, back);
        std::fs::remove_file(path).ok();
    }
}
