//! Fully-connected layer.

use crate::{init, join_name, Forward, Module, Parameter};
use nb_autograd::Value;
use nb_tensor::Tensor;
use rand::Rng;

/// A fully-connected (affine) layer: `y = x W^T + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// A Kaiming-uniform-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Parameter::new(init::kaiming_uniform([out_features, in_features], rng)),
            bias: bias.then(|| Parameter::new_no_decay(Tensor::zeros([out_features]))),
            in_features,
            out_features,
        }
    }

    /// Builds a linear layer from explicit tensors.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not rank 2 or the bias length differs.
    pub fn from_weights(weight: Tensor, bias: Option<Tensor>) -> Self {
        let (out_features, in_features) = weight.shape().rc();
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[out_features], "bias length vs out features");
        }
        Linear {
            weight: Parameter::new(weight),
            bias: bias.map(Parameter::new_no_decay),
            in_features,
            out_features,
        }
    }

    /// The weight parameter (`[out, in]`).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// The bias parameter, if any.
    pub fn bias(&self) -> Option<&Parameter> {
        self.bias.as_ref()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Multiply–accumulate count per sample.
    pub fn flops(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }
}

impl Module for Linear {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.linear(x, &self.weight, self.bias.as_ref())
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Parameter)) {
        f(&join_name(prefix, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            f(&join_name(prefix, "bias"), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_affine() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]).unwrap();
        let lin = Linear::from_weights(w, Some(b));
        let mut s = Session::new(false);
        let x = s.input(Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap());
        let y = lin.forward(&mut s, x);
        assert_eq!(s.value(y).as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn grads_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(4, 3, true, &mut rng);
        let mut s = Session::new(true);
        let x = s.input(Tensor::randn([2, 4], &mut rng));
        let y = lin.forward(&mut s, x);
        let loss = s.graph.softmax_cross_entropy(y, &[0, 2], 0.0);
        s.backward(loss);
        assert!(lin.weight().grad().abs_sum() > 0.0);
        assert!(lin.bias().unwrap().grad().abs_sum() > 0.0);
        assert_eq!(lin.param_count(), 15);
        assert_eq!(lin.flops(), 12);
    }
}
