//! Batch normalization.

use crate::{join_name, Forward, Module, Parameter};
use nb_autograd::Value;
use nb_tensor::Tensor;

/// 2-D batch normalization with running statistics.
///
/// In training mode the layer normalizes with batch statistics and folds
/// them into its running averages with the configured momentum; in
/// evaluation mode it normalizes with the running averages.
/// The running statistics are stored as gradient-free parameters so that
/// state dicts capture them; optimizers see a permanently-zero gradient and
/// leave them untouched.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Parameter,
    running_var: Parameter,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm2d {
    /// A fresh batch-norm layer (`gamma = 1`, `beta = 0`, running stats at
    /// the standard-normal prior), with momentum 0.1 and epsilon 1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new_no_decay(Tensor::ones([channels])),
            beta: Parameter::new_no_decay(Tensor::zeros([channels])),
            running_mean: Parameter::new_no_decay(Tensor::zeros([channels])),
            running_var: Parameter::new_no_decay(Tensor::ones([channels])),
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Replaces the normalization epsilon (builder style). Used by the
    /// compile pass to reconstruct sliced batch-norm snapshots and by
    /// property tests that sweep eps values.
    pub fn with_eps(mut self, eps: f32) -> Self {
        self.eps = eps;
        self
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The scale parameter.
    pub fn gamma(&self) -> &Parameter {
        &self.gamma
    }

    /// The shift parameter.
    pub fn beta(&self) -> &Parameter {
        &self.beta
    }

    /// Normalization epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Running-statistics momentum.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// A copy of the running mean.
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.value()
    }

    /// A copy of the running variance.
    pub fn running_var(&self) -> Tensor {
        self.running_var.value()
    }

    /// The running-mean parameter itself (for the data-parallel trainer's
    /// deferred statistics replay).
    pub fn running_mean_param(&self) -> &Parameter {
        &self.running_mean
    }

    /// The running-variance parameter itself.
    pub fn running_var_param(&self) -> &Parameter {
        &self.running_var
    }

    /// Overwrites the running statistics (used by state-dict loading and by
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not `[channels]`.
    pub fn set_running_stats(&self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.dims(), &[self.channels], "running mean shape");
        assert_eq!(var.dims(), &[self.channels], "running var shape");
        self.running_mean.set_value(mean);
        self.running_var.set_value(var);
    }

    /// The affine transform this layer applies per channel in eval mode,
    /// as `(scale, shift)`: `y = scale * x + shift`. This is what the
    /// contraction step folds into the preceding convolution.
    pub fn eval_affine(&self) -> (Tensor, Tensor) {
        let mean = self.running_mean.value();
        let var = self.running_var.value();
        let gamma = self.gamma.value();
        let beta = self.beta.value();
        let scale = Tensor::from_fn([self.channels], |c| {
            gamma.as_slice()[c] / (var.as_slice()[c] + self.eps).sqrt()
        });
        let shift = Tensor::from_fn([self.channels], |c| {
            beta.as_slice()[c] - mean.as_slice()[c] * scale.as_slice()[c]
        });
        (scale, shift)
    }
}

/// One training-mode batch-norm statistics update: the batch mean/var of a
/// forward pass plus the EMA momentum to fold them in with.
///
/// [`Session`](crate::Session) either applies an update immediately (the
/// single-trainer path) or records it for deferred replay (the
/// data-parallel path, where shard replicas observe the batch statistics
/// but the *master* parameters must receive the EMA chain in slice order).
/// Both paths go through [`BnUpdate::apply`], so the running-statistics
/// bits cannot depend on which path ran.
///
/// `channels` is the number of *affected* leading channels: equal to the
/// parameter length for a full-width forward, smaller for NetAug's sliced
/// sub-network forward (which updates only the slice's channels).
#[derive(Debug, Clone)]
pub struct BnUpdate {
    /// EMA momentum at the time of the forward pass.
    pub momentum: f32,
    /// Number of leading channels the batch statistics cover.
    pub channels: usize,
    /// Per-channel batch mean (`channels` long).
    pub mean: Tensor,
    /// Per-channel batch variance (`channels` long).
    pub var: Tensor,
}

impl BnUpdate {
    /// Folds the batch statistics into the running-statistics parameters:
    /// `r = (1 - momentum) * r + momentum * batch_stat`, touching only the
    /// first `channels` entries.
    ///
    /// # Panics
    ///
    /// Panics if `channels` exceeds the parameter length or the mean/var
    /// tensors are shorter than `channels`.
    pub fn apply(&self, running_mean: &Parameter, running_var: &Parameter) {
        let m = self.momentum;
        let k = self.channels;
        let mut rm = running_mean.value();
        let mut rv = running_var.value();
        assert!(k <= rm.numel(), "BnUpdate channels exceed running mean");
        if k == rm.numel() {
            rm.scale_assign(1.0 - m);
            rm.add_scaled_assign(&self.mean, m);
            rv.scale_assign(1.0 - m);
            rv.add_scaled_assign(&self.var, m);
        } else {
            for i in 0..k {
                rm.as_mut_slice()[i] = (1.0 - m) * rm.as_slice()[i] + m * self.mean.as_slice()[i];
                rv.as_mut_slice()[i] = (1.0 - m) * rv.as_slice()[i] + m * self.var.as_slice()[i];
            }
        }
        running_mean.set_value(rm);
        running_var.set_value(rv);
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.batch_norm(x, self)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Parameter)) {
        f(&join_name(prefix, "gamma"), &self.gamma);
        f(&join_name(prefix, "beta"), &self.beta);
        f(&join_name(prefix, "running_mean"), &self.running_mean);
        f(&join_name(prefix, "running_var"), &self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_normalizes_and_updates_running_stats() {
        let bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn([8, 2, 4, 4], &mut rng)
            .scale(3.0)
            .add_scalar(5.0);
        let mut s = Session::new(true);
        let xin = s.input(x);
        let y = bn.forward(&mut s, xin);
        let out = s.value(y);
        assert!(out.mean().abs() < 0.05, "normalized mean {}", out.mean());
        // running mean moved toward ~5
        assert!(bn.running_mean().mean() > 0.3);
        assert!(bn.running_var().mean() > 1.0);
    }

    #[test]
    fn eval_uses_running_stats() {
        let bn = BatchNorm2d::new(1);
        bn.set_running_stats(Tensor::full([1], 2.0), Tensor::full([1], 4.0));
        let mut s = Session::new(false);
        let xin = s.input(Tensor::full([1, 1, 1, 1], 6.0));
        let y = bn.forward(&mut s, xin);
        // (6-2)/2 = 2 (eps tiny)
        assert!((s.value(y).item() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn eval_affine_matches_eval_forward() {
        let bn = BatchNorm2d::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        bn.set_running_stats(
            Tensor::randn([3], &mut rng),
            Tensor::rand_uniform([3], 0.5, 2.0, &mut rng),
        );
        bn.gamma()
            .set_value(Tensor::rand_uniform([3], 0.5, 1.5, &mut rng));
        bn.beta().set_value(Tensor::randn([3], &mut rng));
        let (scale, shift) = bn.eval_affine();
        let x = Tensor::randn([2, 3, 2, 2], &mut rng);
        let mut s = Session::new(false);
        let xin = s.input(x.clone());
        let y = bn.forward(&mut s, xin);
        let want = Tensor::from_fn([2, 3, 2, 2], |i| {
            let c = (i / 4) % 3;
            scale.as_slice()[c] * x.as_slice()[i] + shift.as_slice()[c]
        });
        assert!(s.value(y).allclose(&want, 1e-4));
    }

    #[test]
    fn params_excluded_from_decay() {
        let bn = BatchNorm2d::new(2);
        assert!(!bn.gamma().decay());
        assert!(!bn.beta().decay());
        // gamma + beta + running stats all visited for checkpointing
        assert_eq!(bn.param_count(), 8);
    }

    #[test]
    fn running_stats_roundtrip_through_state_dict() {
        let bn = BatchNorm2d::new(2);
        bn.set_running_stats(
            Tensor::from_vec(vec![1.0, -1.0], [2]).unwrap(),
            Tensor::from_vec(vec![2.0, 3.0], [2]).unwrap(),
        );
        let sd = crate::StateDict::from_module(&bn);
        let fresh = BatchNorm2d::new(2);
        sd.load_into(&fresh).unwrap();
        assert_eq!(fresh.running_mean().as_slice(), &[1.0, -1.0]);
        assert_eq!(fresh.running_var().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn gradients_flow_through_bn() {
        let bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = Session::new(true);
        let xin = s.input(Tensor::randn([4, 2, 3, 3], &mut rng));
        let y = bn.forward(&mut s, xin);
        let w = s.input(Tensor::from_fn([4, 2, 3, 3], |i| (i % 5) as f32));
        let y = s.graph.mul(y, w);
        let loss = s.graph.mean_all(y);
        s.backward(loss);
        assert!(bn.gamma().grad().abs_sum() > 0.0);
        assert!(bn.beta().grad().abs_sum() > 0.0);
    }
}
