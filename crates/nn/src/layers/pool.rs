//! Pooling layers.

use crate::{Forward, Module, Parameter};
use nb_autograd::Value;
use nb_tensor::ConvGeometry;

/// Global average pooling: `[n, c, h, w]` to `[n, c]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// The global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool
    }
}

impl Module for GlobalAvgPool {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.global_avg_pool(x)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Parameter)) {}
}

/// Windowed max pooling.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    geom: ConvGeometry,
}

impl MaxPool2d {
    /// A max-pool layer with the given window geometry.
    pub fn new(geom: ConvGeometry) -> Self {
        MaxPool2d { geom }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.max_pool(x, self.geom)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Parameter)) {}
}

/// Windowed average pooling.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    geom: ConvGeometry,
}

impl AvgPool2d {
    /// An average-pool layer with the given window geometry.
    pub fn new(geom: ConvGeometry) -> Self {
        AvgPool2d { geom }
    }
}

impl Module for AvgPool2d {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.avg_pool(x, self.geom)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use nb_tensor::Tensor;

    #[test]
    fn gap_shapes() {
        let mut s = Session::new(false);
        let x = s.input(Tensor::ones([2, 3, 4, 4]));
        let y = GlobalAvgPool::new().forward(&mut s, x);
        assert_eq!(s.value(y).dims(), &[2, 3]);
        assert!(s.value(y).allclose(&Tensor::ones([2, 3]), 1e-6));
    }

    #[test]
    fn pools_have_no_params() {
        assert_eq!(GlobalAvgPool::new().param_count(), 0);
        assert_eq!(
            MaxPool2d::new(ConvGeometry::square(2, 2, 0)).param_count(),
            0
        );
        assert_eq!(
            AvgPool2d::new(ConvGeometry::square(2, 2, 0)).param_count(),
            0
        );
    }

    #[test]
    fn max_and_avg_forward() {
        let mut s = Session::new(false);
        let x = s.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap());
        let y = MaxPool2d::new(ConvGeometry::square(2, 2, 0)).forward(&mut s, x);
        assert_eq!(s.value(y).item(), 4.0);
        let z = AvgPool2d::new(ConvGeometry::square(2, 2, 0)).forward(&mut s, x);
        assert_eq!(s.value(z).item(), 2.5);
    }
}
