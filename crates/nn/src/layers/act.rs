//! Activation layers, including the *decayable* activations at the heart of
//! Progressive Linearization Tuning (PLT).
//!
//! A [`Slope`] is a shared handle to the decay parameter `alpha` of paper
//! Eq. 2 (`y = max(alpha*x, x)`): `alpha = 0` keeps the activation
//! non-linear, `alpha = 1` turns it into the identity. PLT holds clones of
//! the slopes inside every inserted block and sweeps them from 0 to 1.

use crate::{Forward, Module, Parameter};
use nb_autograd::Value;
use std::cell::Cell;
use std::rc::Rc;

/// Shared decay-slope handle (`alpha` of paper Eq. 2).
#[derive(Clone, Debug, Default)]
pub struct Slope(Rc<Cell<f32>>);

impl Slope {
    /// A fresh slope at `alpha = 0` (fully non-linear).
    pub fn new() -> Self {
        Slope(Rc::new(Cell::new(0.0)))
    }

    /// Current `alpha`.
    pub fn get(&self) -> f32 {
        self.0.get()
    }

    /// Sets `alpha`, clamped to `[0, 1]`.
    pub fn set(&self, alpha: f32) {
        self.0.set(alpha.clamp(0.0, 1.0));
    }

    /// True once the activation has fully decayed to the identity.
    pub fn is_linearized(&self) -> bool {
        self.0.get() >= 1.0
    }
}

/// The non-linearity family an [`Activation`] applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// ReLU clamped at 6 (the MobileNetV2 default).
    Relu6,
    /// No-op (used after linear bottleneck projections).
    Identity,
}

/// An activation layer with a decayable slope.
///
/// Ordinary network activations keep their slope at 0 forever; activations
/// inside NetBooster's inserted blocks share their [`Slope`] with the PLT
/// scheduler, which decays them to the identity before contraction.
#[derive(Clone, Debug)]
pub struct Activation {
    kind: ActKind,
    slope: Slope,
}

impl Activation {
    /// A standard (non-decaying) activation.
    pub fn new(kind: ActKind) -> Self {
        Activation {
            kind,
            slope: Slope::new(),
        }
    }

    /// An activation whose slope is externally driven (by PLT).
    pub fn with_slope(kind: ActKind, slope: Slope) -> Self {
        Activation { kind, slope }
    }

    /// The activation family.
    pub fn kind(&self) -> ActKind {
        self.kind
    }

    /// The slope handle.
    pub fn slope(&self) -> &Slope {
        &self.slope
    }

    /// True when this activation currently computes the identity (either by
    /// kind or because its slope has fully decayed).
    pub fn is_linear(&self) -> bool {
        self.kind == ActKind::Identity || self.slope.is_linearized()
    }
}

impl Module for Activation {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        let alpha = self.slope.get();
        match self.kind {
            ActKind::Relu => f.relu_decay(x, alpha),
            ActKind::Relu6 => f.relu6_decay(x, alpha),
            ActKind::Identity => x,
        }
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use nb_tensor::Tensor;

    #[test]
    fn slope_shared_between_clones() {
        let s = Slope::new();
        let t = s.clone();
        t.set(0.5);
        assert_eq!(s.get(), 0.5);
        s.set(2.0);
        assert_eq!(t.get(), 1.0); // clamped
        assert!(t.is_linearized());
    }

    #[test]
    fn relu_activation_forward() {
        let act = Activation::new(ActKind::Relu);
        let mut sess = Session::new(false);
        let x = sess.input(Tensor::from_vec(vec![-1.0, 2.0], [2]).unwrap());
        let y = act.forward(&mut sess, x);
        assert_eq!(sess.value(y).as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn decayed_activation_is_identity() {
        let slope = Slope::new();
        let act = Activation::with_slope(ActKind::Relu6, slope.clone());
        slope.set(1.0);
        assert!(act.is_linear());
        let mut sess = Session::new(false);
        let x = sess.input(Tensor::from_vec(vec![-3.0, 9.0], [2]).unwrap());
        let y = act.forward(&mut sess, x);
        assert_eq!(sess.value(y).as_slice(), &[-3.0, 9.0]);
    }

    #[test]
    fn identity_kind_passes_value_through() {
        let act = Activation::new(ActKind::Identity);
        let mut sess = Session::new(false);
        let x = sess.input(Tensor::from_vec(vec![-5.0], [1]).unwrap());
        let y = act.forward(&mut sess, x);
        assert_eq!(x, y);
        assert!(act.is_linear());
    }

    #[test]
    fn activation_has_no_params() {
        let act = Activation::new(ActKind::Relu);
        assert_eq!(act.param_count(), 0);
    }
}
