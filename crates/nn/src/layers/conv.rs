//! Convolution layers.

use crate::{init, join_name, Forward, Module, Parameter};
use nb_autograd::Value;
use nb_tensor::{ConvGeometry, Tensor};
use rand::Rng;

/// A dense 2-D convolution layer.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    geom: ConvGeometry,
    in_channels: usize,
    out_channels: usize,
}

impl Conv2d {
    /// A Kaiming-initialized conv layer.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        geom: ConvGeometry,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = Parameter::new(init::kaiming_normal(
            [out_channels, in_channels, geom.kh, geom.kw],
            rng,
        ));
        let bias = bias.then(|| Parameter::new_no_decay(Tensor::zeros([out_channels])));
        Conv2d {
            weight,
            bias,
            geom,
            in_channels,
            out_channels,
        }
    }

    /// Builds a conv layer from explicit weight (and optional bias) tensors.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not rank 4 or the bias length differs from
    /// the weight's output channels.
    pub fn from_weights(weight: Tensor, bias: Option<Tensor>, geom: ConvGeometry) -> Self {
        let d = weight.dims().to_vec();
        assert_eq!(d.len(), 4, "conv weight must be rank 4");
        assert_eq!(
            (d[2], d[3]),
            (geom.kh, geom.kw),
            "weight kernel vs geometry"
        );
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[d[0]], "bias length vs out channels");
        }
        Conv2d {
            in_channels: d[1],
            out_channels: d[0],
            weight: Parameter::new(weight),
            bias: bias.map(Parameter::new_no_decay),
            geom,
        }
    }

    /// The layer's weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// The layer's bias parameter, if any.
    pub fn bias(&self) -> Option<&Parameter> {
        self.bias.as_ref()
    }

    /// The convolution geometry.
    pub fn geom(&self) -> ConvGeometry {
        self.geom
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Multiply–accumulate count for an input of the given spatial size.
    pub fn flops(&self, h: usize, w: usize) -> u64 {
        let (ho, wo) = self.geom.output_hw(h, w);
        (self.out_channels * self.in_channels * self.geom.kh * self.geom.kw) as u64
            * (ho * wo) as u64
    }
}

impl Module for Conv2d {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.conv2d(x, &self.weight, self.bias.as_ref(), self.geom)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Parameter)) {
        f(&join_name(prefix, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            f(&join_name(prefix, "bias"), b);
        }
    }
}

/// A depthwise 2-D convolution layer (`groups == channels`).
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    geom: ConvGeometry,
    channels: usize,
}

impl DepthwiseConv2d {
    /// A Kaiming-initialized depthwise conv layer.
    pub fn new(channels: usize, geom: ConvGeometry, bias: bool, rng: &mut impl Rng) -> Self {
        let weight = Parameter::new(init::kaiming_normal([channels, geom.kh, geom.kw], rng));
        let bias = bias.then(|| Parameter::new_no_decay(Tensor::zeros([channels])));
        DepthwiseConv2d {
            weight,
            bias,
            geom,
            channels,
        }
    }

    /// Builds a depthwise layer from an explicit `[c, kh, kw]` weight.
    ///
    /// # Panics
    ///
    /// Panics on shape inconsistencies.
    pub fn from_weights(weight: Tensor, bias: Option<Tensor>, geom: ConvGeometry) -> Self {
        let d = weight.dims().to_vec();
        assert_eq!(d.len(), 3, "depthwise weight must be rank 3");
        assert_eq!(
            (d[1], d[2]),
            (geom.kh, geom.kw),
            "weight kernel vs geometry"
        );
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[d[0]], "bias length vs channels");
        }
        DepthwiseConv2d {
            channels: d[0],
            weight: Parameter::new(weight),
            bias: bias.map(Parameter::new_no_decay),
            geom,
        }
    }

    /// The layer's weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// The layer's bias parameter, if any.
    pub fn bias(&self) -> Option<&Parameter> {
        self.bias.as_ref()
    }

    /// The convolution geometry.
    pub fn geom(&self) -> ConvGeometry {
        self.geom
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Multiply–accumulate count for an input of the given spatial size.
    pub fn flops(&self, h: usize, w: usize) -> u64 {
        let (ho, wo) = self.geom.output_hw(h, w);
        (self.channels * self.geom.kh * self.geom.kw) as u64 * (ho * wo) as u64
    }
}

impl Module for DepthwiseConv2d {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        f.depthwise_conv2d(x, &self.weight, self.bias.as_ref(), self.geom)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Parameter)) {
        f(&join_name(prefix, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            f(&join_name(prefix, "bias"), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 8, ConvGeometry::same(3, 2), true, &mut rng);
        let mut s = Session::new(false);
        let x = s.input(Tensor::randn([2, 3, 8, 8], &mut rng));
        let y = conv.forward(&mut s, x);
        assert_eq!(s.value(y).dims(), &[2, 8, 4, 4]);
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn conv_names() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(1, 2, ConvGeometry::pointwise(), true, &mut rng);
        let mut names = Vec::new();
        conv.visit_params("stem", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["stem.weight", "stem.bias"]);
    }

    #[test]
    fn conv_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(2, 4, ConvGeometry::pointwise(), true, &mut rng);
        let mut s = Session::new(true);
        let x = s.input(Tensor::randn([1, 2, 3, 3], &mut rng));
        let y = conv.forward(&mut s, x);
        let loss = s.graph.mean_all(y);
        s.backward(loss);
        assert!(conv.weight().grad().abs_sum() > 0.0);
        assert!(conv.bias().unwrap().grad().abs_sum() > 0.0);
    }

    #[test]
    fn depthwise_forward_and_flops() {
        let mut rng = StdRng::seed_from_u64(2);
        let dw = DepthwiseConv2d::new(4, ConvGeometry::same(3, 1), false, &mut rng);
        let mut s = Session::new(false);
        let x = s.input(Tensor::randn([1, 4, 6, 6], &mut rng));
        let y = dw.forward(&mut s, x);
        assert_eq!(s.value(y).dims(), &[1, 4, 6, 6]);
        assert_eq!(dw.flops(6, 6), (4 * 9 * 36) as u64);
        assert_eq!(dw.param_count(), 36);
    }

    #[test]
    fn flops_pointwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let pw = Conv2d::new(8, 16, ConvGeometry::pointwise(), false, &mut rng);
        assert_eq!(pw.flops(4, 4), (16 * 8 * 16) as u64);
    }

    #[test]
    fn from_weights_roundtrip() {
        let w = Tensor::from_fn([2, 3, 1, 1], |i| i as f32);
        let conv = Conv2d::from_weights(w.clone(), None, ConvGeometry::pointwise());
        assert_eq!(conv.weight().value(), w);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 2);
    }
}
