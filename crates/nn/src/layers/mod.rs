//! Layer implementations.

mod act;
mod conv;
mod linear;
mod norm;
mod pool;

pub use act::{ActKind, Activation, Slope};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use linear::Linear;
pub use norm::{BatchNorm2d, BnUpdate};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
