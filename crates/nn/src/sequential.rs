//! A heterogeneous layer stack.

use crate::{Forward, Module, Parameter};
use nb_autograd::Value;

/// An ordered stack of boxed modules applied in sequence.
///
/// Used for classifier and detection heads; the backbone architectures in
/// `nb-models` are typed structs instead, so NetBooster can perform surgery
/// on specific blocks.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: impl Module + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, f: &mut dyn Forward, x: Value) -> Value {
        let mut cur = x;
        for layer in &self.layers {
            cur = layer.forward(f, cur);
        }
        cur
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Parameter)) {
        for (i, layer) in self.layers.iter().enumerate() {
            let name = crate::join_name(prefix, &i.to_string());
            layer.visit_params(&name, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{ActKind, Activation, Linear};
    use crate::Session;
    use nb_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stack_applies_in_order() {
        let w = Tensor::from_vec(vec![-1.0], [1, 1]).unwrap();
        let seq = Sequential::new()
            .push(Linear::from_weights(w, None))
            .push(Activation::new(ActKind::Relu));
        let mut s = Session::new(false);
        let x = s.input(Tensor::from_vec(vec![3.0], [1, 1]).unwrap());
        let y = seq.forward(&mut s, x);
        assert_eq!(s.value(y).item(), 0.0); // relu(-3)
        assert_eq!(seq.len(), 2);
    }

    #[test]
    fn params_named_by_index() {
        let mut rng = StdRng::seed_from_u64(0);
        let seq = Sequential::new()
            .push(Linear::new(2, 2, true, &mut rng))
            .push(Linear::new(2, 1, false, &mut rng));
        let mut names = Vec::new();
        seq.visit_params("head", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["head.0.weight", "head.0.bias", "head.1.weight"]);
    }
}
