//! Trainable parameters: shared, interior-mutable tensors with gradient
//! accumulators.

use nb_tensor::Tensor;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

struct ParamInner {
    value: Tensor,
    grad: Tensor,
    /// Whether weight decay applies (disabled for biases and norm affines).
    decay: bool,
    /// Whether the parameter receives gradients (false = frozen).
    trainable: bool,
}

/// A trainable tensor shared between a layer and the optimizer.
///
/// `Parameter` is a cheap clone (reference-counted); all clones view the same
/// value and gradient. Gradients accumulate across
/// [`Session::backward`](crate::Session::backward) calls until
/// [`zero_grad`](Parameter::zero_grad).
#[derive(Clone)]
pub struct Parameter {
    inner: Rc<RefCell<ParamInner>>,
}

impl Parameter {
    /// Wraps a tensor as a decayable parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Parameter {
            inner: Rc::new(RefCell::new(ParamInner {
                value,
                grad,
                decay: true,
                trainable: true,
            })),
        }
    }

    /// Wraps a tensor as a parameter exempt from weight decay (for biases
    /// and normalization affines).
    pub fn new_no_decay(value: Tensor) -> Self {
        let p = Self::new(value);
        p.inner.borrow_mut().decay = false;
        p
    }

    /// A copy of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// Replaces the value (the gradient buffer is resized to match).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = Tensor::zeros(value.shape().clone());
        inner.value = value;
    }

    /// A copy of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.borrow().grad.clone()
    }

    /// Accumulates `g` into the gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s shape differs from the parameter's.
    pub fn add_grad(&self, g: &Tensor) {
        self.inner.borrow_mut().grad.add_assign(g);
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad.fill_zero();
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }

    /// Whether weight decay applies to this parameter.
    pub fn decay(&self) -> bool {
        self.inner.borrow().decay
    }

    /// Whether the parameter currently receives gradients.
    pub fn trainable(&self) -> bool {
        self.inner.borrow().trainable
    }

    /// Freezes or unfreezes the parameter. Frozen parameters are bound into
    /// sessions as constants, so no gradient is computed for them (used for
    /// linear-probe transfer).
    pub fn set_trainable(&self, trainable: bool) {
        self.inner.borrow_mut().trainable = trainable;
    }

    /// Runs `f` with mutable access to `(value, grad)` — the optimizer's
    /// update hook.
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let inner = &mut *self.inner.borrow_mut();
        f(&mut inner.value, &inner.grad);
    }

    /// Stable identity key: clones of the same parameter share it.
    pub fn key(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }
}

impl fmt::Debug for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "Parameter({}, decay={}, |g|={:.3e})",
            inner.value.shape(),
            inner.decay,
            inner.grad.abs_sum()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let p = Parameter::new(Tensor::zeros([2]));
        let q = p.clone();
        q.set_value(Tensor::ones([2]));
        assert_eq!(p.value().as_slice(), &[1.0, 1.0]);
        assert_eq!(p.key(), q.key());
    }

    #[test]
    fn grad_accumulates_and_clears() {
        let p = Parameter::new(Tensor::zeros([2]));
        p.add_grad(&Tensor::ones([2]));
        p.add_grad(&Tensor::ones([2]));
        assert_eq!(p.grad().as_slice(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn update_hook_sees_grad() {
        let p = Parameter::new(Tensor::ones([2]));
        p.add_grad(&Tensor::full([2], 0.5));
        p.update(|v, g| {
            let step = g.scale(-1.0);
            v.add_assign(&step);
        });
        assert_eq!(p.value().as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn decay_flags() {
        assert!(Parameter::new(Tensor::zeros([1])).decay());
        assert!(!Parameter::new_no_decay(Tensor::zeros([1])).decay());
    }
}
