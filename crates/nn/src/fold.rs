//! Eval-mode batch-norm folding (paper Sec. III-D, Eq. 3).
//!
//! An eval-mode batch norm is a per-channel affine map
//! `y = scale * x + shift` with `scale = gamma / sqrt(var + eps)` and
//! `shift = beta - scale * mean`, so it commutes into the weights of the
//! preceding convolution. These folds are the first step of expanded-block
//! contraction in `netbooster-core` (which re-exports [`fold_bn`]) and of
//! the eval-time compile pass in [`crate::plan`].
//!
//! Folding reassociates the per-channel scale into each multiply-accumulate,
//! so the folded layer is mathematically exact but not bitwise identical to
//! conv-then-bn; callers needing bitwise parity keep the bn as a separate
//! pass (see `CompiledPlan`'s `fold_bn` option).
//!
//! There is no linear+bn fold: [`BatchNorm2d`] normalizes `NCHW` activations
//! and in this stack never follows a rank-2 linear layer.

use crate::layers::BatchNorm2d;
use nb_tensor::Tensor;

/// Folds an eval-mode batch norm into a dense conv weight/bias.
///
/// Returns `(w', b')` with `w'[o] = scale[o] * w[o]` and
/// `b'[o] = scale[o] * b[o] + shift[o]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn fold_bn(weight: &Tensor, bias: Option<&Tensor>, bn: &BatchNorm2d) -> (Tensor, Tensor) {
    let d = weight.dims().to_vec();
    assert_eq!(d.len(), 4, "fold_bn expects dense [o,i,kh,kw] weight");
    let o = d[0];
    assert_eq!(bn.channels(), o, "bn channels vs conv out");
    let (scale, shift) = bn.eval_affine();
    let per_out = d[1] * d[2] * d[3];
    let ws = weight.as_slice();
    let w = Tensor::from_fn(weight.shape().clone(), |i| {
        ws[i] * scale.as_slice()[i / per_out]
    });
    let b = Tensor::from_fn([o], |i| {
        shift.as_slice()[i] + scale.as_slice()[i] * bias.map(|b| b.as_slice()[i]).unwrap_or(0.0)
    });
    (w, b)
}

/// [`fold_bn`] for a depthwise `[c, kh, kw]` weight: channel `c`'s filter
/// scales by `scale[c]`, and the bias becomes `scale[c] * b[c] + shift[c]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn fold_bn_depthwise(
    weight: &Tensor,
    bias: Option<&Tensor>,
    bn: &BatchNorm2d,
) -> (Tensor, Tensor) {
    let d = weight.dims().to_vec();
    assert_eq!(d.len(), 3, "fold_bn_depthwise expects [c,kh,kw] weight");
    let c = d[0];
    assert_eq!(bn.channels(), c, "bn channels vs depthwise channels");
    let (scale, shift) = bn.eval_affine();
    let per_ch = d[1] * d[2];
    let ws = weight.as_slice();
    let w = Tensor::from_fn(weight.shape().clone(), |i| {
        ws[i] * scale.as_slice()[i / per_ch]
    });
    let b = Tensor::from_fn([c], |i| {
        shift.as_slice()[i] + scale.as_slice()[i] * bias.map(|b| b.as_slice()[i]).unwrap_or(0.0)
    });
    (w, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_tensor::{conv2d, depthwise_conv2d, ConvGeometry};
    use rand::{rngs::StdRng, SeedableRng};

    fn random_bn(c: usize, rng: &mut StdRng) -> BatchNorm2d {
        let bn = BatchNorm2d::new(c);
        bn.set_running_stats(
            Tensor::randn([c], rng),
            Tensor::randn([c], rng).map(|v| v.abs() + 0.5),
        );
        bn
    }

    #[test]
    fn folded_dense_conv_matches_conv_then_bn() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let w = Tensor::randn([6, 3, 3, 3], &mut rng);
        let b = Tensor::randn([6], &mut rng);
        let bn = random_bn(6, &mut rng);
        let (scale, shift) = bn.eval_affine();
        let mut want = conv2d(&x, &w, Some(&b), ConvGeometry::same(3, 1));
        nb_tensor::eltwise::bn_apply_inplace(
            &mut want,
            &scale,
            &shift,
            &Tensor::zeros([6]),
            &Tensor::full([6], 1.0),
        );
        let (wf, bf) = fold_bn(&w, Some(&b), &bn);
        let got = conv2d(&x, &wf, Some(&bf), ConvGeometry::same(3, 1));
        assert!(got.allclose(&want, 1e-4), "folded dense conv diverged");
    }

    #[test]
    fn folded_depthwise_conv_matches_conv_then_bn() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn([2, 4, 8, 8], &mut rng);
        let w = Tensor::randn([4, 3, 3], &mut rng);
        let bn = random_bn(4, &mut rng);
        let (scale, shift) = bn.eval_affine();
        let mut want = depthwise_conv2d(&x, &w, None, ConvGeometry::same(3, 1));
        nb_tensor::eltwise::bn_apply_inplace(
            &mut want,
            &scale,
            &shift,
            &Tensor::zeros([4]),
            &Tensor::full([4], 1.0),
        );
        let (wf, bf) = fold_bn_depthwise(&w, None, &bn);
        let got = depthwise_conv2d(&x, &wf, Some(&bf), ConvGeometry::same(3, 1));
        assert!(got.allclose(&want, 1e-4), "folded depthwise conv diverged");
    }
}
