//! nb-serve concurrency suite: batcher bitwise-invariance properties,
//! LRU plan-cache behavior, end-to-end server parity, and the
//! shutdown/drain stress test.
//!
//! Everything here is deterministic given the vendored-RNG seeds; the
//! stress test additionally arms a watchdog so a drain deadlock aborts
//! the run loudly instead of hanging CI.

use nb_nn::layers::{ActKind, Activation, Conv2d, DepthwiseConv2d, GlobalAvgPool, Linear};
use nb_nn::{CompiledPlan, Module, PlanOptions, QuantPolicy, Sequential};
use nb_serve::{
    coalesce, plan_cost, split_batch, ModelSpec, PlanCache, ServeConfig, Server, SubmitError,
};
use nb_tensor::{ConvGeometry, Tensor};
use proptest::{proptest, ProptestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Per-request sample shape used throughout the suite.
const SAMPLE: [usize; 3] = [3, 8, 8];
/// Probe batch the test plans compile at (replay accepts any batch).
const PROBE: [usize; 4] = [4, 3, 8, 8];

/// conv -> relu -> depthwise -> relu6 -> gap -> linear: small enough to
/// compile per test case, deep enough to exercise fused epilogues, the
/// packed GEMM, and the arena recycling path.
fn small_model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new()
        .push(Conv2d::new(3, 6, ConvGeometry::same(3, 1), true, &mut rng))
        .push(Activation::new(ActKind::Relu))
        .push(DepthwiseConv2d::new(
            6,
            ConvGeometry::same(3, 1),
            false,
            &mut rng,
        ))
        .push(Activation::new(ActKind::Relu6))
        .push(GlobalAvgPool::new())
        .push(Linear::new(6, 5, true, &mut rng))
}

fn plan_for(seed: u64) -> CompiledPlan {
    let model = small_model(seed);
    CompiledPlan::compile(&PROBE, |f, v| model.forward(f, v))
}

/// Int8 twin of [`plan_for`]: deterministic calibration batches, so
/// eviction round-trips recompile to an identical plan. Forces
/// `QuantPolicy::All` — the Auto shape policy would keep this deliberately
/// tiny model in f32, and the suite wants the quantized serving path.
fn quant_plan_for(seed: u64) -> CompiledPlan {
    let model = small_model(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51c0_ffee);
    let calib: Vec<Tensor> = (0..2).map(|_| Tensor::randn(PROBE, &mut rng)).collect();
    CompiledPlan::compile_quantized_with(
        &PROBE,
        PlanOptions {
            quant_policy: QuantPolicy::All,
            ..PlanOptions::default()
        },
        &calib,
        |f, v| model.forward(f, v),
    )
}

fn solo_run(plan: &CompiledPlan, sample: &Tensor) -> Tensor {
    plan.run(&coalesce(std::slice::from_ref(sample)))
}

/// Aborts the process if `disarm` is not called within `secs` — turns a
/// drain deadlock into a loud failure instead of a hung test binary.
fn watchdog(secs: u64, what: &'static str) -> impl FnOnce() {
    let (tx, rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        if let Err(mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(Duration::from_secs(secs)) {
            eprintln!("watchdog: {what} exceeded {secs}s — likely deadlock");
            std::process::abort();
        }
    });
    move || drop(tx)
}

// --- batcher properties -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A request's slice of a coalesced batch is bitwise identical to
    /// running that request alone at batch 1 — the contract that makes
    /// dynamic batching invisible to clients.
    #[test]
    fn coalesced_replay_is_bitwise_equal_to_solo(n in 1usize..9, seed in 0u64..1_000_000) {
        let plan = plan_for(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Tensor> = (0..n).map(|_| Tensor::randn(SAMPLE, &mut rng)).collect();
        let outs = split_batch(&plan.run(&coalesce(&samples)), n);
        for (s, got) in samples.iter().zip(&outs) {
            let solo = solo_run(&plan, s);
            proptest::prop_assert_eq!(solo.dims(), got.dims());
            proptest::prop_assert_eq!(solo.as_slice(), got.as_slice());
        }
    }

    /// Coalesce/split round-trips every sample exactly once, in order —
    /// nothing dropped, nothing duplicated, nothing reordered.
    #[test]
    fn coalesce_split_preserves_every_sample(n in 1usize..12, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Tensor> = (0..n).map(|_| Tensor::randn(SAMPLE, &mut rng)).collect();
        let back = split_batch(&coalesce(&samples), n);
        proptest::prop_assert_eq!(back.len(), n);
        for (s, got) in samples.iter().zip(&back) {
            proptest::prop_assert_eq!(s.as_slice(), got.as_slice());
        }
    }
}

// --- LRU plan cache -----------------------------------------------------

#[test]
fn cache_evicts_in_lru_order_and_touch_refreshes() {
    let unit = plan_cost(&plan_for(1));
    assert!(unit > 0);
    let cache = PlanCache::new(2 * unit);
    cache.get_or_compile("a", || plan_for(1));
    cache.get_or_compile("b", || plan_for(2));
    assert_eq!(cache.resident_keys(), ["a", "b"]);

    // Touch "a" so "b" becomes the coldest, then admit "c": "b" goes.
    cache.get_or_compile("a", || unreachable!("a is resident"));
    cache.get_or_compile("c", || plan_for(3));
    assert_eq!(cache.resident_keys(), ["a", "c"]);
    assert!(!cache.contains("b"));

    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
}

#[test]
fn cache_accounting_stays_within_capacity() {
    let unit = plan_cost(&plan_for(1));
    let cache = PlanCache::new(2 * unit);
    for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
        cache.get_or_compile(key, || plan_for(i as u64 + 1));
        assert!(
            cache.resident_bytes() <= cache.capacity_bytes(),
            "resident {} over capacity {}",
            cache.resident_bytes(),
            cache.capacity_bytes()
        );
        // The accounting must equal the sum of the resident plans' costs.
        assert_eq!(cache.resident_bytes(), cache.resident_keys().len() * unit);
    }
    assert_eq!(cache.stats().evictions, 2);
}

#[test]
fn oversized_plan_is_still_admitted_alone() {
    // A single plan larger than the capacity must still be served (the
    // bound degrades to max(capacity, largest plan)), but it cannot share
    // residency with anything else.
    let cache = PlanCache::new(1);
    cache.get_or_compile("big", || plan_for(1));
    assert!(cache.contains("big"));
    cache.get_or_compile("other", || plan_for(2));
    assert_eq!(cache.resident_keys(), ["other"]);
}

#[test]
fn recompilation_after_eviction_reproduces_logits_bitwise() {
    let mut rng = StdRng::seed_from_u64(99);
    let x = coalesce(&[Tensor::randn(SAMPLE, &mut rng)]);
    let unit = plan_cost(&plan_for(1));
    let cache = PlanCache::new(unit);

    let first = cache.get_or_compile("a", || plan_for(1)).run(&x);
    // Push "a" out, then pull it back in through the factory.
    cache.get_or_compile("b", || plan_for(2));
    assert!(!cache.contains("a"), "a should have been evicted");
    let again = cache.get_or_compile("a", || plan_for(1)).run(&x);
    assert_eq!(first.as_slice(), again.as_slice(), "recompile parity");
    assert_eq!(cache.stats().misses, 3, "second 'a' lookup recompiles");
}

#[test]
fn evicted_plan_survives_for_in_flight_holders() {
    let unit = plan_cost(&plan_for(1));
    let cache = PlanCache::new(unit);
    let held = cache.get_or_compile("a", || plan_for(1));
    cache.get_or_compile("b", || plan_for(2));
    assert!(!cache.contains("a"));
    // The Arc handed out earlier still replays after eviction.
    let mut rng = StdRng::seed_from_u64(5);
    let x = coalesce(&[Tensor::randn(SAMPLE, &mut rng)]);
    assert_eq!(held.run(&x).dims(), &[1, 5]);
}

#[test]
fn cache_charges_actual_packed_bytes_for_mixed_f32_i8_residency() {
    // The LRU must charge each plan what it actually holds: i8 panels plus
    // scale tables for a quantized plan, not an assumed-f32 footprint.
    let f = plan_for(1);
    let q = quant_plan_for(1);
    assert!(
        q.packed_bytes() < f.packed_bytes(),
        "i8 panels should undercut f32 ({} vs {})",
        q.packed_bytes(),
        f.packed_bytes()
    );
    assert!(plan_cost(&q) < plan_cost(&f));

    let cache = PlanCache::new(plan_cost(&f) + plan_cost(&q));
    cache.get_or_compile("f32", || plan_for(1));
    cache.get_or_compile("int8", || quant_plan_for(1));
    // Both fit exactly when the quant plan is charged its true (smaller)
    // cost; an f32-assumed charge would already have evicted here.
    assert_eq!(cache.resident_keys(), ["f32", "int8"]);
    assert_eq!(cache.resident_bytes(), plan_cost(&f) + plan_cost(&q));
    assert_eq!(cache.stats().evictions, 0);

    // One more f32-sized tenant pushes the mixed set over: the coldest
    // (the f32 plan) goes, the cheaper quantized tenant stays warm.
    cache.get_or_compile("f32b", || plan_for(2));
    assert!(!cache.contains("f32"));
    assert!(cache.contains("int8"));
    assert_eq!(cache.stats().evictions, 1);
}

// --- server end-to-end --------------------------------------------------

#[test]
fn quantized_plan_through_server_is_bitwise_identical_to_solo() {
    // Integer accumulation is exact under any schedule, so server replay
    // (coalesced batches, worker threads, recycled arenas) must reproduce
    // solo quantized replay bit for bit — no tolerance.
    let server = Server::start(
        ServeConfig {
            workers: 3,
            max_batch: 4,
            ..ServeConfig::default()
        },
        vec![ModelSpec::new("int8", SAMPLE, || quant_plan_for(1))],
    );
    let reference = quant_plan_for(1);
    let mut rng = StdRng::seed_from_u64(23);
    let inputs: Vec<Tensor> = (0..24).map(|_| Tensor::randn(SAMPLE, &mut rng)).collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| server.submit("int8", x.clone()).expect("submit"))
        .collect();
    for (x, ticket) in inputs.iter().zip(tickets) {
        let resp = ticket.wait();
        let want = solo_run(&reference, x);
        assert_eq!(resp.output.dims(), want.dims());
        assert_eq!(
            resp.output.as_slice(),
            want.as_slice(),
            "quant serve parity"
        );
    }
    server.join();
}

#[test]
fn server_answers_every_request_bitwise_across_tenants() {
    let server = Server::start(
        ServeConfig {
            workers: 3,
            max_batch: 4,
            ..ServeConfig::default()
        },
        vec![
            ModelSpec::new("alpha", SAMPLE, || plan_for(1)),
            ModelSpec::new("beta", SAMPLE, || plan_for(2)),
        ],
    );
    let reference = [plan_for(1), plan_for(2)];
    let mut rng = StdRng::seed_from_u64(7);
    let inputs: Vec<(usize, Tensor)> = (0..60)
        .map(|i| (i % 2, Tensor::randn(SAMPLE, &mut rng)))
        .collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|(m, x)| {
            let name = if *m == 0 { "alpha" } else { "beta" };
            server.submit(name, x.clone()).expect("submit")
        })
        .collect();
    // Each response must carry exactly its own request's logits — a
    // dropped, duplicated, or cross-tenant-mixed request cannot pass.
    for ((m, x), ticket) in inputs.iter().zip(tickets) {
        let resp = ticket.wait();
        let want = solo_run(&reference[*m], x);
        assert_eq!(resp.output.dims(), want.dims());
        assert_eq!(resp.output.as_slice(), want.as_slice());
    }
    let stats = server.stats();
    assert_eq!(stats.accepted, 60);
    assert_eq!(stats.completed, 60);
    assert_eq!(stats.cache.misses, 2, "one compile per tenant");
    server.join();
}

#[test]
fn submit_rejects_unknown_model_and_bad_shape() {
    let server = Server::start(
        ServeConfig::default(),
        vec![ModelSpec::new("m", SAMPLE, || plan_for(1))],
    );
    assert_eq!(
        server.submit("nope", Tensor::zeros(SAMPLE)).err(),
        Some(SubmitError::UnknownModel)
    );
    assert_eq!(
        server.submit("m", Tensor::zeros([3, 8, 9])).err(),
        Some(SubmitError::BadShape)
    );
    server.join();
}

#[test]
fn queue_cap_rejects_overload_without_dropping_accepted() {
    // One worker, tiny queue: saturate it faster than it drains and check
    // that rejections are loud while accepted requests all complete.
    let server = Server::start(
        ServeConfig {
            workers: 1,
            max_batch: 2,
            queue_cap: 4,
            ..ServeConfig::default()
        },
        vec![ModelSpec::new("m", SAMPLE, || plan_for(1))],
    );
    let mut rng = StdRng::seed_from_u64(11);
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..200 {
        match server.submit("m", Tensor::randn(SAMPLE, &mut rng)) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    let accepted = tickets.len();
    for t in tickets {
        t.wait();
    }
    let stats = server.stats();
    assert_eq!(stats.accepted as usize, accepted);
    assert_eq!(stats.completed as usize, accepted);
    assert_eq!(accepted + rejected, 200);
    server.join();
}

// --- shutdown/drain stress ----------------------------------------------

#[test]
fn shutdown_mid_burst_answers_every_accepted_request() {
    let disarm = watchdog(120, "shutdown/drain stress");
    let server = Server::start(
        ServeConfig {
            workers: 3,
            max_batch: 4,
            queue_cap: 1 << 14,
            ..ServeConfig::default()
        },
        vec![
            ModelSpec::new("alpha", SAMPLE, || plan_for(1)),
            ModelSpec::new("beta", SAMPLE, || plan_for(2)),
        ],
    );
    let accepted_total = AtomicUsize::new(0);
    let server_ref = &server;
    let accepted_ref = &accepted_total;
    crossbeam::thread::scope(|s| {
        let producers: Vec<_> = (0..4)
            .map(|p| {
                s.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(100 + p as u64);
                    let name = if p % 2 == 0 { "alpha" } else { "beta" };
                    let mut tickets = Vec::new();
                    loop {
                        match server_ref.submit(name, Tensor::randn(SAMPLE, &mut rng)) {
                            Ok(t) => tickets.push(t),
                            Err(SubmitError::Shutdown) => break,
                            Err(e) => panic!("unexpected rejection: {e}"),
                        }
                        if tickets.len() >= 2000 {
                            break; // safety valve if shutdown flips late
                        }
                    }
                    accepted_ref.fetch_add(tickets.len(), Ordering::SeqCst);
                    // Drain guarantee: every accepted ticket is answered,
                    // within the watchdog budget.
                    for t in tickets {
                        let resp = t
                            .wait_timeout(Duration::from_secs(60))
                            .expect("accepted request never answered");
                        assert_eq!(resp.output.dims(), &[1, 5]);
                    }
                })
            })
            .collect();
        // Let the burst build real queue depth, then flip mid-stream.
        std::thread::sleep(Duration::from_millis(20));
        server_ref.begin_shutdown();
        for h in producers {
            h.join().expect("producer panicked");
        }
    })
    .expect("crossbeam scope");

    let stats = server.stats();
    assert_eq!(
        stats.accepted as usize,
        accepted_total.load(Ordering::SeqCst)
    );
    assert_eq!(
        stats.completed, stats.accepted,
        "drain must answer exactly the accepted set"
    );
    assert!(
        server.submit("alpha", Tensor::zeros(SAMPLE)).err() == Some(SubmitError::Shutdown),
        "post-shutdown submits must be rejected"
    );
    // Join must return (workers exit once drained) — watchdog aborts if not.
    server.join();
    disarm();
}
