//! Dynamic-batching primitives: coalesce single-sample requests into one
//! batched tensor, replay the plan once, and split the batched output back
//! into per-request tensors.
//!
//! Coalescing is a pure memory concatenation along a new leading batch
//! dimension, and every kernel the compiled plan replays is per-sample
//! independent in its batch dimension (convolutions, depthwise, pooling,
//! and GAP loop over samples; the linear layers' blocked GEMM pins its
//! K-blocking independently of M), so a coalesced request's slice of the
//! batched output is **bitwise identical** to running that request alone
//! at batch 1. The property suite in `tests/serve.rs` holds the server to
//! exactly that.

use nb_tensor::Tensor;

/// Concatenates per-request sample tensors (each `[c, h, w]`-shaped, or
/// any common per-sample shape) into one `[n, ...]` batch.
///
/// # Panics
///
/// Panics on an empty slice or mismatched per-sample dims.
pub fn coalesce(samples: &[Tensor]) -> Tensor {
    assert!(!samples.is_empty(), "coalesce needs at least one sample");
    let sample_dims = samples[0].dims().to_vec();
    let unit: usize = sample_dims.iter().product();
    let mut data = Vec::with_capacity(unit * samples.len());
    for s in samples {
        assert_eq!(
            s.dims(),
            &sample_dims[..],
            "coalesced samples must share per-sample dims"
        );
        data.extend_from_slice(s.as_slice());
    }
    let mut dims = Vec::with_capacity(sample_dims.len() + 1);
    dims.push(samples.len());
    dims.extend_from_slice(&sample_dims);
    Tensor::from_vec(data, dims).expect("coalesced batch shape")
}

/// Splits a `[n, ...]` batched output into `n` per-request tensors of
/// shape `[1, ...]` (matching what a batch-1 run of the same request
/// produces).
///
/// # Panics
///
/// Panics if `batch`'s leading dim is not `n`.
pub fn split_batch(batch: &Tensor, n: usize) -> Vec<Tensor> {
    assert_eq!(batch.dims()[0], n, "split_batch count mismatch");
    let unit: usize = batch.dims()[1..].iter().product();
    let mut dims = batch.dims().to_vec();
    dims[0] = 1;
    let data = batch.as_slice();
    (0..n)
        .map(|i| {
            Tensor::from_vec(data[i * unit..(i + 1) * unit].to_vec(), dims.clone())
                .expect("split sample shape")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coalesce_then_split_round_trips() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<Tensor> = (0..5).map(|_| Tensor::randn([3, 4, 4], &mut rng)).collect();
        let batch = coalesce(&samples);
        assert_eq!(batch.dims(), &[5, 3, 4, 4]);
        let back = split_batch(&batch, 5);
        for (orig, got) in samples.iter().zip(&back) {
            assert_eq!(got.dims(), &[1, 3, 4, 4]);
            assert_eq!(orig.as_slice(), got.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "share per-sample dims")]
    fn mismatched_sample_dims_panic() {
        let a = Tensor::zeros([3, 4, 4]);
        let b = Tensor::zeros([3, 4, 5]);
        coalesce(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_coalesce_panics() {
        coalesce(&[]);
    }
}
