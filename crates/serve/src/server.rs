//! The multi-tenant batched inference server.
//!
//! Requests are single samples addressed to a named model. A shared FIFO
//! queue feeds a fixed pool of worker threads; each worker claims the
//! oldest pending request plus up to `max_batch - 1` more *for the same
//! model* (skipping over other tenants' requests without reordering them),
//! coalesces the batch, replays the model's shared
//! [`CompiledPlan`](nb_nn::CompiledPlan) through a worker-local
//! [`PlanArena`](nb_nn::PlanArena), and answers every request in the
//! batch. Plans live in the byte-bounded [`PlanCache`]; the arena is keyed
//! by model and reused across batches, so a warm worker replays without
//! activation allocation.
//!
//! ## Shutdown contract
//!
//! [`Server::begin_shutdown`] flips the queue into draining mode: new
//! submissions are rejected with [`SubmitError::Shutdown`], while every
//! request accepted before the flip is still batched, executed, and
//! answered. Workers exit only when the queue is empty *and* shutdown is
//! set, so [`Server::join`] (or drop) cannot strand an accepted request —
//! the stress suite submits from many producers, flips shutdown
//! mid-burst, and holds the server to exactly this.

use crate::batcher::{coalesce, split_batch};
use crate::cache::{CacheStats, PlanCache};
use nb_nn::{CompiledPlan, PlanArena};
use nb_tensor::Tensor;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a plan for one tenant model is built on demand.
pub struct ModelSpec {
    name: String,
    sample_dims: Vec<usize>,
    factory: Box<dyn Fn() -> CompiledPlan + Send + Sync>,
}

impl ModelSpec {
    /// A tenant model: `name` keys the plan cache, `sample_dims` is the
    /// per-request sample shape (no batch dimension, e.g. `[3, 32, 32]`),
    /// and `factory` compiles the plan (deterministically — eviction
    /// round-trips recompile through it).
    pub fn new(
        name: impl Into<String>,
        sample_dims: impl Into<Vec<usize>>,
        factory: impl Fn() -> CompiledPlan + Send + Sync + 'static,
    ) -> Self {
        ModelSpec {
            name: name.into(),
            sample_dims: sample_dims.into(),
            factory: Box::new(factory),
        }
    }

    /// The model's cache key.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Server sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads replaying batches (each holds its own arenas).
    pub workers: usize,
    /// Largest batch a worker coalesces from the queue.
    pub max_batch: usize,
    /// Pending-request bound; submissions beyond it are rejected with
    /// [`SubmitError::QueueFull`] (open-loop backpressure).
    pub queue_cap: usize,
    /// Byte capacity of the LRU plan cache.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            queue_cap: 4096,
            cache_bytes: usize::MAX,
        }
    }
}

/// A completed request: the model output (leading batch dim 1) and the
/// instant the worker finished its batch (for latency accounting).
pub struct Response {
    /// The per-request model output, shape `[1, ...]`.
    pub output: Tensor,
    /// When the worker finished the batch containing this request.
    pub finished: Instant,
}

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is draining; no new requests are accepted.
    Shutdown,
    /// The pending queue is at `queue_cap`.
    QueueFull,
    /// No registered model has that name.
    UnknownModel,
    /// The input's dims differ from the model's registered sample dims.
    BadShape,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shutdown => write!(f, "server is shutting down"),
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::UnknownModel => write!(f, "unknown model"),
            SubmitError::BadShape => write!(f, "input dims do not match the model's sample dims"),
        }
    }
}

/// Claim on an accepted request's eventual [`Response`].
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the server dropped the request without answering — a
    /// violation of the drain contract, kept loud on purpose.
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("server dropped an accepted request without responding")
    }

    /// Blocks up to `timeout`; `None` if no response arrived in time.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }
}

struct Request {
    model: usize,
    input: Tensor,
    tx: mpsc::Sender<Response>,
}

struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    cfg: ServeConfig,
    models: Vec<ModelSpec>,
    queue: Mutex<Queue>,
    cv: Condvar,
    cache: PlanCache,
    accepted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
}

/// Lifetime counters for one server.
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
}

impl ServerStats {
    /// Mean requests per executed batch (1.0 = batching never engaged).
    pub fn batch_occupancy(&self) -> f64 {
        self.completed as f64 / (self.batches.max(1)) as f64
    }
}

/// A running multi-tenant inference server; see the module docs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `cfg.workers` worker threads over the given tenant models.
    ///
    /// # Panics
    ///
    /// Panics on zero workers, a zero batch cap, or duplicate model names.
    pub fn start(cfg: ServeConfig, models: Vec<ModelSpec>) -> Self {
        assert!(cfg.workers >= 1, "server needs at least one worker");
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        for (i, m) in models.iter().enumerate() {
            assert!(
                models[..i].iter().all(|p| p.name != m.name),
                "duplicate model name {:?}",
                m.name
            );
        }
        let shared = Arc::new(Shared {
            cfg,
            models,
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            cache: PlanCache::new(cfg.cache_bytes),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nb-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn nb-serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Enqueues one sample for `model`, returning a [`Ticket`] for the
    /// response. Rejections ([`SubmitError`]) never enqueue anything.
    pub fn submit(&self, model: &str, input: Tensor) -> Result<Ticket, SubmitError> {
        let idx = self
            .shared
            .models
            .iter()
            .position(|m| m.name == model)
            .ok_or(SubmitError::UnknownModel)?;
        if input.dims() != &self.shared.models[idx].sample_dims[..] {
            return Err(SubmitError::BadShape);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if q.pending.len() >= self.shared.cfg.queue_cap {
                return Err(SubmitError::QueueFull);
            }
            q.pending.push_back(Request {
                model: idx,
                input,
                tx,
            });
        }
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Flips the server into draining mode: rejects new submissions while
    /// workers finish (and answer) everything already accepted.
    pub fn begin_shutdown(&self) {
        self.shared.queue.lock().shutdown = true;
        self.shared.cv.notify_all();
    }

    /// [`Server::begin_shutdown`] plus joining every worker; returns once
    /// the queue is fully drained.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn join(mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            h.join().expect("nb-serve worker panicked");
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
        }
    }

    /// The plan cache (resident keys / bytes, for tests and ops).
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown();
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// Claims the oldest request plus up to `cap - 1` later requests for the
/// same model, preserving the relative order of everything left behind.
fn take_batch(q: &mut Queue, cap: usize) -> Vec<Request> {
    let first = q.pending.pop_front().expect("take_batch on empty queue");
    let model = first.model;
    let mut batch = vec![first];
    let mut i = 0;
    while batch.len() < cap && i < q.pending.len() {
        if q.pending[i].model == model {
            batch.push(q.pending.remove(i).expect("indexed request"));
        } else {
            i += 1;
        }
    }
    batch
}

fn worker_loop(shared: &Shared) {
    // One warm arena per model this worker has served; plan recompiles
    // after cache eviction are structurally identical, so arenas stay
    // valid across them (run_in asserts this).
    let mut arenas: HashMap<usize, PlanArena> = HashMap::new();
    loop {
        let batch = {
            let mut q = shared.queue.lock();
            loop {
                if !q.pending.is_empty() {
                    break take_batch(&mut q, shared.cfg.max_batch);
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let mi = batch[0].model;
        let spec = &shared.models[mi];
        let plan = shared.cache.get_or_compile(&spec.name, || (spec.factory)());
        let inputs: Vec<Tensor> = batch.iter().map(|r| r.input.clone()).collect();
        let x = coalesce(&inputs);
        let arena = arenas.entry(mi).or_insert_with(|| plan.new_arena());
        let y = plan.run_in(arena, &x);
        let outputs = split_batch(&y, batch.len());
        let finished = Instant::now();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .completed
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for (req, output) in batch.into_iter().zip(outputs) {
            // A dropped ticket just means the client stopped waiting.
            let _ = req.tx.send(Response { output, finished });
        }
    }
}
