//! Serving benchmark: open-loop traffic against the multi-tenant server.
//!
//! Three tenant models (the tiny student, the expanded giant, and the
//! detector grid head) share one [`Server`]. A seeded Poisson-with-bursts
//! arrival schedule is generated up front ([`arrival_schedule`]) and
//! replayed open-loop: the producer submits at the scheduled instants
//! regardless of how the server is doing, which is the only regime where
//! tail latency is honest. Per-request latency runs from the actual submit
//! instant to the worker finishing the request's batch.
//!
//! The arrival rate is calibrated from a warmup request per model so the
//! trace lands at moderate utilization on any machine; the schedule shape
//! (gaps, bursts) is fixed by the seed.
//!
//! Run: `cargo run --release -p nb-serve --bin bench_serve [--smoke] [out.json]`
//! (default output: `BENCH_serve.json`). `--smoke` shrinks the trace for CI.
//!
//! The binary exits non-zero if any accepted request went unanswered, or
//! if any model's p99 latency blows past `max(50 x p50, 10ms)` — the
//! tail-latency gate: queueing collapse shows up as a p99 orders of
//! magnitude above the median long before the median itself moves.

use nb_models::{mobilenet_v2_tiny, DetectorNet, TinyNet};
use nb_nn::{CompiledPlan, Module};
use nb_serve::{arrival_schedule, ModelSpec, ServeConfig, Server, Ticket, TrafficConfig};
use nb_tensor::{num_threads, Tensor};
use netbooster_core::{expand, ExpansionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const MODELS: [&str; 3] = ["tinynet", "expanded-giant", "detector-grid"];
/// Plans are compiled at the server's max batch; replay accepts any batch.
const PROBE: [usize; 4] = [8, 3, 32, 32];

// Model parameters are `Rc`-backed, so a factory cannot capture a model
// built on the main thread; instead each factory rebuilds its model from a
// fixed seed on the calling worker — deterministic, so recompiling after a
// cache eviction reproduces the same plan.

fn tiny_plan() -> CompiledPlan {
    let mut rng = StdRng::seed_from_u64(3);
    let tiny = TinyNet::new(mobilenet_v2_tiny(10), &mut rng);
    CompiledPlan::compile(&PROBE, |f, v| tiny.forward(f, v))
}

fn giant_plan() -> CompiledPlan {
    let mut rng = StdRng::seed_from_u64(4);
    let mut giant = TinyNet::new(mobilenet_v2_tiny(10), &mut rng);
    let _handle = expand(&mut giant, &ExpansionPlan::paper_default(), &mut rng);
    CompiledPlan::compile(&PROBE, |f, v| giant.forward(f, v))
}

fn detector_plan() -> CompiledPlan {
    let mut rng = StdRng::seed_from_u64(5);
    let backbone = TinyNet::new(mobilenet_v2_tiny(4), &mut rng);
    let det = DetectorNet::new(backbone, 4, &mut rng);
    CompiledPlan::compile(&PROBE, |f, v| det.forward_grid(f, v))
}

fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        std::thread::sleep(target - now);
    }
}

/// `q`-quantile of an unsorted latency set, by sorting a copy.
fn percentile(lat: &[Duration], q: f64) -> Duration {
    assert!(!lat.is_empty());
    let mut v = lat.to_vec();
    v.sort_unstable();
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

struct ModelRow {
    name: &'static str,
    requests: usize,
    p50: Duration,
    p99: Duration,
    mean: Duration,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| *a != "--smoke")
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let requests = if smoke { 120 } else { 1200 };
    let seed = 2024u64;

    let cfg = ServeConfig {
        workers: 2,
        max_batch: PROBE[0],
        queue_cap: 1 << 16,
        cache_bytes: usize::MAX,
    };
    let sample = [3usize, 32, 32];
    let server = Server::start(
        cfg,
        vec![
            ModelSpec::new(MODELS[0], sample, tiny_plan),
            ModelSpec::new(MODELS[1], sample, giant_plan),
            ModelSpec::new(MODELS[2], sample, detector_plan),
        ],
    );

    // Warm every tenant (compiles its plan, warms worker arenas) and
    // calibrate the arrival rate off the slowest single-request service
    // time so the trace runs at moderate utilization on any machine.
    let mut input_rng = StdRng::seed_from_u64(17);
    let mut worst = Duration::ZERO;
    for name in MODELS {
        let x = Tensor::randn(sample, &mut input_rng);
        let t = Instant::now();
        server.submit(name, x).expect("warmup submit").wait();
        worst = worst.max(t.elapsed());
    }
    let rate_hz = (cfg.workers as f64 * 0.5 / worst.as_secs_f64()).clamp(20.0, 1000.0);

    let traffic = TrafficConfig::poisson_bursty(requests, rate_hz, seed);
    let schedule = arrival_schedule(&traffic);
    let inputs: Vec<Tensor> = (0..requests)
        .map(|_| Tensor::randn(sample, &mut input_rng))
        .collect();

    eprintln!(
        "bench_serve: {requests} requests over {} models at {rate_hz:.1} req/s \
         (calibrated; slowest warmup {:.2} ms), {} workers, max batch {}",
        MODELS.len(),
        worst.as_secs_f64() * 1e3,
        cfg.workers,
        cfg.max_batch
    );

    // Open-loop replay: submit at the scheduled instants, collect tickets,
    // settle latencies afterwards.
    let mut pending: Vec<(usize, Instant, Ticket)> = Vec::with_capacity(requests);
    let start = Instant::now();
    for (i, (off, x)) in schedule.iter().zip(inputs).enumerate() {
        sleep_until(start + *off);
        let model = i % MODELS.len();
        let submitted = Instant::now();
        let ticket = server
            .submit(MODELS[model], x)
            .expect("open-loop submit rejected");
        pending.push((model, submitted, ticket));
    }

    let mut per_model: Vec<Vec<Duration>> = vec![Vec::new(); MODELS.len()];
    let mut answered = 0usize;
    let mut last_finish = start;
    for (model, submitted, ticket) in pending {
        let resp = ticket.wait();
        per_model[model].push(resp.finished.duration_since(submitted));
        last_finish = last_finish.max(resp.finished);
        answered += 1;
    }
    let span = last_finish.duration_since(start);
    let stats = server.stats();
    server.join();

    let rows: Vec<ModelRow> = MODELS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let lat = &per_model[i];
            let mean = lat.iter().sum::<Duration>() / lat.len().max(1) as u32;
            ModelRow {
                name,
                requests: lat.len(),
                p50: percentile(lat, 0.50),
                p99: percentile(lat, 0.99),
                mean,
            }
        })
        .collect();
    let all: Vec<Duration> = per_model.iter().flatten().copied().collect();
    let (agg_p50, agg_p99) = (percentile(&all, 0.50), percentile(&all, 0.99));
    let throughput = answered as f64 / span.as_secs_f64().max(1e-9);

    for r in &rows {
        eprintln!(
            "{:<16} {:>5} reqs: p50 {:>9.2} us, p99 {:>9.2} us, mean {:>9.2} us",
            r.name,
            r.requests,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.mean.as_secs_f64() * 1e6,
        );
    }
    eprintln!(
        "aggregate: p50 {:.2} us, p99 {:.2} us, {throughput:.1} req/s, \
         batch occupancy {:.2}, cache {} hits / {} misses / {} evictions",
        agg_p50.as_secs_f64() * 1e6,
        agg_p99.as_secs_f64() * 1e6,
        stats.batch_occupancy(),
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
    );

    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {},\n", num_threads()));
    json.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    json.push_str(&format!("  \"workers\": {},\n", cfg.workers));
    json.push_str(&format!("  \"max_batch\": {},\n", cfg.max_batch));
    json.push_str(&format!(
        "  \"traffic\": {{ \"requests\": {requests}, \"rate_hz\": {rate_hz:.1}, \
         \"burst_prob\": {}, \"burst_len\": {}, \"seed\": {seed} }},\n",
        traffic.burst_prob, traffic.burst_len
    ));
    json.push_str(&format!("  \"throughput_rps\": {throughput:.1},\n"));
    json.push_str(&format!(
        "  \"batch_occupancy\": {:.2},\n",
        stats.batch_occupancy()
    ));
    json.push_str(&format!(
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {} }},\n",
        stats.cache.hits, stats.cache.misses, stats.cache.evictions
    ));
    json.push_str("  \"models\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{ \"requests\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"mean_us\": {:.2} }}{comma}\n",
            r.name,
            r.requests,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.mean.as_secs_f64() * 1e6,
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"aggregate\": {{ \"p50_us\": {:.2}, \"p99_us\": {:.2} }}\n",
        agg_p50.as_secs_f64() * 1e6,
        agg_p99.as_secs_f64() * 1e6,
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    // +MODELS.len() accounts for the warmup request per tenant.
    if answered + MODELS.len() != stats.completed as usize || stats.accepted != stats.completed {
        eprintln!(
            "bench_serve: FAILED (accepted {} vs completed {}, answered {answered})",
            stats.accepted, stats.completed
        );
        failed = true;
    }
    for r in &rows {
        let bound = Duration::from_millis(10).max(r.p50 * 50);
        if r.p99 > bound {
            eprintln!(
                "bench_serve: FAILED (tail latency: {} p99 {:.2} ms exceeds {:.2} ms \
                 = max(50 x p50, 10 ms))",
                r.name,
                r.p99.as_secs_f64() * 1e3,
                bound.as_secs_f64() * 1e3,
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
