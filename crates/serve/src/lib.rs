//! nb-serve: multi-tenant batched inference over shared compiled plans.
//!
//! The serving story rests on the `&self` replay split in `nb-nn`: a
//! [`CompiledPlan`](nb_nn::CompiledPlan) is immutable after compilation
//! (`Send + Sync`), and all per-request replay state lives in a
//! [`PlanArena`](nb_nn::PlanArena). One plan per model is therefore shared
//! across every worker thread behind an `Arc`, while each worker keeps its
//! own warm arenas — concurrent replay with zero synchronization on the
//! hot path, bitwise identical to serial replay.
//!
//! The crate stacks four pieces on that foundation:
//!
//! - [`batcher`]: coalesce single-sample requests into one batched tensor
//!   and split the output back, with per-sample bitwise batch-invariance.
//! - [`cache`]: a byte-bounded LRU of compiled plans keyed by model name,
//!   so many tenants share a fixed memory budget.
//! - [`server`]: the request queue, dynamic batching policy, worker pool,
//!   and the accepted-implies-answered shutdown/drain contract.
//! - [`traffic`]: seeded open-loop Poisson/bursty arrival schedules for
//!   honest tail-latency measurement (`bench_serve`).

pub mod batcher;
pub mod cache;
pub mod server;
pub mod traffic;

pub use batcher::{coalesce, split_batch};
pub use cache::{plan_cost, CacheStats, PlanCache};
pub use server::{ModelSpec, Response, ServeConfig, Server, ServerStats, SubmitError, Ticket};
pub use traffic::{arrival_schedule, TrafficConfig};
