//! Synthetic open-loop traffic: Poisson arrivals with bursty tails.
//!
//! Open-loop means arrival times are fixed up front and do not react to
//! server latency — the load a public endpoint actually sees, and the only
//! regime where tail latency is honest (a closed loop throttles itself
//! when the server slows down, hiding the queueing it causes). The base
//! process is Poisson (exponential inter-arrival gaps at `rate_hz`); on
//! top, each arrival may open a *burst* with probability `burst_prob`, in
//! which case the next `burst_len - 1` requests arrive at the same
//! instant. Bursts are what stress the dynamic batcher and the p99 — a
//! pure Poisson stream at moderate utilization rarely queues.
//!
//! Schedules are deterministic in the seed (vendored `rand`), so a
//! benchmark run is reproducible end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Shape of one synthetic traffic trace.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Total requests in the trace.
    pub requests: usize,
    /// Mean arrival rate of the Poisson base process, in requests/second.
    pub rate_hz: f64,
    /// Probability that an arrival opens a burst.
    pub burst_prob: f64,
    /// Requests per burst (1 disables bursts); burst members arrive
    /// simultaneously.
    pub burst_len: usize,
    /// RNG seed; equal seeds give identical schedules.
    pub seed: u64,
}

impl TrafficConfig {
    /// A trace of `requests` arrivals at `rate_hz` with mild bursty tails
    /// (10% of arrivals open a burst of 4).
    pub fn poisson_bursty(requests: usize, rate_hz: f64, seed: u64) -> Self {
        TrafficConfig {
            requests,
            rate_hz,
            burst_prob: 0.1,
            burst_len: 4,
            seed,
        }
    }
}

/// Arrival offsets from the trace start, non-decreasing, one per request.
pub fn arrival_schedule(cfg: &TrafficConfig) -> Vec<Duration> {
    assert!(cfg.rate_hz > 0.0, "arrival rate must be positive");
    assert!(cfg.burst_len >= 1, "burst_len must be at least 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut offsets = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    let mut burst_left = 0usize;
    for _ in 0..cfg.requests {
        if burst_left > 0 {
            burst_left -= 1;
        } else {
            // Exponential gap via inverse transform; 1 - u is in (0, 1].
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / cfg.rate_hz;
            if cfg.burst_len > 1 && rng.gen_bool(cfg.burst_prob) {
                burst_left = cfg.burst_len - 1;
            }
        }
        offsets.push(Duration::from_secs_f64(t));
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let cfg = TrafficConfig::poisson_bursty(500, 200.0, 42);
        let a = arrival_schedule(&cfg);
        let b = arrival_schedule(&cfg);
        assert_eq!(a, b, "same seed must give the same trace");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets non-decreasing");
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn mean_rate_is_roughly_the_configured_rate() {
        // With bursts disabled the span of n arrivals at rate r
        // concentrates around n / r.
        let cfg = TrafficConfig {
            requests: 4000,
            rate_hz: 1000.0,
            burst_prob: 0.0,
            burst_len: 1,
            seed: 7,
        };
        let sched = arrival_schedule(&cfg);
        let span = sched.last().unwrap().as_secs_f64();
        let expect = 4000.0 / 1000.0;
        assert!(
            (span - expect).abs() < expect * 0.2,
            "span {span:.3}s vs expected {expect:.3}s"
        );
    }

    #[test]
    fn bursts_produce_simultaneous_arrivals() {
        let cfg = TrafficConfig {
            requests: 1000,
            rate_hz: 100.0,
            burst_prob: 0.5,
            burst_len: 3,
            seed: 3,
        };
        let sched = arrival_schedule(&cfg);
        let ties = sched.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(ties > 100, "expected many burst ties, got {ties}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = arrival_schedule(&TrafficConfig::poisson_bursty(100, 100.0, 1));
        let b = arrival_schedule(&TrafficConfig::poisson_bursty(100, 100.0, 2));
        assert_ne!(a, b);
    }
}
