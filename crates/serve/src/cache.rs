//! LRU cache of compiled plans, bounded by resident bytes.
//!
//! A multi-tenant server keeps many models warm; each resident
//! [`CompiledPlan`] costs its prepacked weight panels
//! ([`CompiledPlan::packed_bytes`]) plus the activation arena a warm
//! replay keeps around ([`CompiledPlan::arena_bytes`]). The cache charges
//! every entry that sum and evicts least-recently-used plans until the
//! total fits the configured capacity. Evicted models are not gone —
//! the next request recompiles them through the registered factory, and
//! compilation is deterministic, so a round-trip through eviction
//! reproduces the same logits bit for bit (the test suite checks this).
//!
//! Plans are handed out as `Arc<CompiledPlan>`: eviction drops the cache's
//! reference, while in-flight replays keep theirs until the batch
//! finishes.

use nb_nn::CompiledPlan;
use parking_lot::Mutex;
use std::sync::Arc;

/// Hit/miss/eviction counters, as of one [`PlanCache::stats`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident plan.
    pub hits: u64,
    /// Lookups that compiled (or recompiled after eviction).
    pub misses: u64,
    /// Plans evicted to fit the capacity.
    pub evictions: u64,
}

struct CacheEntry {
    key: String,
    plan: Arc<CompiledPlan>,
    cost: usize,
}

struct CacheInner {
    /// LRU order: front is coldest, back is the most recently used.
    entries: Vec<CacheEntry>,
    resident_bytes: usize,
    stats: CacheStats,
}

/// A byte-capacity-bounded LRU of compiled plans, shared across worker
/// threads (interior mutex; lookups that miss compile under the lock so a
/// model is never compiled twice concurrently).
pub struct PlanCache {
    capacity_bytes: usize,
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// A cache evicting down to `capacity_bytes` of resident plan cost
    /// (packed panels + warm arena). A single plan larger than the
    /// capacity is still admitted — the server could not answer its
    /// requests otherwise — making the bound `max(capacity, largest plan)`.
    pub fn new(capacity_bytes: usize) -> Self {
        PlanCache {
            capacity_bytes,
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                resident_bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Returns the plan for `key`, compiling it with `make` on a miss and
    /// evicting cold plans until the capacity bound holds again.
    pub fn get_or_compile(
        &self,
        key: &str,
        make: impl FnOnce() -> CompiledPlan,
    ) -> Arc<CompiledPlan> {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.entries.iter().position(|e| e.key == key) {
            inner.stats.hits += 1;
            // Touch: move to the MRU end.
            let entry = inner.entries.remove(pos);
            let plan = Arc::clone(&entry.plan);
            inner.entries.push(entry);
            return plan;
        }
        inner.stats.misses += 1;
        let plan = Arc::new(make());
        let cost = plan_cost(&plan);
        inner.resident_bytes += cost;
        inner.entries.push(CacheEntry {
            key: key.to_string(),
            plan: Arc::clone(&plan),
            cost,
        });
        while inner.resident_bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let evicted = inner.entries.remove(0);
            inner.resident_bytes -= evicted.cost;
            inner.stats.evictions += 1;
        }
        plan
    }

    /// True when `key` is resident (does not touch LRU order).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().entries.iter().any(|e| e.key == key)
    }

    /// Resident keys, coldest first.
    pub fn resident_keys(&self) -> Vec<String> {
        self.inner
            .lock()
            .entries
            .iter()
            .map(|e| e.key.clone())
            .collect()
    }

    /// Total bytes charged for resident plans.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

/// What one resident plan costs the cache: prepacked weight panels plus
/// the probe-batch activation arena a warm replay keeps.
///
/// Both terms come from the plan itself, so the charge tracks what the
/// plan actually holds rather than assuming f32 panels: an int8 plan
/// ([`CompiledPlan::compile_quantized`]) reports its i8 panels plus scale
/// tables (roughly a quarter of the f32 packing) and its u8 quantization
/// scratch, so mixed f32/i8 residency evicts by true footprint — a
/// quantized tenant is cheaper to keep warm, exactly as deployment
/// intends.
pub fn plan_cost(plan: &CompiledPlan) -> usize {
    plan.packed_bytes() + plan.arena_bytes()
}
