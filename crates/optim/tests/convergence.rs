//! Convergence properties of the optimizers on randomized convex problems,
//! and schedule integration behaviour.

use nb_nn::Parameter;
use nb_optim::{Adam, AdamConfig, ConstantLr, CosineAnneal, LrSchedule, Sgd, SgdConfig, StepDecay};
use nb_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gradient of the diagonal quadratic `f(x) = 0.5 * sum_i a_i (x_i - c_i)^2`.
fn quad_grad(x: &Tensor, a: &Tensor, c: &Tensor) -> Tensor {
    x.sub(c).mul(a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SGD converges to the minimizer of any well-conditioned diagonal
    /// quadratic.
    #[test]
    fn sgd_converges_on_random_quadratics(n in 1usize..8, seed in 0u64..1000, momentum in 0.0f32..0.95) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([n], 0.5, 2.0, &mut rng);
        let c = Tensor::randn([n], &mut rng);
        let p = Parameter::new(Tensor::randn([n], &mut rng));
        let mut opt = Sgd::new(vec![p.clone()], SgdConfig {
            lr: 0.1, momentum, weight_decay: 0.0, nesterov: false,
        });
        for _ in 0..400 {
            p.add_grad(&quad_grad(&p.value(), &a, &c));
            opt.step(0.05);
        }
        prop_assert!(p.value().max_abs_diff(&c) < 1e-2,
            "residual {}", p.value().max_abs_diff(&c));
    }

    /// Adam converges on the same family.
    #[test]
    fn adam_converges_on_random_quadratics(n in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([n], 0.5, 2.0, &mut rng);
        let c = Tensor::randn([n], &mut rng);
        let p = Parameter::new(Tensor::randn([n], &mut rng));
        let mut opt = Adam::new(vec![p.clone()], AdamConfig::default());
        for _ in 0..1500 {
            p.add_grad(&quad_grad(&p.value(), &a, &c));
            opt.step(0.02);
        }
        prop_assert!(p.value().max_abs_diff(&c) < 5e-2,
            "residual {}", p.value().max_abs_diff(&c));
    }

    /// Weight decay shifts the SGD fixed point toward the origin.
    #[test]
    fn weight_decay_shrinks_fixed_point(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = Tensor::rand_uniform([1], 0.5, 2.0, &mut rng);
        let a = Tensor::ones([1]);
        let run = |wd: f32| {
            let p = Parameter::new(Tensor::zeros([1]));
            let mut opt = Sgd::new(vec![p.clone()], SgdConfig {
                lr: 0.1, momentum: 0.0, weight_decay: wd, nesterov: false,
            });
            for _ in 0..500 {
                p.add_grad(&quad_grad(&p.value(), &a, &c));
                opt.step(0.1);
            }
            p.value().item()
        };
        let free = run(0.0);
        let decayed = run(0.5);
        prop_assert!(decayed.abs() < free.abs(), "{decayed} vs {free}");
    }

    /// Every schedule is non-negative over its horizon and cosine dominates
    /// its own floor.
    #[test]
    fn schedules_sane(base in 0.001f32..1.0, total in 2usize..500) {
        let cos = CosineAnneal::new(base, total);
        let step = StepDecay { base_lr: base, step_size: (total / 3).max(1), gamma: 0.5 };
        let cst = ConstantLr(base);
        for i in 0..=total {
            prop_assert!(cos.lr(i) >= 0.0 && cos.lr(i) <= base + 1e-6);
            prop_assert!(step.lr(i) > 0.0 && step.lr(i) <= base + 1e-6);
            prop_assert!((cst.lr(i) - base).abs() < 1e-9);
        }
    }
}

#[test]
fn momentum_reaches_quadratic_floor_faster() {
    let run = |momentum: f32| {
        let p = Parameter::new(Tensor::full([1], 10.0));
        let mut opt = Sgd::new(
            vec![p.clone()],
            SgdConfig {
                lr: 0.02,
                momentum,
                weight_decay: 0.0,
                nesterov: false,
            },
        );
        let mut steps = 0;
        while p.value().item().abs() > 0.1 && steps < 10_000 {
            p.add_grad(&Tensor::full([1], 2.0 * p.value().item()));
            opt.step(0.02);
            steps += 1;
        }
        steps
    };
    assert!(run(0.9) < run(0.0), "momentum accelerates convergence");
}
