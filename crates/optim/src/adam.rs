//! Adam optimizer (used by the detection-head finetuning recipes).

use nb_nn::Parameter;
use nb_tensor::Tensor;

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay, applied only to parameters
    /// with the decay flag.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam with optional decoupled weight decay.
pub struct Adam {
    params: Vec<Parameter>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
    config: AdamConfig,
}

impl Adam {
    /// An optimizer over the given parameters.
    pub fn new(params: Vec<Parameter>, config: AdamConfig) -> Self {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        Adam {
            params,
            m,
            v,
            t: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> AdamConfig {
        self.config
    }

    /// Applies one update with the given learning rate, then clears all
    /// gradients.
    pub fn step(&mut self, lr: f32) {
        self.t += 1;
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let decays = p.decay();
            p.update(|value, grad| {
                if c.weight_decay > 0.0 && decays {
                    value.scale_assign(1.0 - lr * c.weight_decay);
                }
                m.scale_assign(c.beta1);
                m.add_scaled_assign(grad, 1.0 - c.beta1);
                let g2 = grad.mul(grad);
                v.scale_assign(c.beta2);
                v.add_scaled_assign(&g2, 1.0 - c.beta2);
                let ms = m.as_slice();
                let vs = v.as_slice();
                for (i, x) in value.as_mut_slice().iter_mut().enumerate() {
                    let mhat = ms[i] / bc1;
                    let vhat = vs[i] / bc2;
                    *x -= lr * mhat / (vhat.sqrt() + c.eps);
                }
            });
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_quadratic() {
        let p = Parameter::new(Tensor::full([1], 4.0));
        let mut opt = Adam::new(vec![p.clone()], AdamConfig::default());
        for _ in 0..2000 {
            let x = p.value().item();
            p.add_grad(&Tensor::full([1], 2.0 * x));
            opt.step(1e-2);
        }
        assert!(p.value().item().abs() < 1e-2, "{}", p.value().item());
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's first step is ~lr regardless of gradient scale.
        let p = Parameter::new(Tensor::full([1], 0.0));
        let mut opt = Adam::new(vec![p.clone()], AdamConfig::default());
        p.add_grad(&Tensor::full([1], 123.0));
        opt.step(0.5);
        assert!((p.value().item() + 0.5).abs() < 1e-3);
    }

    #[test]
    fn decoupled_decay_shrinks_weights() {
        let p = Parameter::new(Tensor::full([1], 1.0));
        let mut opt = Adam::new(
            vec![p.clone()],
            AdamConfig {
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
        );
        opt.step(1.0); // zero grad => pure decay
        assert!((p.value().item() - 0.9).abs() < 1e-6);
    }
}
