//! # nb-optim
//!
//! Optimizers and learning-rate schedules for the NetBooster reproduction:
//! SGD with momentum (the paper's recipe), Adam, and cosine/step/constant
//! schedules with linear warmup.
//!
//! ## Example
//!
//! ```
//! use nb_nn::Parameter;
//! use nb_optim::{CosineAnneal, LrSchedule, Sgd, SgdConfig};
//! use nb_tensor::Tensor;
//!
//! let p = Parameter::new(Tensor::full([1], 4.0));
//! let mut opt = Sgd::new(vec![p.clone()], SgdConfig::default());
//! let sched = CosineAnneal::new(0.1, 100);
//! for step in 0..100 {
//!     let x = p.value().item();
//!     p.add_grad(&Tensor::full([1], 2.0 * x)); // d/dx x^2
//!     opt.step(sched.lr(step));
//! }
//! assert!(p.value().item().abs() < 0.1);
//! ```

#![warn(missing_docs)]

mod adam;
mod schedule;
mod sgd;

pub use adam::{Adam, AdamConfig};
pub use schedule::{ConstantLr, CosineAnneal, LrSchedule, StepDecay};
pub use sgd::{Sgd, SgdConfig};
