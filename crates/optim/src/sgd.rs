//! Stochastic gradient descent with momentum, the optimizer the paper's
//! training recipes use.

use nb_nn::Parameter;
use nb_tensor::Tensor;

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Base learning rate (rescaled per step by the schedule, if any).
    pub lr: f32,
    /// Momentum coefficient (`0` disables the velocity buffer).
    pub momentum: f32,
    /// L2 weight decay, applied only to parameters with the decay flag.
    pub weight_decay: f32,
    /// Use Nesterov momentum.
    pub nesterov: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 4e-5,
            nesterov: false,
        }
    }
}

/// SGD with momentum over a fixed set of parameters.
///
/// # Examples
///
/// ```
/// use nb_nn::Parameter;
/// use nb_optim::{Sgd, SgdConfig};
/// use nb_tensor::Tensor;
///
/// let p = Parameter::new(Tensor::ones([2]));
/// let mut opt = Sgd::new(vec![p.clone()], SgdConfig { lr: 0.5, momentum: 0.0, weight_decay: 0.0, nesterov: false });
/// p.add_grad(&Tensor::ones([2]));
/// opt.step(0.25);
/// assert_eq!(p.value().as_slice(), &[0.75, 0.75]);
/// ```
pub struct Sgd {
    params: Vec<Parameter>,
    velocity: Vec<Tensor>,
    config: SgdConfig,
}

impl Sgd {
    /// An optimizer over the given parameters.
    pub fn new(params: Vec<Parameter>, config: SgdConfig) -> Self {
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        Sgd {
            params,
            velocity,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Number of managed parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Applies one update with the given learning rate, then clears all
    /// gradients.
    pub fn step(&mut self, lr: f32) {
        let c = self.config;
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let decays = p.decay();
            p.update(|value, grad| {
                // effective gradient: grad + wd * value
                let mut g = grad.clone();
                if c.weight_decay > 0.0 && decays {
                    g.add_scaled_assign(value, c.weight_decay);
                }
                if c.momentum > 0.0 {
                    v.scale_assign(c.momentum);
                    v.add_assign(&g);
                    if c.nesterov {
                        g.add_scaled_assign(v, c.momentum);
                    } else {
                        g = v.clone();
                    }
                }
                value.add_scaled_assign(&g, -lr);
            });
            p.zero_grad();
        }
    }

    /// Overwrites every managed parameter's gradient with the matching
    /// entry of `grads` — the data-parallel trainer's hand-off from the
    /// reduced gradient set to the optimizer. Implemented as clear +
    /// accumulate so the stored bits go through the same `0.0 + g` path the
    /// backward pass uses (normalizing `-0.0` identically).
    ///
    /// # Panics
    ///
    /// Panics if `grads` disagrees with the parameter list in length or any
    /// shape.
    pub fn assign_grads(&self, grads: &[Tensor]) {
        assert_eq!(
            grads.len(),
            self.params.len(),
            "assign_grads: one gradient per parameter"
        );
        for (p, g) in self.params.iter().zip(grads) {
            p.zero_grad();
            p.add_grad(g);
        }
    }

    /// Clears all gradients without updating.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global L2 gradient-norm clipping: rescales all gradients if their
    /// joint norm exceeds `max_norm`. Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let mut sq = 0.0f64;
        for p in &self.params {
            let n = p.grad().l2_norm() as f64;
            sq += n * n;
        }
        let norm = sq.sqrt() as f32;
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                let scaled = p.grad().scale(scale);
                p.zero_grad();
                p.add_grad(&scaled);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lr: f32, momentum: f32, wd: f32) -> SgdConfig {
        SgdConfig {
            lr,
            momentum,
            weight_decay: wd,
            nesterov: false,
        }
    }

    #[test]
    fn plain_sgd_descends_quadratic() {
        // minimize f(x) = x^2 by hand-computed grads
        let p = Parameter::new(Tensor::full([1], 4.0));
        let mut opt = Sgd::new(vec![p.clone()], cfg(0.1, 0.0, 0.0));
        for _ in 0..50 {
            let x = p.value().item();
            p.add_grad(&Tensor::full([1], 2.0 * x));
            opt.step(0.1);
        }
        assert!(p.value().item().abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let p = Parameter::new(Tensor::full([1], 4.0));
            let mut opt = Sgd::new(vec![p.clone()], cfg(0.02, momentum, 0.0));
            for _ in 0..20 {
                let x = p.value().item();
                p.add_grad(&Tensor::full([1], 2.0 * x));
                opt.step(0.02);
            }
            p.value().item().abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_skips_no_decay_params() {
        let decayed = Parameter::new(Tensor::full([1], 1.0));
        let frozen = Parameter::new_no_decay(Tensor::full([1], 1.0));
        let mut opt = Sgd::new(vec![decayed.clone(), frozen.clone()], cfg(1.0, 0.0, 0.1));
        // zero gradient: only decay acts
        opt.step(1.0);
        assert!((decayed.value().item() - 0.9).abs() < 1e-6);
        assert_eq!(frozen.value().item(), 1.0);
    }

    #[test]
    fn step_clears_grads() {
        let p = Parameter::new(Tensor::zeros([2]));
        let mut opt = Sgd::new(vec![p.clone()], cfg(0.1, 0.9, 0.0));
        p.add_grad(&Tensor::ones([2]));
        opt.step(0.1);
        assert_eq!(p.grad().abs_sum(), 0.0);
    }

    #[test]
    fn assign_grads_overwrites_accumulated() {
        let p = Parameter::new(Tensor::zeros([2]));
        let opt = Sgd::new(vec![p.clone()], cfg(0.1, 0.0, 0.0));
        p.add_grad(&Tensor::full([2], 7.0));
        opt.assign_grads(&[Tensor::from_vec(vec![1.0, -0.0], [2]).unwrap()]);
        let g = p.grad();
        assert_eq!(g.as_slice()[0], 1.0);
        // -0.0 normalizes to +0.0 through the 0.0 + g accumulate path,
        // matching what Session::backward would have stored.
        assert_eq!(g.as_slice()[1].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn clip_rescales_joint_norm() {
        let a = Parameter::new(Tensor::zeros([1]));
        let b = Parameter::new(Tensor::zeros([1]));
        let opt = Sgd::new(vec![a.clone(), b.clone()], cfg(0.1, 0.0, 0.0));
        a.add_grad(&Tensor::full([1], 3.0));
        b.add_grad(&Tensor::full([1], 4.0));
        let norm = opt.clip_grad_norm(1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        assert!((a.grad().item() - 0.6).abs() < 1e-5);
        assert!((b.grad().item() - 0.8).abs() < 1e-5);
    }

    #[test]
    fn nesterov_differs_from_plain_momentum() {
        let run = |nesterov: bool| {
            let p = Parameter::new(Tensor::full([1], 1.0));
            let mut opt = Sgd::new(
                vec![p.clone()],
                SgdConfig {
                    lr: 0.1,
                    momentum: 0.9,
                    weight_decay: 0.0,
                    nesterov,
                },
            );
            for _ in 0..3 {
                p.add_grad(&Tensor::full([1], 1.0));
                opt.step(0.1);
            }
            p.value().item()
        };
        assert!((run(true) - run(false)).abs() > 1e-6);
    }
}
