//! Learning-rate schedules.
//!
//! The paper's recipes use cosine annealing with optional linear warmup;
//! step decay and constant schedules are provided for the downstream and
//! ablation configurations.

use std::f32::consts::PI;

/// A learning-rate schedule: a map from step index to learning rate.
pub trait LrSchedule {
    /// Learning rate at `step` (0-based) out of the schedule's horizon.
    fn lr(&self, step: usize) -> f32;
}

/// Cosine annealing from `base_lr` to `min_lr` over `total_steps`, with an
/// optional linear warmup from 0 over the first `warmup_steps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnneal {
    /// Peak learning rate.
    pub base_lr: f32,
    /// Floor learning rate at the end of the horizon.
    pub min_lr: f32,
    /// Total steps in the schedule.
    pub total_steps: usize,
    /// Linear-warmup steps at the start.
    pub warmup_steps: usize,
}

impl CosineAnneal {
    /// A warmup-free cosine schedule annealing to zero.
    pub fn new(base_lr: f32, total_steps: usize) -> Self {
        CosineAnneal {
            base_lr,
            min_lr: 0.0,
            total_steps,
            warmup_steps: 0,
        }
    }
}

impl LrSchedule for CosineAnneal {
    fn lr(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let t = (step - self.warmup_steps).min(self.total_steps - self.warmup_steps) as f32;
        let horizon = (self.total_steps - self.warmup_steps).max(1) as f32;
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (PI * t / horizon).cos())
    }
}

/// Multiplies the base rate by `gamma` every `step_size` steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Steps between decays.
    pub step_size: usize,
    /// Decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn lr(&self, step: usize) -> f32 {
        self.base_lr * self.gamma.powi((step / self.step_size) as i32)
    }
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr(&self, _step: usize) -> f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_endpoints() {
        let s = CosineAnneal::new(0.2, 100);
        assert!((s.lr(0) - 0.2).abs() < 1e-6);
        assert!(s.lr(100) < 1e-6);
        // midpoint is half the base
        assert!((s.lr(50) - 0.1).abs() < 1e-3);
        // monotone non-increasing
        for i in 0..100 {
            assert!(s.lr(i + 1) <= s.lr(i) + 1e-7);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = CosineAnneal {
            base_lr: 1.0,
            min_lr: 0.0,
            total_steps: 110,
            warmup_steps: 10,
        };
        assert!((s.lr(0) - 0.1).abs() < 1e-6);
        assert!((s.lr(4) - 0.5).abs() < 1e-6);
        assert!((s.lr(10) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_floor_respected() {
        let s = CosineAnneal {
            base_lr: 0.1,
            min_lr: 0.01,
            total_steps: 10,
            warmup_steps: 0,
        };
        assert!((s.lr(10) - 0.01).abs() < 1e-6);
        assert!((s.lr(10_000) - 0.01).abs() < 1e-6); // clamps past horizon
    }

    #[test]
    fn step_decay() {
        let s = StepDecay {
            base_lr: 1.0,
            step_size: 10,
            gamma: 0.1,
        };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(9), 1.0);
        assert!((s.lr(10) - 0.1).abs() < 1e-7);
        assert!((s.lr(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.05);
        assert_eq!(s.lr(0), 0.05);
        assert_eq!(s.lr(99999), 0.05);
    }
}
