//! Quantized-plan parity: the `+plan-quant` column.
//!
//! Int8 PTQ is lossy by design, so the bitwise and ULP machinery the other
//! parity columns use cannot judge it — every element of a quantized
//! forward differs from f32 by far more than reassociation noise. What a
//! *correct* quantizer must preserve is the end task: top-1 accuracy on a
//! labeled eval set, within the [`AccuracyBudget`] from
//! [`crate::tolerance`]. This suite trains the tiny classifier briefly on
//! the smoke-scale SyntheticImageNet (so accuracies are meaningfully above
//! chance), compiles both the f32 and the quantized plan from the same
//! weights, and holds the quantized plan to the accuracy budget at worker
//! widths 1 and the full pool.
//!
//! Three properties ride along for free and are pinned here because they
//! are load-bearing for serving:
//!
//! - **Thread-width invariance is bitwise**, not budgeted: the i8 kernels
//!   accumulate in exact integer arithmetic, so any width must produce
//!   identical logits. A bitwise diff across widths means scheduling state
//!   leaked into the quantized path.
//! - **Fusion invariance is bitwise**: the fused inverted-residual
//!   executor (expand → depthwise → project in one strip-tiled action) is
//!   documented bitwise-identical to replaying the same three quantized
//!   stages sequentially, so a fused and an unfused twin compiled from the
//!   same weights and calibration set must agree on every logit bit.
//! - **Grad-free execution**: quantized replay must allocate zero autograd
//!   nodes, like every other plan column.
//!
//! The model under test is the inverted-residual TinyNet, so the quantized
//! plan exercises the int8 *depthwise* kernels (standalone and inside the
//! fused chain), not just the GEMM path. Compilation uses the default
//! [`nb_nn::QuantPolicy::Auto`] mixed-precision policy — the suite also
//! pins that the policy actually quantizes this model's depthwise stages
//! rather than silently leaving the whole plan in f32 (which would make
//! every budget below vacuous).

use crate::tolerance::AccuracyBudget;
use nb_autograd::nodes_allocated;
use nb_data::{synthetic_imagenet, Augment, DataLoader, Dataset, Scale};
use nb_models::{mobilenet_v2_tiny, TinyNet};
use nb_nn::{quant_calib_batches, CompiledPlan, Module, PlanOptions};
use nb_tensor::{self as nt, Tensor};
use netbooster_core::{ce_loss_fn, evaluate, fit, NoHooks, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One quantized-parity comparison at one worker-pool width.
#[derive(Debug, Clone)]
pub struct QuantCase {
    /// Model family plus column, e.g. `tinynet+plan-quant`.
    pub case: String,
    /// Worker-pool width the comparison ran at.
    pub threads: usize,
    /// Top-1 accuracy of the f32 compiled plan on the eval set.
    pub f32_top1: f32,
    /// Top-1 accuracy of the quantized plan on the same set.
    pub quant_top1: f32,
    /// Accuracy given up by quantization (0 when it matched or won).
    pub drop: f32,
    /// Autograd nodes allocated during quantized replay (must be 0).
    pub graph_nodes: usize,
    /// Whether the case passed its budget.
    pub pass: bool,
}

/// Outcome of the quantized-plan parity suite.
#[derive(Debug, Clone, Default)]
pub struct QuantReport {
    /// Every comparison run.
    pub cases: Vec<QuantCase>,
}

impl QuantReport {
    /// True when every case passed.
    pub fn pass(&self) -> bool {
        !self.cases.is_empty() && self.cases.iter().all(|c| c.pass)
    }

    /// One line: `<n> cases, <f> failures`.
    pub fn summary_line(&self) -> String {
        let fails = self.cases.iter().filter(|c| !c.pass).count();
        format!("{} cases, {} failures", self.cases.len(), fails)
    }

    /// A table of the failing cases (empty string when everything passed).
    pub fn render_failures(&self) -> String {
        let mut out = String::new();
        for c in self.cases.iter().filter(|c| !c.pass) {
            out.push_str(&format!(
                "  FAIL [quant] {} threads={} : f32 top-1 {:.3} vs quant {:.3} (drop {:.3}), graph nodes={}\n",
                c.case, c.threads, c.f32_top1, c.quant_top1, c.drop, c.graph_nodes
            ));
        }
        out
    }
}

/// Top-1 accuracy drop of the quantized plan vs the f32 plan on the
/// smoke-scale eval set, at worker widths 1 and the full pool, plus the
/// bitwise width-invariance check. `fast` trains one epoch instead of
/// three (CI-sized).
pub fn run_quant_suite(fast: bool) -> QuantReport {
    let mut report = QuantReport::default();
    let data = synthetic_imagenet(Scale::Smoke);
    let classes = data.train.num_classes();
    let model = TinyNet::new(mobilenet_v2_tiny(classes), &mut StdRng::seed_from_u64(40));

    // Brief training so top-1 sits meaningfully above chance: an untrained
    // net scores ~1/classes everywhere and would vacuously pass any budget.
    let cfg = TrainConfig {
        epochs: if fast { 1 } else { 3 },
        batch_size: 8,
        lr: 0.05,
        augment: Augment::none(),
        ..TrainConfig::default()
    };
    let mut loss = ce_loss_fn(&model, cfg.label_smoothing);
    fit(
        model.parameters(),
        &data.train,
        &data.val,
        &cfg,
        &mut loss,
        &|imgs| model.logits_eval(imgs),
        &mut NoHooks,
    );

    // Calibration batches from the training split (the conventional count;
    // see `NB_QUANT_CALIB`).
    let loader = DataLoader::new(&data.train, cfg.batch_size);
    let calib: Vec<Tensor> = loader
        .epoch(0)
        .into_iter()
        .take(quant_calib_batches())
        .map(|b| b.images)
        .collect();
    let probe = calib[0].clone();

    let fplan = CompiledPlan::compile(probe.dims(), |f, v| model.forward(f, v));
    let before = nodes_allocated();
    let qplan = CompiledPlan::compile_quantized(probe.dims(), &calib, |f, v| model.forward(f, v));
    let compile_nodes = nodes_allocated() - before;
    // Unfused twin for the fusion-invariance column: same weights, same
    // calibration batches, fusion pass disabled.
    let uplan = CompiledPlan::compile_quantized_with(
        probe.dims(),
        PlanOptions {
            fuse: false,
            ..PlanOptions::default()
        },
        &calib,
        |f, v| model.forward(f, v),
    );

    // Depthwise coverage guard: under the Auto policy the inverted-residual
    // TinyNet must come out with quantized (depthwise) actions — a fully-f32
    // "quantized" plan would make the accuracy budgets below meaningless.
    report.cases.push(QuantCase {
        case: "tinynet+plan-quant-depthwise-active".to_string(),
        threads: 0,
        f32_top1: 0.0,
        quant_top1: 0.0,
        drop: 0.0,
        graph_nodes: 0,
        pass: qplan.is_quantized(),
    });

    let budget = AccuracyBudget::for_quantized();
    let mut widths = vec![1usize, nt::num_threads()];
    widths.dedup();
    let mut logits_by_width: Vec<Vec<u32>> = Vec::new();
    for &threads in &widths {
        nt::with_thread_cap(threads, || {
            let before = nodes_allocated();
            let f32_top1 = evaluate(&|imgs| fplan.run(imgs), &data.val, cfg.batch_size);
            let quant_top1 = evaluate(&|imgs| qplan.run(imgs), &data.val, cfg.batch_size);
            let graph_nodes = nodes_allocated() - before + compile_nodes;
            let drop = AccuracyBudget::drop(f32_top1, quant_top1);
            report.cases.push(QuantCase {
                case: "tinynet+plan-quant".to_string(),
                threads,
                f32_top1,
                quant_top1,
                drop,
                graph_nodes,
                pass: budget.ok(f32_top1, quant_top1) && graph_nodes == 0,
            });
            logits_by_width.push(
                qplan
                    .run(&probe)
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
        });
    }

    // Integer accumulation is exact: width must not change a single bit.
    let invariant = logits_by_width.windows(2).all(|w| w[0] == w[1]);
    report.cases.push(QuantCase {
        case: "tinynet+plan-quant-width-bitwise".to_string(),
        threads: *widths.last().expect("width set non-empty"),
        f32_top1: 0.0,
        quant_top1: 0.0,
        drop: 0.0,
        graph_nodes: 0,
        pass: invariant,
    });

    // The fused chain executor must be a pure scheduling change: fused and
    // unfused quantized twins agree bitwise on every logit.
    let fused_bits: Vec<u32> = qplan
        .run(&probe)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let unfused_bits: Vec<u32> = uplan
        .run(&probe)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    report.cases.push(QuantCase {
        case: "tinynet+plan-quant-fuse-bitwise".to_string(),
        threads: nt::num_threads(),
        f32_top1: 0.0,
        quant_top1: 0.0,
        drop: 0.0,
        graph_nodes: 0,
        pass: fused_bits == unfused_bits,
    });

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quant_suite_passes() {
        let report = run_quant_suite(true);
        assert!(report.cases.len() >= 4, "{}", report.cases.len());
        assert!(report.pass(), "{}", report.render_failures());
        // The budgeted cases must be judging real signal, not chance: the
        // f32 reference should beat random guessing on the smoke set
        // (top-1 is in percent; smoke SyntheticImageNet has 8 classes).
        let chance = 100.0 / 8.0;
        assert!(report
            .cases
            .iter()
            .filter(|c| c.case == "tinynet+plan-quant")
            .all(|c| c.f32_top1 > chance));
    }
}
