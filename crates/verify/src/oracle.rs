//! Naive, obviously-correct reference kernels.
//!
//! Every routine here mirrors the contract of a fast kernel in `nb-tensor`
//! but is written as the plainest possible loop nest, accumulating in f64 so
//! the reference is *more* accurate than any correct f32 implementation.
//! The differential driver ([`crate::diff`]) compares the fast kernels
//! against these under ULP-bounded tolerances.
//!
//! Nothing here is optimized on purpose: the value of an oracle is that a
//! reviewer can check it against the textbook definition in one sitting.

#![allow(clippy::too_many_arguments)]

use nb_tensor::{ConvGeometry, Tensor};

/// Reference GEMM with the same signature and epilogue semantics as
/// [`nb_tensor::gemm`]: `C = A' * B'` where `a_trans`/`b_trans` select the
/// storage layout of the logical `m x k` / `k x n` operands, `row_init`
/// seeds every row (bias fusion), and `accumulate` adds onto `c`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn gemm_ref(
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_init: Option<&[f32]>,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_ref lhs length");
    assert_eq!(b.len(), k * n, "gemm_ref rhs length");
    assert_eq!(c.len(), m * n, "gemm_ref out length");
    let at = |i: usize, l: usize| -> f64 {
        f64::from(if a_trans { a[l * m + i] } else { a[i * k + l] })
    };
    let bt = |l: usize, j: usize| -> f64 {
        f64::from(if b_trans { b[j * k + l] } else { b[l * n + j] })
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc += at(i, l) * bt(l, j);
            }
            let base = if accumulate {
                f64::from(c[i * n + j])
            } else {
                row_init.map_or(0.0, |r| f64::from(r[i]))
            };
            c[i * n + j] = (base + acc) as f32;
        }
    }
}

/// Reference dense 2-D convolution (direct seven-loop definition).
///
/// # Panics
///
/// Panics on shape inconsistencies (same contract as `nb_tensor::conv2d`).
pub fn conv2d_ref(x: &Tensor, w: &Tensor, b: Option<&Tensor>, geom: ConvGeometry) -> Tensor {
    let (n, c_in, h, wd) = x.shape().nchw();
    let wdim = w.dims().to_vec();
    assert_eq!(wdim.len(), 4, "conv2d_ref weight rank");
    let (c_out, wc_in, kh, kw) = (wdim[0], wdim[1], wdim[2], wdim[3]);
    assert_eq!(wc_in, c_in, "conv2d_ref channels");
    let (ho, wo) = geom.output_hw(h, wd);
    let xs = x.as_slice();
    let ws = w.as_slice();
    let mut out = Tensor::zeros([n, c_out, ho, wo]);
    let os = out.as_mut_slice();
    for ni in 0..n {
        for co in 0..c_out {
            for oi in 0..ho {
                for oj in 0..wo {
                    let mut acc = b.map(|b| f64::from(b.as_slice()[co])).unwrap_or(0.0);
                    for ci in 0..c_in {
                        for ki in 0..kh {
                            let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xv =
                                    xs[((ni * c_in + ci) * h + ii as usize) * wd + jj as usize];
                                let wv = ws[((co * c_in + ci) * kh + ki) * kw + kj];
                                acc += f64::from(xv) * f64::from(wv);
                            }
                        }
                    }
                    os[((ni * c_out + co) * ho + oi) * wo + oj] = acc as f32;
                }
            }
        }
    }
    out
}

/// Reference gradients of [`conv2d_ref`]: `(dx, dw, db)` with `db` present
/// iff `has_bias`. Every gradient is the direct sum over the forward
/// product graph, accumulated in f64.
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn conv2d_backward_ref(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    geom: ConvGeometry,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c_in, h, wd) = x.shape().nchw();
    let wdim = w.dims().to_vec();
    let (c_out, _, kh, kw) = (wdim[0], wdim[1], wdim[2], wdim[3]);
    let (ho, wo) = geom.output_hw(h, wd);
    assert_eq!(dy.dims(), &[n, c_out, ho, wo], "conv2d_backward_ref dy");
    let xs = x.as_slice();
    let ws = w.as_slice();
    let dys = dy.as_slice();
    let mut dx = vec![0.0f64; n * c_in * h * wd];
    let mut dw = vec![0.0f64; c_out * c_in * kh * kw];
    let mut db = vec![0.0f64; c_out];
    for ni in 0..n {
        for co in 0..c_out {
            for oi in 0..ho {
                for oj in 0..wo {
                    let g = f64::from(dys[((ni * c_out + co) * ho + oi) * wo + oj]);
                    db[co] += g;
                    for ci in 0..c_in {
                        for ki in 0..kh {
                            let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xi = ((ni * c_in + ci) * h + ii as usize) * wd + jj as usize;
                                let wi = ((co * c_in + ci) * kh + ki) * kw + kj;
                                dw[wi] += g * f64::from(xs[xi]);
                                dx[xi] += g * f64::from(ws[wi]);
                            }
                        }
                    }
                }
            }
        }
    }
    let dxt = Tensor::from_fn(x.shape().clone(), |i| dx[i] as f32);
    let dwt = Tensor::from_fn(w.shape().clone(), |i| dw[i] as f32);
    let dbt = has_bias.then(|| Tensor::from_fn([c_out], |i| db[i] as f32));
    (dxt, dwt, dbt)
}

/// Reference depthwise 2-D convolution.
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn depthwise_conv2d_ref(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    geom: ConvGeometry,
) -> Tensor {
    let (n, c, h, wd) = x.shape().nchw();
    let wdim = w.dims().to_vec();
    assert_eq!(wdim.len(), 3, "depthwise_conv2d_ref weight rank");
    assert_eq!(wdim[0], c, "depthwise_conv2d_ref channels");
    let (kh, kw) = (wdim[1], wdim[2]);
    let (ho, wo) = geom.output_hw(h, wd);
    let xs = x.as_slice();
    let ws = w.as_slice();
    let mut out = Tensor::zeros([n, c, ho, wo]);
    let os = out.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            for oi in 0..ho {
                for oj in 0..wo {
                    let mut acc = b.map(|b| f64::from(b.as_slice()[ci])).unwrap_or(0.0);
                    for ki in 0..kh {
                        let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                            if jj < 0 || jj >= wd as isize {
                                continue;
                            }
                            let xv = xs[((ni * c + ci) * h + ii as usize) * wd + jj as usize];
                            acc += f64::from(xv) * f64::from(ws[(ci * kh + ki) * kw + kj]);
                        }
                    }
                    os[((ni * c + ci) * ho + oi) * wo + oj] = acc as f32;
                }
            }
        }
    }
    out
}

/// Reference gradients of [`depthwise_conv2d_ref`]; returns `(dx, dw, db)`.
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn depthwise_conv2d_backward_ref(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    geom: ConvGeometry,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c, h, wd) = x.shape().nchw();
    let wdim = w.dims().to_vec();
    let (kh, kw) = (wdim[1], wdim[2]);
    let (ho, wo) = geom.output_hw(h, wd);
    assert_eq!(dy.dims(), &[n, c, ho, wo], "depthwise backward_ref dy");
    let xs = x.as_slice();
    let ws = w.as_slice();
    let dys = dy.as_slice();
    let mut dx = vec![0.0f64; n * c * h * wd];
    let mut dw = vec![0.0f64; c * kh * kw];
    let mut db = vec![0.0f64; c];
    for ni in 0..n {
        for ci in 0..c {
            for oi in 0..ho {
                for oj in 0..wo {
                    let g = f64::from(dys[((ni * c + ci) * ho + oi) * wo + oj]);
                    db[ci] += g;
                    for ki in 0..kh {
                        let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                            if jj < 0 || jj >= wd as isize {
                                continue;
                            }
                            let xi = ((ni * c + ci) * h + ii as usize) * wd + jj as usize;
                            let wi = (ci * kh + ki) * kw + kj;
                            dw[wi] += g * f64::from(xs[xi]);
                            dx[xi] += g * f64::from(ws[wi]);
                        }
                    }
                }
            }
        }
    }
    let dxt = Tensor::from_fn(x.shape().clone(), |i| dx[i] as f32);
    let dwt = Tensor::from_fn(w.shape().clone(), |i| dw[i] as f32);
    let dbt = has_bias.then(|| Tensor::from_fn([c], |i| db[i] as f32));
    (dxt, dwt, dbt)
}

/// Reference max pooling with the same tie-breaking rule as
/// `nb_tensor::maxpool2d` (strictly-greater wins, so the first maximum in
/// scan order keeps the index). Returns the pooled tensor and flat argmax
/// indices into each sample-channel plane.
pub fn maxpool2d_ref(x: &Tensor, geom: ConvGeometry) -> (Tensor, Vec<u32>) {
    let (n, c, h, w) = x.shape().nchw();
    let (ho, wo) = geom.output_hw(h, w);
    let mut out = Tensor::zeros([n, c, ho, wo]);
    let mut idx = vec![0u32; n * c * ho * wo];
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for nc in 0..n * c {
        for oi in 0..ho {
            for oj in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for ki in 0..geom.kh {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        let p = ii as usize * w + jj as usize;
                        let v = xs[nc * h * w + p];
                        if v > best {
                            best = v;
                            best_i = p;
                        }
                    }
                }
                let o = (nc * ho + oi) * wo + oj;
                os[o] = best;
                idx[o] = best_i as u32;
            }
        }
    }
    (out, idx)
}

/// Reference average pooling (`count_include_pad = true`, matching
/// `nb_tensor::avgpool2d`).
pub fn avgpool2d_ref(x: &Tensor, geom: ConvGeometry) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let (ho, wo) = geom.output_hw(h, w);
    let window = f64::from((geom.kh * geom.kw) as u32);
    let xs = x.as_slice();
    let mut out = Tensor::zeros([n, c, ho, wo]);
    let os = out.as_mut_slice();
    for nc in 0..n * c {
        for oi in 0..ho {
            for oj in 0..wo {
                let mut acc = 0.0f64;
                for ki in 0..geom.kh {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        acc += f64::from(xs[nc * h * w + ii as usize * w + jj as usize]);
                    }
                }
                os[(nc * ho + oi) * wo + oj] = (acc / window) as f32;
            }
        }
    }
    out
}

/// Reference global average pooling: `[n, c, h, w]` to `[n, c]`.
pub fn global_avg_pool_ref(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let xs = x.as_slice();
    Tensor::from_fn([n, c], |i| {
        let acc: f64 = xs[i * h * w..(i + 1) * h * w]
            .iter()
            .map(|&v| f64::from(v))
            .sum();
        (acc / (h * w) as f64) as f32
    })
}

/// Reference max-pool gradient: routes each output gradient to its argmax.
pub fn maxpool2d_backward_ref(x_shape: &nb_tensor::Shape, dy: &Tensor, idx: &[u32]) -> Tensor {
    let (n, c, h, w) = x_shape.nchw();
    let (_, _, ho, wo) = dy.shape().nchw();
    let dys = dy.as_slice();
    let mut dx = vec![0.0f64; n * c * h * w];
    for nc in 0..n * c {
        for o in 0..ho * wo {
            let flat = nc * ho * wo + o;
            dx[nc * h * w + idx[flat] as usize] += f64::from(dys[flat]);
        }
    }
    Tensor::from_fn([n, c, h, w], |i| dx[i] as f32)
}

/// Reference average-pool gradient.
pub fn avgpool2d_backward_ref(
    x_shape: &nb_tensor::Shape,
    dy: &Tensor,
    geom: ConvGeometry,
) -> Tensor {
    let (n, c, h, w) = x_shape.nchw();
    let (_, _, ho, wo) = dy.shape().nchw();
    let inv = 1.0f64 / f64::from((geom.kh * geom.kw) as u32);
    let dys = dy.as_slice();
    let mut dx = vec![0.0f64; n * c * h * w];
    for nc in 0..n * c {
        for oi in 0..ho {
            for oj in 0..wo {
                let g = f64::from(dys[(nc * ho + oi) * wo + oj]) * inv;
                for ki in 0..geom.kh {
                    let ii = (oi * geom.sh + ki) as isize - geom.ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let jj = (oj * geom.sw + kj) as isize - geom.pw as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        dx[nc * h * w + ii as usize * w + jj as usize] += g;
                    }
                }
            }
        }
    }
    Tensor::from_fn([n, c, h, w], |i| dx[i] as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ref_hand_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_ref(&a, false, &b, false, &mut c, 2, 2, 2, None, false);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        // transpose variants agree with manual transposition
        let at = [1.0, 3.0, 2.0, 4.0]; // a stored column-major == a^T row-major
        let mut ct = [0.0f32; 4];
        gemm_ref(&at, true, &b, false, &mut ct, 2, 2, 2, None, false);
        assert_eq!(ct, c);
        let btr = [5.0, 7.0, 6.0, 8.0];
        let mut cb = [0.0f32; 4];
        gemm_ref(&a, false, &btr, true, &mut cb, 2, 2, 2, None, false);
        assert_eq!(cb, c);
    }

    #[test]
    fn gemm_ref_epilogues() {
        let a = [2.0f32];
        let b = [3.0f32];
        let mut c = [10.0f32];
        gemm_ref(&a, false, &b, false, &mut c, 1, 1, 1, None, true);
        assert_eq!(c, [16.0]); // accumulate onto existing
        let mut c2 = [999.0f32];
        gemm_ref(&a, false, &b, false, &mut c2, 1, 1, 1, Some(&[1.0]), false);
        assert_eq!(c2, [7.0]); // row_init replaces
                               // K = 0: epilogue alone defines the output
        let mut c3 = [5.0f32, 5.0];
        gemm_ref(
            &[],
            false,
            &[],
            false,
            &mut c3,
            2,
            0,
            1,
            Some(&[1.5, -2.0]),
            false,
        );
        assert_eq!(c3, [1.5, -2.0]);
        let mut c4 = [5.0f32];
        gemm_ref(&[], false, &[], false, &mut c4, 1, 0, 1, None, true);
        assert_eq!(c4, [5.0]); // accumulate with k=0 leaves c alone
    }

    #[test]
    fn conv_ref_identity_kernel() {
        let x = Tensor::from_fn([1, 1, 3, 3], |i| i as f32);
        let w = Tensor::from_vec(vec![1.0], [1, 1, 1, 1]).unwrap();
        let y = conv2d_ref(&x, &w, None, ConvGeometry::pointwise());
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn depthwise_ref_k1_scales_channels() {
        let x = Tensor::from_fn([1, 2, 2, 2], |i| i as f32);
        let w = Tensor::from_vec(vec![2.0, -1.0], [2, 1, 1]).unwrap();
        let y = depthwise_conv2d_ref(&x, &w, None, ConvGeometry::pointwise());
        for i in 0..4 {
            assert_eq!(y.as_slice()[i], x.as_slice()[i] * 2.0);
            assert_eq!(y.as_slice()[4 + i], -x.as_slice()[4 + i]);
        }
    }

    #[test]
    fn pool_refs_on_known_input() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let geom = ConvGeometry::square(2, 2, 0);
        let (y, idx) = maxpool2d_ref(&x, geom);
        assert_eq!(y.as_slice(), &[4.0]);
        assert_eq!(idx, vec![3]);
        let a = avgpool2d_ref(&x, geom);
        assert_eq!(a.as_slice(), &[2.5]);
        let g = global_avg_pool_ref(&x);
        assert_eq!(g.as_slice(), &[2.5]);
    }
}
